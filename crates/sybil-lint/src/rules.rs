//! The determinism & invariant rules (D001–D006).
//!
//! Each rule is a pattern pass over the token stream of one file, plus a
//! file-classification gate (library vs. binary vs. test code). Rules are
//! deliberately heuristic — they key on names and token shapes, not
//! types — but every heuristic errs toward *flagging*, and the
//! `lint.toml` allowlist (with mandatory justifications) absorbs the
//! reviewed exceptions. See DESIGN.md §"Determinism invariants & lint
//! policy" for the rationale behind each rule.

use crate::lexer::{lex, TokKind, Token};
use crate::report::Finding;

/// How a source file participates in the build — determines which rules
/// apply to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`src/**` minus `src/bin/**`): all rules apply.
    Lib,
    /// Binary targets (`src/bin/**`, `src/main.rs`): runtime rules
    /// (D002/D003/D006) apply; panic policy (D001/D004) does not.
    Bin,
    /// Integration tests, benches, examples: exempt from all per-token
    /// rules (test code may use wall clocks, unwraps, hash iteration).
    Test,
}

/// Everything a rule needs to know about one file.
pub struct FileCtx<'s> {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: &'s str,
    /// The crate this file belongs to (package name).
    pub crate_name: &'s str,
    /// Build role of the file.
    pub kind: FileKind,
    /// Full source text.
    pub src: &'s str,
}

/// All token-rule codes, in order.
pub const ALL_RULES: [&str; 6] = ["D001", "D002", "D003", "D004", "D005", "D006"];

/// All semantic (call-graph) rule codes, in order. These run only with
/// `--workspace`, because they need every file to resolve calls.
pub const SEM_RULES: [&str; 19] = [
    "S101", "S102", "S103", "S104", "S105", "S106", "S107", "S108", "S109", "S110", "S111",
    "S112", "S113", "S114", "S115", "S116", "S117", "S118", "S119",
];

/// Is `code` any rule this tool knows (token or semantic)?
pub fn is_known_rule(code: &str) -> bool {
    ALL_RULES.contains(&code) || SEM_RULES.contains(&code)
}

/// One-line summary per rule code (for `--list-rules` and diagnostics).
pub fn rule_summary(code: &str) -> &'static str {
    match code {
        "D001" => "unordered HashMap/HashSet iteration in library code (use BTreeMap or sort before emit)",
        "D002" => "wall-clock read (Instant::now / SystemTime) outside bench and the repro CLI",
        "D003" => "raw threading primitive (thread::spawn / Mutex / atomics) outside osn_graph::par",
        "D004" => "panic in non-test library code (unwrap / expect / panic! / todo! / unreachable!)",
        "D005" => "library crate missing #![forbid(unsafe_code)]",
        "D006" => "entropy-seeded RNG (thread_rng / OsRng / from_entropy / rand::random)",
        "S101" => "panic site reachable from a pub library fn through the call graph",
        "S102" => "non-associative float reduction reachable from a par:: map/sweep closure",
        "S103" => "&mut state or RNG handle captured by a closure crossing the par boundary",
        "S104" => "dead export: pub item unused by any bin, test, bench, example, or other crate",
        "S105" => "stale lint.toml allowlist entry (matched nothing this run)",
        "S106" => "unbounded channel constructor outside sybil-serve's bounded queue module",
        "S107" => "stringly-typed error API: pub Result<_, String> or process::exit in a library",
        "S108" => "hash container keyed by node/packed-edge ids in a scale-critical module",
        "S109" => "wall-clock/env/thread-id effect reachable from a deterministic-core root",
        "S110" => "IO effect reachable from the epoch-barrier critical path",
        "S111" => "unordered hash iteration reachable from a byte-stable export sink",
        "S112" => "thread spawn outside osn_graph::par and sybil-serve's coordinator",
        "S113" => "allocation inside a per-event hot loop (no recycled-scratch justification)",
        "S114" => "monotonic collection growth across the epoch loop (push/insert, no drain)",
        "S115" => "truncating `as` cast on id/count types reachable from a hot path",
        "S116" => "blocking acquisition (lock / recv / wait) reachable from a hot loop",
        "S117" => "recursion reachable from a hot path (unbounded stack and work)",
        "S118" => "IO effect reachable from a production fault-plane hook (no-op surface)",
        "S119" => "file IO on versioned state outside sybil-store's format module",
        _ => "unknown rule",
    }
}

/// Multi-paragraph explanation per rule code (for `--explain CODE`).
pub fn rule_explanation(code: &str) -> Option<&'static str> {
    Some(match code {
        "D001" => "D001 — unordered hash iteration\n\nIterating a HashMap/HashSet visits \
                   entries in randomized order, so any output derived from the walk differs \
                   between runs. Library code must iterate BTreeMap/BTreeSet or sort before \
                   emitting.",
        "D002" => "D002 — wall-clock reads\n\nInstant::now()/SystemTime readings leak \
                   nondeterminism into results. Only crates/bench and the repro CLI may \
                   measure time.",
        "D003" => "D003 — raw threading primitives\n\nAll parallelism flows through \
                   osn_graph::par, whose deterministic map is the one reviewed concurrency \
                   surface. thread::spawn/Mutex/atomics elsewhere bypass that review.",
        "D004" => "D004 — panics in library code\n\nunwrap/expect/panic! in a library turns \
                   a recoverable condition into an abort for every caller. Return \
                   Result/Option instead; reviewed invariants go in lint.toml.",
        "D005" => "D005 — forbid(unsafe_code)\n\nEvery library crate root must carry \
                   #![forbid(unsafe_code)] so the guarantee is compiler-checked, not policy.",
        "D006" => "D006 — seeded RNGs only\n\nthread_rng/OsRng/from_entropy draw from the \
                   OS entropy pool, making runs unrepeatable. All randomness must come from \
                   an explicitly seeded generator.",
        "S101" => "S101 — panic reachability\n\nD004 flags panic sites; S101 flags panic \
                   *exposure*: a panic site (unwrap / expect / panic-family macro / indexing \
                   in a guard-free function) that a pub library function can reach through \
                   the workspace call graph. The finding is anchored at the panic site and \
                   carries the shortest call chain from the nearest pub entry point as a \
                   trace, one `caller calls callee at file:line` step per edge.\n\nFix by \
                   propagating Result/Option along the chain, or allowlist the site in \
                   lint.toml with the invariant that makes the panic unreachable. The call \
                   graph is name-resolved and over-approximate: it may report a chain that \
                   type analysis would rule out, but it never hides one.",
        "S102" => "S102 — float reductions under par\n\nFloating-point addition is not \
                   associative, so a sum/fold/accumulate loop over f32/f64 yields different \
                   bits under different evaluation orders. Inside a par::map_indexed / \
                   map_indexed_with / map_slice closure — or any function the closure \
                   reaches — such a reduction is one refactor away from breaking the \
                   bit-identical-across-thread-counts guarantee.\n\nThe trace names the \
                   parallel entry point and the call chain to the reduction. Reductions \
                   whose order is fixed per item (a serial loop over one node's \
                   neighbourhood) are sound: allowlist the kernel in lint.toml and state \
                   that ordering argument in the justification.",
        "S103" => "S103 — mutable capture across the par boundary\n\nA closure passed to a \
                   par:: entry that captures `&mut` state or an RNG handle from the \
                   enclosing scope would observe mutations in thread-interleaving order. \
                   Per-worker scratch belongs in the `init` closure of map_indexed_with; \
                   randomness must be derived per item from the item index, never drawn \
                   from a captured generator.",
        "S104" => "S104 — dead exports\n\nA pub item that no bin, test, bench, example, or \
                   other crate ever names is API surface the workspace maintains but never \
                   exercises — it dodges the whole test suite. Demote it to pub(crate) (it \
                   stays visible to siblings in its own crate) or delete it. Usage is \
                   detected by name across the workspace, which over-approximates liveness: \
                   anything S104 still flags has not even a name-collision excuse.",
        "S105" => "S105 — stale allowlist entries\n\nAn [[allow]] entry in lint.toml that \
                   matched no finding this run documents an exception that no longer \
                   exists; left in place it would silently re-arm if the pattern ever came \
                   back. S105 reports the entry at its line in lint.toml as an error. Run \
                   `sybil-lint --workspace --fix-allowlist` to delete stale entries; when \
                   nothing is stale the rewrite is byte-identical.",
        "S106" => "S106 — unbounded channels\n\nThe serving engine stages every cross-shard \
                   effect in a bounded DeltaQueue whose capacity is an epoch invariant, so \
                   exceeding it is an explicit QueueFull error instead of silent memory \
                   growth under backpressure. An unbounded()/unbounded_channel() constructor \
                   anywhere else bypasses that review and hides the missing bound. \
                   Construct channels with an explicit capacity, or — when the producer \
                   provably sends a fixed number of messages — allowlist the site in \
                   lint.toml and state that message-count bound in the justification. Only \
                   crates/sybil-serve/src/queue.rs, the reviewed staging surface, is exempt.",
        "S107" => "S107 — stringly-typed error APIs\n\nA pub fn returning Result<_, String> \
                   hands callers an error they can only string-match or rewrap: no variants \
                   to match on, no source chain, and every formatting tweak is a silent API \
                   break. Return a typed error (the workspace's shared variants live in \
                   sybil_core::Error; crate-local enums like osn_graph::GraphError are \
                   equally fine) and keep the prose in its Display impl.\n\nThe second shape \
                   is the same contract violated at the call site: library code settling a \
                   Result/Option with unwrap_or_else(… process::exit …) kills the process \
                   where no caller can intercept it — under a worker pool that strands the \
                   sibling threads mid-epoch. Binaries own the exit code; libraries return \
                   the error. Only `pub fn` signatures are checked (pub(crate) surface is \
                   internal), and binaries may exit — shape (b) fires on library files only.",
        "S108" => "S108 — hash containers on the million-account hot path\n\nThree modules \
                   carry the per-event and per-rotation work at scale: the coordinator's \
                   edge mirror (sybil-serve/src/mirror.rs), the per-shard scan loop \
                   (sybil-serve/src/shard.rs), and the CSR snapshot \
                   (osn-graph/src/snapshot.rs). Their layout contract is flat id-indexed \
                   arenas — CSR row probes, the FlatDelta arena, sorted arrays — because at \
                   5M accounts a HashMap/HashSet keyed by NodeId, u32, or u64 (or a packed \
                   pair of them) costs a hash and a cache-hostile probe per touch and \
                   scatters allocations the rotation path would then re-fault every epoch. \
                   Dense ids index Vecs directly; sorted runs binary-search. If a hash \
                   container is genuinely right (a provably tiny working set), allowlist \
                   the site in lint.toml and state that size bound in the justification. \
                   Only the three designated modules are checked, and #[cfg(test)] code is \
                   exempt.",
        "S109" => "S109 — ambient-input effects on the deterministic core\n\nThe replay/serve \
                   contract every verify.sh gate byte-compares assumes the core computes from \
                   its arguments alone. S109 proves it: an interprocedural effect analysis \
                   infers, for every library function, whether it (transitively) reads the \
                   wall clock (Instant::now / SystemTime / UNIX_EPOCH), the environment \
                   (std::env::*), or the current thread's identity (thread::current), \
                   propagating leaf intrinsics to a fixpoint over the name-resolved call \
                   graph — through par:: closures and (conservatively) trait-object method \
                   edges. Any such effect reachable from a root designated under \
                   `[effects.roots] clockless` in lint.toml (replay, serve, simulate, \
                   snapshot rotation, feature extraction) is an error, reported at the leaf \
                   intrinsic with the full root→leaf propagation chain.\n\nFix by injecting \
                   the dependency at the boundary — serve_timed takes the clock as a closure \
                   parameter precisely so the core never reads one. A reviewed read whose \
                   value provably cannot alter results (e.g. a thread-count knob proven \
                   bit-identical across values by the verify gates) belongs in lint.toml \
                   with that invariant spelled out. The graph over-approximates: it may \
                   report a chain type analysis would prune, but it never hides one.",
        "S110" => "S110 — IO on the epoch-barrier critical path\n\nShard step, mirror \
                   absorb/rotate, and delta-queue operations run between epoch barriers, \
                   where every shard's latency is the epoch's latency and a blocking read \
                   or write stalls the whole round. S110 uses the same effect fixpoint as \
                   S109 with the IoRead/IoWrite lattice components: filesystem calls \
                   (std::fs::*, File::open/create) and console writes (println!/eprintln!, \
                   io::stdout/stderr) reachable from a root designated under \
                   `[effects.roots] io_free` are errors with full propagation traces.\n\n\
                   Keep IO at the coordinator boundary — snapshots and metrics are staged \
                   in memory during the epoch and written outside the barrier. A reviewed \
                   exception (e.g. a bounded, rotation-only append) needs its bound written \
                   into lint.toml.",
        "S111" => "S111 — unordered iteration on a byte-stable export path\n\nSerialized \
                   artifacts (Snapshot JSON, BENCH_* writers, future persistence images) \
                   are byte-compared by the verify gates and diffed across machines, so \
                   every byte must be a pure function of logical state. Iterating a \
                   HashMap/HashSet anywhere in an export sink's reachable set threads the \
                   hasher's randomized order into the output bytes. S111 computes the \
                   NondetIter effect (hash-container iteration, minus the collect-then-sort \
                   escape) at the fixpoint and reports any leaf reachable from a sink \
                   designated under `[effects.sinks] byte_stable`, with the sink→leaf \
                   chain.\n\nFix by iterating ordered containers (BTreeMap/BTreeSet) or \
                   sorting before emission — D001 already bans the pattern file-locally; \
                   S111 closes the interprocedural gap and gates the byte-stable format \
                   contract persistence will depend on.",
        "S112" => "S112 — thread spawns outside the sanctioned substrate\n\nAll parallelism \
                   flows through osn_graph::par (deterministic chunked maps, bit-identical \
                   across thread counts) and the sybil-serve coordinator built on it. A \
                   thread::spawn or thread::scope anywhere else creates an unreviewed \
                   concurrency surface: the effect analysis marks the Spawns intrinsic and \
                   S112 reports every site outside crates/osn-graph/src/par.rs and \
                   crates/sybil-serve/src/engine.rs, with the chain from the nearest pub \
                   entry when one reaches it.\n\nRoute the work through a par:: entry (or \
                   extend par with a reviewed primitive); D003 flags the same tokens \
                   file-locally, S112 is the call-graph-aware gate that names who exposes \
                   the spawn.",
        "S113" => "S113 — allocation inside a per-event hot loop\n\nPR 6 measured the \
                   serving critical path being dominated by memory behavior: recycling \
                   scratch buffers took 8-shard 5M serving from 35s to ~18s. S113 guards \
                   that win. The cost layer infers, for every library function, whether it \
                   (transitively) allocates — Vec/HashMap/String constructors, Box::new, \
                   vec!/format!, .clone()/.collect()/.to_vec() — by propagating leaf \
                   intrinsics to a fixpoint over the call graph, exactly like the S109 \
                   effect analysis. A loop pass then recovers each function's loop spans, \
                   and any allocation that runs *inside a per-event hot loop* — in the \
                   loop body of a `[hotpaths.roots]` core, or in any function such a loop \
                   (transitively) calls — is an error, reported at the leaf with the full \
                   root→leaf chain.\n\nFix by hoisting the buffer out of the loop into \
                   caller-owned scratch (NeighborScratch, MergeScratch, and the shard's \
                   friend_ids buffer are the house idiom: clear-and-refill, never \
                   reallocate). An allocation that is genuinely amortized — building the \
                   output block that replaces a rotated CSR block, say — belongs in \
                   lint.toml with that amortization argument spelled out in the \
                   justification.",
        "S114" => "S114 — monotonic collection growth across the epoch loop\n\nA push or \
                   insert that executes per event with no clear/drain/truncate on the same \
                   collection is a static leak: occupancy grows with event count and the \
                   5M-account epoch loop turns it into memory pressure and realloc stalls. \
                   S114 finds growth-method calls (push / push_back / insert / extend / \
                   append) reachable inside a per-event hot loop and models drains by \
                   receiver: growth on a receiver that is also cleared, drained, \
                   truncated, popped, retained, or split in the *same function* is the \
                   recycled-scratch idiom and never fires — that is the negative case the \
                   cost fixtures pin.\n\nSurviving sites either drain at the epoch barrier \
                   (bounded staging queues drained by the coordinator each round are the \
                   house pattern) or carry an allowlist entry stating the occupancy bound: \
                   what caps the collection, and who enforces the cap.",
        "S115" => "S115 — truncating casts on the hot path\n\nThe scale contract is u32 \
                   ids end-to-end: 5M accounts fit comfortably, and flat u32 arenas are \
                   half the memory of usize. The risk is the silent `as` cast — `len() as \
                   u32`, `(base + offset) as u32` — which truncates without a sound when \
                   the invariant that \"this fits\" stops holding. S115 flags every `as` \
                   cast to a narrow integer type (u8/u16/u32/i8/i16/i32) in any function \
                   reachable from a `[hotpaths.roots]` core, with the root→site chain. \
                   Widening casts are never flagged.\n\nFix with a checked conversion: \
                   try_into (or sybil_core::ids::count_u32) surfacing the typed \
                   sybil_core::Error::IdOverflow — never a stringly error. A cast whose \
                   range invariant is structural (block-local offsets bounded by block \
                   size, node ids constructed from u32) can be allowlisted with that \
                   invariant spelled out.",
        "S116" => "S116 — blocking acquisition reachable from a hot loop\n\nBetween epoch \
                   barriers every shard's latency is the epoch's latency: a lock, an \
                   unbounded recv, or an IO wait inside the per-event loop serializes the \
                   shards and melts the throughput the substrate exists to provide. S116 \
                   marks blocking intrinsics (.lock(), .recv(), .recv_timeout(), .wait(), \
                   thread::sleep) and reports any site reachable inside a per-event hot \
                   loop, with the propagation chain.\n\nThe house architecture makes this \
                   rule cheap to satisfy: shards own their state, cross-shard effects are \
                   staged in bounded DeltaQueues and exchanged at the barrier, so nothing \
                   on the event path should ever wait on another thread. A reviewed wait \
                   with a proven bound belongs in lint.toml with that bound.",
        "S117" => "S117 — recursion reachable from a hot path\n\nThe per-event cores must \
                   have statically bounded stack and work; recursion breaks both bounds — \
                   graph-shaped inputs can drive adversarial depth, and at 5M accounts \
                   \"the stack was deep enough in testing\" is not an invariant. S117 \
                   detects call-graph cycles (direct or mutual, over the same \
                   name-resolved graph the other S-rules use) and reports any cycle \
                   participant reachable from a `[hotpaths.roots]` core, anchored at the \
                   cycle-entering call with the root→cycle chain.\n\nRewrite iteratively \
                   with an explicit worklist (the CSR traversals and the mirror's \
                   delta-merge are all loop-shaped for this reason). Because the call \
                   graph over-approximates method dispatch by name, a reported cycle can \
                   be spurious — two unrelated `step` methods wiring into each other; \
                   renaming one of the methods is usually the cleanest fix and sharpens \
                   every other S-rule at the same time.",
        "S118" => "S118 — IO reachable from a production fault-plane hook\n\nThe chaos \
                   subsystem hooks the serving engine through the FaultPlane trait: the \
                   engine consults the plane at every decision point, and production runs \
                   pass the no-op plane, whose hooks must compile down to nothing. An IO \
                   effect (file open/read/write, stdio) reachable from one of the \
                   `[effects.roots] fault_plane` patterns means the *production* path \
                   would journal, log, or touch disk on every epoch — the exact overhead \
                   the trait split exists to keep at zero, and a nondeterminism hole the \
                   byte-identity gates cannot see because they replay through the same \
                   plane.\n\nS118 reuses the S110 IO effect inference (intrinsic sites \
                   plus interprocedural fixpoint) but roots it at the fault-plane \
                   surface: the trait's default methods and the NoFaults impl. Fix by \
                   moving the IO into the chaos plane's override (sybil-chaos owns the \
                   write-ahead journal) and keeping the default a pure return. There is \
                   deliberately no allowlist story here — a production hook that needs \
                   IO is a design error, not a reviewable exception.",
        "S119" => "S119 — file IO on versioned state outside the format module\n\nEvery \
                   byte sybil-store puts on disk is versioned: the SYBS magic + version \
                   header, the length-prefixed section framing, and the trailing content \
                   digest all live in `format.rs`, and the compatibility policy (same \
                   version decodes byte-identically forever; unknown versions are refused, \
                   never guessed) is enforced by that one module. A filesystem or stdio \
                   call anywhere else in `crates/sybil-store/src/` writes bytes the \
                   version policy cannot see — a checkpoint that `latest()` cannot \
                   fall back across, a journal frame the digest never covered, a format \
                   fork that silently breaks warm restart on the next release.\n\nS119 is \
                   a site rule over the same IO intrinsics S110 uses (fs::*, File::open/\
                   create, stdio, print macros), scoped to the persistence crate's library \
                   code and exempting exactly `format.rs`. Fix by expressing the operation \
                   as a `format` helper (encode/decode/write_atomic/scan) so the header, \
                   framing, and digest rules apply, then calling that from the store \
                   layer. There is no allowlist story: bytes that bypass the format \
                   module are unversioned by construction.",
        _ => return None,
    })
}

/// Lint one file, returning all findings (allowlist not yet applied).
pub fn check_file(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let toks = lex(ctx.src);
    let test_spans = test_line_spans(ctx.src, &toks);
    let in_test = |line: u32| test_spans.iter().any(|&(a, b)| line >= a && line <= b);
    let mut out = Vec::new();

    if ctx.kind != FileKind::Test {
        if ctx.kind == FileKind::Lib {
            d001_unordered_iteration(ctx, &toks, &in_test, &mut out);
            d004_panic_policy(ctx, &toks, &in_test, &mut out);
        }
        d002_wall_clock(ctx, &toks, &in_test, &mut out);
        d003_threading(ctx, &toks, &in_test, &mut out);
        d006_rng_hygiene(ctx, &toks, &in_test, &mut out);
    }
    // D005 applies to the crate-root file regardless of anything else.
    if ctx.rel_path.ends_with("src/lib.rs") {
        d005_forbid_unsafe(ctx, &toks, &mut out);
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

fn finding(ctx: &FileCtx<'_>, rule: &'static str, tok: &Token, message: String) -> Finding {
    Finding {
        rule,
        path: ctx.rel_path.to_string(),
        line: tok.line,
        col: tok.col,
        message,
        snippet: line_text(ctx.src, tok.line).trim().to_string(),
        trace: Vec::new(),
    }
}

fn line_text(src: &str, line: u32) -> &str {
    src.lines().nth(line as usize - 1).unwrap_or("")
}

/// [`test_line_spans`] from raw source — shared with the semantic layer
/// ([`crate::parser`]) so both agree on what counts as test code.
pub fn test_line_spans_for(src: &str) -> Vec<(u32, u32)> {
    test_line_spans(src, &lex(src))
}

/// Compute the (start, end) line spans of test-only code: items annotated
/// `#[cfg(test)]` or `#[test]`, including whole `mod tests { ... }` blocks.
fn test_line_spans(src: &str, toks: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_punct(b'#') && toks[i + 1].is_punct(b'[') {
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut attr_idents: Vec<&str> = Vec::new();
            while j < toks.len() && depth > 0 {
                match toks[j].kind {
                    TokKind::Punct(b'[') => depth += 1,
                    TokKind::Punct(b']') => depth -= 1,
                    TokKind::Ident => attr_idents.push(toks[j].text(src)),
                    _ => {}
                }
                j += 1;
            }
            let is_test_attr = attr_idents.first() == Some(&"test")
                || (attr_idents.first() == Some(&"cfg") && attr_idents.contains(&"test"));
            if is_test_attr {
                // The annotated item runs to its closing brace (or `;`).
                let start_line = toks[i].line;
                let mut k = j;
                let mut end_line = start_line;
                // Skip any further attributes between this one and the item.
                while k + 1 < toks.len() && toks[k].is_punct(b'#') && toks[k + 1].is_punct(b'[') {
                    let mut d = 1usize;
                    k += 2;
                    while k < toks.len() && d > 0 {
                        match toks[k].kind {
                            TokKind::Punct(b'[') => d += 1,
                            TokKind::Punct(b']') => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                while k < toks.len() {
                    if toks[k].is_punct(b';') {
                        end_line = toks[k].line;
                        break;
                    }
                    if toks[k].is_punct(b'{') {
                        let mut d = 1usize;
                        let mut m = k + 1;
                        while m < toks.len() && d > 0 {
                            match toks[m].kind {
                                TokKind::Punct(b'{') => d += 1,
                                TokKind::Punct(b'}') => d -= 1,
                                _ => {}
                            }
                            m += 1;
                        }
                        end_line = toks[m.saturating_sub(1).min(toks.len() - 1)].line;
                        break;
                    }
                    k += 1;
                }
                spans.push((start_line, end_line));
                i = j;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

/// D001: identifiers declared (or annotated) as `HashMap`/`HashSet` must
/// not be iterated in library code — `BTreeMap`/`BTreeSet` or an explicit
/// sort is required before anything order-dependent.
fn d001_unordered_iteration(
    ctx: &FileCtx<'_>,
    toks: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for site in hash_iteration_sites(ctx.src, toks) {
        if in_test(site.line) {
            continue;
        }
        let message = match &site.method {
            Some(name) => format!(
                "unordered iteration `{}.{name}()` over a HashMap/HashSet; \
                 use BTreeMap/BTreeSet or sort the items before anything \
                 order-dependent",
                site.recv
            ),
            None => format!(
                "unordered `for … in {}` over a HashMap/HashSet; use \
                 BTreeMap/BTreeSet or sort the items before anything \
                 order-dependent",
                site.recv
            ),
        };
        out.push(finding(ctx, "D001", &toks[site.tok], message));
    }
}

/// One hash-container iteration site. Shared between D001 (the file-local
/// ban) and the `NondetIter` effect intrinsic in [`crate::effects`], so
/// both layers agree on what counts as unordered iteration — including
/// the collect-then-sort escape, which restores a total order and is
/// therefore neither a D001 violation nor a nondeterministic effect.
#[derive(Clone, Debug)]
pub(crate) struct HashIterSite {
    /// The iterated binding's name.
    pub recv: String,
    /// The iterator method (`iter`, `keys`, …); `None` for `for … in`.
    pub method: Option<String>,
    /// Token index of the site (the method name, or the iterated ident).
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl HashIterSite {
    /// The site the way messages quote it: `m.keys()` or `for … in m`.
    pub(crate) fn describe(&self) -> String {
        match &self.method {
            Some(m) => format!("{}.{m}()", self.recv),
            None => format!("for … in {}", self.recv),
        }
    }
}

/// Every hash-container iteration site in one file, in token order.
pub(crate) fn hash_iteration_sites(src: &str, toks: &[Token]) -> Vec<HashIterSite> {
    let hash_idents = collect_hash_typed_idents(src, toks);
    const ITER_METHODS: [&str; 9] = [
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "into_iter",
        "into_keys",
        "into_values",
        "drain",
    ];
    let mut sites: Vec<HashIterSite> = Vec::new();

    // Method-call form: `NAME.iter()`, `self.NAME.keys()`, ...
    for i in 2..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text(src);
        if !ITER_METHODS.contains(&name) {
            continue;
        }
        if !toks[i - 1].is_punct(b'.') || toks[i - 2].kind != TokKind::Ident {
            continue;
        }
        let recv = toks[i - 2].text(src);
        if hash_idents.contains(&recv) && toks.get(i + 1).is_some_and(|n| n.is_punct(b'(')) {
            if collected_into_sorted_binding(src, toks, i) {
                continue;
            }
            sites.push(HashIterSite {
                recv: recv.to_string(),
                method: Some(name.to_string()),
                tok: i,
                line: t.line,
                col: t.col,
            });
        }
    }

    // Loop form: `for PAT in &NAME {`, `for PAT in NAME {`.
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident(src, "for") {
            i += 1;
            continue;
        }
        // Find the `in` keyword before the loop body opens; bail at `{`
        // (an `impl Trait for Type {` has no `in`).
        let mut j = i + 1;
        let mut in_idx = None;
        let mut depth = 0i32;
        while j < toks.len() && j - i < 64 {
            match toks[j].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                TokKind::Punct(b'{') if depth == 0 => break,
                TokKind::Ident if depth == 0 && toks[j].text(src) == "in" => {
                    in_idx = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(in_idx) = in_idx else {
            i += 1;
            continue;
        };
        // Iterable tokens: between `in` and the body `{` at depth 0.
        let mut k = in_idx + 1;
        let mut depth = 0i32;
        let mut expr: Vec<usize> = Vec::new();
        while k < toks.len() && k - in_idx < 64 {
            match toks[k].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                TokKind::Punct(b'{') if depth == 0 => break,
                _ => {}
            }
            expr.push(k);
            k += 1;
        }
        // Match `&`/`&mut` + a single (possibly `self.`-qualified) ident.
        let idents: Vec<usize> = expr
            .iter()
            .copied()
            .filter(|&x| toks[x].kind == TokKind::Ident && toks[x].text(src) != "mut")
            .collect();
        let only_simple = expr.iter().all(|&x| {
            matches!(toks[x].kind, TokKind::Ident)
                || toks[x].is_punct(b'&')
                || toks[x].is_punct(b'.')
        });
        if only_simple && !idents.is_empty() {
            let last = idents[idents.len() - 1];
            let name = toks[last].text(src);
            let qualifier_ok = idents[..idents.len() - 1]
                .iter()
                .all(|&x| toks[x].text(src) == "self" || !hash_idents.contains(&toks[x].text(src)));
            if hash_idents.contains(&name) && qualifier_ok {
                sites.push(HashIterSite {
                    recv: name.to_string(),
                    method: None,
                    tok: last,
                    line: toks[last].line,
                    col: toks[last].col,
                });
            }
        }
        i = in_idx + 1;
    }
    sites.sort_by_key(|s| s.tok);
    sites
}

/// The one sanctioned escape from D001 without an allowlist entry: the
/// iteration feeds a `let` binding whose very next statement sorts it —
/// `let mut v: Vec<_> = map.into_iter().collect(); v.sort…();`. The
/// explicit sort restores a total order, so the hash order never escapes.
fn collected_into_sorted_binding(src: &str, toks: &[Token], method_idx: usize) -> bool {
    // Walk back to the start of the statement; it must be a `let`.
    let mut s = method_idx;
    let mut back = 0;
    while s > 0 && back < 96 {
        if toks[s - 1].is_punct(b';') || toks[s - 1].is_punct(b'{') || toks[s - 1].is_punct(b'}') {
            break;
        }
        s -= 1;
        back += 1;
    }
    if !toks.get(s).is_some_and(|t| t.is_ident(src, "let")) {
        return false;
    }
    let mut n = s + 1;
    if toks.get(n).is_some_and(|t| t.is_ident(src, "mut")) {
        n += 1;
    }
    let Some(name_tok) = toks.get(n) else {
        return false;
    };
    if name_tok.kind != TokKind::Ident {
        return false;
    }
    let name = name_tok.text(src);
    // Find the end of this statement, then require `NAME.sort…(` next.
    let mut e = method_idx;
    let mut fwd = 0;
    let mut depth = 0i32;
    while e < toks.len() && fwd < 96 {
        match toks[e].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => depth -= 1,
            TokKind::Punct(b';') if depth == 0 => break,
            _ => {}
        }
        e += 1;
        fwd += 1;
    }
    toks.get(e + 1).is_some_and(|t| t.is_ident(src, name))
        && toks.get(e + 2).is_some_and(|t| t.is_punct(b'.'))
        && toks
            .get(e + 3)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text(src).starts_with("sort"))
}

/// Find identifiers whose declared type (or initializer) names
/// `HashMap`/`HashSet`: let-bindings, struct fields, and fn parameters.
/// File-scoped — precise enough for a lint, reviewed via the allowlist.
fn collect_hash_typed_idents<'s>(src: &'s str, toks: &[Token]) -> Vec<&'s str> {
    let mut names: Vec<&str> = Vec::new();
    // `IDENT : <type containing HashMap/HashSet>`
    for i in 1..toks.len() {
        if !toks[i].is_punct(b':') {
            continue;
        }
        // Skip `::` path separators.
        if toks.get(i + 1).is_some_and(|t| t.is_punct(b':'))
            || toks[i - 1].is_punct(b':')
        {
            continue;
        }
        if toks[i - 1].kind != TokKind::Ident {
            continue;
        }
        let lhs = toks[i - 1].text(src);
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut j = i + 1;
        while j < toks.len() && j - i < 64 {
            match toks[j].kind {
                TokKind::Punct(b'<') => angle += 1,
                TokKind::Punct(b'>') => angle -= 1,
                TokKind::Punct(b'(') | TokKind::Punct(b'[') => paren += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') if paren > 0 => paren -= 1,
                TokKind::Punct(b')') | TokKind::Punct(b'}') | TokKind::Punct(b',')
                | TokKind::Punct(b';') | TokKind::Punct(b'=')
                    if angle <= 0 && paren == 0 =>
                {
                    break;
                }
                TokKind::Ident => {
                    let t = toks[j].text(src);
                    if t == "HashMap" || t == "HashSet" {
                        names.push(lhs);
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // `let [mut] NAME = HashMap::…` / `HashSet::…` (no annotation).
    for i in 0..toks.len() {
        if !toks[i].is_ident(src, "let") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident(src, "mut")) {
            j += 1;
        }
        let Some(name_tok) = toks.get(j) else { continue };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        let name = name_tok.text(src);
        // Scan to `=`, then look for HashMap/HashSet before `;`.
        let mut k = j + 1;
        while k < toks.len() && k - j < 48 && !toks[k].is_punct(b'=') && !toks[k].is_punct(b';') {
            k += 1;
        }
        if !toks.get(k).is_some_and(|t| t.is_punct(b'=')) {
            continue;
        }
        let mut m = k + 1;
        while m < toks.len() && m - k < 48 && !toks[m].is_punct(b';') {
            if toks[m].kind == TokKind::Ident {
                let t = toks[m].text(src);
                if t == "HashMap" || t == "HashSet" {
                    names.push(name);
                    break;
                }
            }
            m += 1;
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

/// D002: wall-clock reads. Simulation and analytics must run on sim time;
/// only `crates/bench` and the repro CLI's timing lines may consult the
/// host clock.
fn d002_wall_clock(
    ctx: &FileCtx<'_>,
    toks: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    if ctx.crate_name == "sybil-bench" || ctx.rel_path.ends_with("src/bin/repro.rs") {
        return;
    }
    let src = ctx.src;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || in_test(t.line) {
            continue;
        }
        match t.text(src) {
            "Instant"
                if toks.get(i + 1).is_some_and(|a| a.is_punct(b':'))
                    && toks.get(i + 2).is_some_and(|a| a.is_punct(b':'))
                    && toks.get(i + 3).is_some_and(|a| a.is_ident(src, "now"))
                => {
                    out.push(finding(
                        ctx,
                        "D002",
                        t,
                        "`Instant::now()` reads the wall clock; simulation and \
                         analytics must use sim time"
                            .to_string(),
                    ));
                }
            "SystemTime" | "UNIX_EPOCH" => {
                out.push(finding(
                    ctx,
                    "D002",
                    t,
                    format!(
                        "`{}` reads the wall clock; simulation and analytics must \
                         use sim time",
                        t.text(src)
                    ),
                ));
            }
            _ => {}
        }
    }
}

/// D003: raw threading primitives belong in `osn_graph::par` only — every
/// other parallel path must go through the deterministic map there.
fn d003_threading(
    ctx: &FileCtx<'_>,
    toks: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    if ctx.rel_path == "crates/osn-graph/src/par.rs" {
        return;
    }
    let src = ctx.src;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || in_test(t.line) {
            continue;
        }
        let text = t.text(src);
        let is_primitive = matches!(text, "Mutex" | "RwLock" | "Condvar" | "mpsc")
            || (text.starts_with("Atomic") && text.len() > 6);
        let is_spawn = (text == "spawn" || text == "scope")
            && i >= 3
            && toks[i - 1].is_punct(b':')
            && toks[i - 2].is_punct(b':')
            && toks[i - 3].is_ident(src, "thread");
        if is_primitive {
            out.push(finding(
                ctx,
                "D003",
                t,
                format!(
                    "raw threading primitive `{text}` outside osn_graph::par; \
                     use the deterministic parallel map instead"
                ),
            ));
        } else if is_spawn {
            out.push(finding(
                ctx,
                "D003",
                t,
                format!(
                    "`thread::{text}` outside osn_graph::par; use the \
                     deterministic parallel map instead"
                ),
            ));
        }
    }
}

/// D004: panic policy — library code returns `Result` or documents the
/// invariant in the allowlist; it does not unwrap its way past errors.
fn d004_panic_policy(
    ctx: &FileCtx<'_>,
    toks: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let src = ctx.src;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || in_test(t.line) {
            continue;
        }
        let text = t.text(src);
        let is_method = (text == "unwrap" || text == "expect")
            && i >= 1
            && toks[i - 1].is_punct(b'.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct(b'('));
        let is_macro = matches!(text, "panic" | "unreachable" | "todo" | "unimplemented")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(b'!'));
        if is_method {
            out.push(finding(
                ctx,
                "D004",
                t,
                format!(
                    "`.{text}()` in library code; propagate a Result (or \
                     allowlist with the invariant that makes this infallible)"
                ),
            ));
        } else if is_macro {
            out.push(finding(
                ctx,
                "D004",
                t,
                format!(
                    "`{text}!` in library code; return an error (or allowlist \
                     with the invariant that makes this unreachable)"
                ),
            ));
        }
    }
}

/// D005: every library crate root must carry `#![forbid(unsafe_code)]`.
fn d005_forbid_unsafe(ctx: &FileCtx<'_>, toks: &[Token], out: &mut Vec<Finding>) {
    let src = ctx.src;
    let has = (0..toks.len()).any(|i| {
        toks[i].is_ident(src, "forbid")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(b'('))
            && toks.get(i + 2).is_some_and(|t| t.is_ident(src, "unsafe_code"))
    });
    if !has {
        out.push(Finding {
            rule: "D005",
            path: ctx.rel_path.to_string(),
            line: 1,
            col: 1,
            message: "library crate is missing `#![forbid(unsafe_code)]`".to_string(),
            snippet: line_text(ctx.src, 1).trim().to_string(),
            trace: Vec::new(),
        });
    }
}

/// D006: RNG hygiene — every random stream must be explicitly seeded so
/// runs replay bit-identically; entropy sources are forbidden everywhere.
fn d006_rng_hygiene(
    ctx: &FileCtx<'_>,
    toks: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let src = ctx.src;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || in_test(t.line) {
            continue;
        }
        let text = t.text(src);
        let flagged = matches!(text, "thread_rng" | "OsRng" | "from_entropy" | "getrandom")
            || (text == "random"
                && i >= 3
                && toks[i - 1].is_punct(b':')
                && toks[i - 2].is_punct(b':')
                && toks[i - 3].is_ident(src, "rand"));
        if flagged {
            out.push(finding(
                ctx,
                "D006",
                t,
                format!(
                    "entropy-based RNG `{text}`; all randomness must come from \
                     an explicitly seeded generator"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(src: &str) -> Vec<Finding> {
        check_file(&FileCtx {
            rel_path: "crates/x/src/demo.rs",
            crate_name: "x",
            kind: FileKind::Lib,
            src,
        })
    }

    #[test]
    fn d001_flags_map_iteration_and_loops() {
        let src = "fn f() {\n    let mut m: HashMap<u32, u32> = HashMap::new();\n    for (k, v) in &m { let _ = (k, v); }\n    let _ = m.values().sum::<u32>();\n}\n";
        let f = lint_lib(src);
        let d001: Vec<_> = f.iter().filter(|f| f.rule == "D001").collect();
        assert_eq!(d001.len(), 2, "{f:?}");
        assert_eq!(d001[0].line, 3);
        assert_eq!(d001[1].line, 4);
    }

    #[test]
    fn d001_ignores_btreemap_and_lookups() {
        let src = "fn f() {\n    let mut m: BTreeMap<u32, u32> = BTreeMap::new();\n    for (k, v) in &m { let _ = (k, v); }\n    let s: HashSet<u32> = HashSet::new();\n    let _ = s.contains(&1);\n}\n";
        assert!(lint_lib(src).iter().all(|f| f.rule != "D001"));
    }

    #[test]
    fn d001_permits_collect_then_sort() {
        let src = "fn f(m: HashMap<u32, u32>) -> Vec<(u32, u32)> {\n    let mut v: Vec<(u32, u32)> = m.into_iter().collect();\n    v.sort_unstable();\n    v\n}\n";
        assert!(lint_lib(src).iter().all(|f| f.rule != "D001"), "{:?}", lint_lib(src));
        // Without the sort the same shape is still a violation.
        let bad = "fn f(m: HashMap<u32, u32>) -> Vec<(u32, u32)> {\n    let v: Vec<(u32, u32)> = m.into_iter().collect();\n    v\n}\n";
        assert_eq!(lint_lib(bad).iter().filter(|f| f.rule == "D001").count(), 1);
    }

    #[test]
    fn d002_flags_instant_now_not_import() {
        let src = "use std::time::Instant;\nfn f() { let _t = Instant::now(); }\n";
        let f = lint_lib(src);
        let d002: Vec<_> = f.iter().filter(|f| f.rule == "D002").collect();
        assert_eq!(d002.len(), 1);
        assert_eq!(d002[0].line, 2);
    }

    #[test]
    fn d003_flags_mutex_and_spawn() {
        let src = "use std::sync::Mutex;\nfn f() { std::thread::spawn(|| {}); }\n";
        let f = lint_lib(src);
        assert_eq!(f.iter().filter(|f| f.rule == "D003").count(), 2);
    }

    #[test]
    fn d004_skips_test_modules() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        let f = lint_lib(src);
        let d004: Vec<_> = f.iter().filter(|f| f.rule == "D004").collect();
        assert_eq!(d004.len(), 1);
        assert_eq!(d004[0].line, 1);
    }

    #[test]
    fn d004_does_not_flag_unwrap_or() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        assert!(lint_lib(src).iter().all(|f| f.rule != "D004"));
    }

    #[test]
    fn d006_flags_entropy() {
        let src = "fn f() { let mut rng = rand::thread_rng(); let _x: u8 = rand::random(); }\n";
        assert_eq!(lint_lib(src).iter().filter(|f| f.rule == "D006").count(), 2);
    }

    #[test]
    fn d005_reports_missing_forbid() {
        let f = check_file(&FileCtx {
            rel_path: "crates/x/src/lib.rs",
            crate_name: "x",
            kind: FileKind::Lib,
            src: "//! docs\npub mod a;\n",
        });
        assert_eq!(f.iter().filter(|f| f.rule == "D005").count(), 1);
        let ok = check_file(&FileCtx {
            rel_path: "crates/x/src/lib.rs",
            crate_name: "x",
            kind: FileKind::Lib,
            src: "#![forbid(unsafe_code)]\npub mod a;\n",
        });
        assert!(ok.iter().all(|f| f.rule != "D005"));
    }
}
