//! The semantic S-series rules (S101–S104, S106–S108) over the
//! workspace model.
//!
//! Unlike the token rules (D001–D006), which judge one file at a time,
//! these rules need the whole-workspace [`WorkspaceModel`] and
//! [`CallGraph`]: panic *reachability*, parallel-boundary *escape*, and
//! dead-*export* analysis are all cross-file properties, and S106's
//! sanctioned-location exemption is a workspace-layout judgment. Every
//! call-graph finding carries a trace explaining, edge by edge, why the
//! rule fired. S105 (allowlist staleness) lives in
//! [`workspace::run_workspace`](crate::workspace::run_workspace) because
//! it judges the allowlist itself, not the source.

use crate::callgraph::{CallGraph, Edge};
use crate::costs::HotPathConfig;
use crate::effects::EffectConfig;
use crate::lexer::lex;
use crate::parser::{PanicKind, Vis};
use crate::report::Finding;
use crate::rules::{test_line_spans_for, FileKind};
use crate::symbols::{FnIdx, WorkspaceModel};

/// Run S101–S108 plus the effect rules S109–S112 and the cost rules
/// S113–S117 with default (empty) configurations — no roots or sinks
/// designated, so only S112 of the config-anchored families can fire.
/// Findings sorted by (path, line, col, rule).
pub fn check_workspace(model: &WorkspaceModel) -> Vec<Finding> {
    check_workspace_with(model, &EffectConfig::default(), &HotPathConfig::default())
}

/// Run every semantic rule, with the effect-rule roots and sinks taken
/// from `effects` (parsed out of `lint.toml`'s `[effects.*]` tables) and
/// the cost-rule hot-path roots from `hotpaths` (`[hotpaths.roots]`).
pub fn check_workspace_with(
    model: &WorkspaceModel,
    effects: &EffectConfig,
    hotpaths: &HotPathConfig,
) -> Vec<Finding> {
    let cg = CallGraph::build(model);
    let mut out = Vec::new();
    s101_panic_reachability(model, &cg, &mut out);
    s102_float_reductions(model, &cg, &mut out);
    s103_par_captures(model, &mut out);
    s104_dead_exports(model, &mut out);
    s106_unbounded_channels(model, &mut out);
    s107_stringly_errors(model, &mut out);
    s108_hot_path_hash_keys(model, &mut out);
    crate::effects::check_effects(model, &cg, effects, &mut out);
    crate::costs::check_costs(model, &cg, hotpaths, &mut out);
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    out
}

fn line_text(src: &str, line: u32) -> String {
    src.lines()
        .nth(line as usize - 1)
        .unwrap_or("")
        .trim()
        .to_string()
}

/// `caller calls callee at file:line` for one forward edge.
fn edge_step(model: &WorkspaceModel, e: &Edge) -> String {
    format!(
        "{} calls {} at {}:{}",
        model.fq_name(e.from),
        model.fq_name(e.to),
        model.path_of(e.from),
        e.line
    )
}

/// S101: panic reachability. Any `pub` library function from which a
/// panic site (`unwrap` / `expect` / panic-family macro / guard-free
/// indexing) is reachable through the call graph is a violation, reported
/// at the panic site with the full call chain from the nearest `pub`
/// entry point.
fn s101_panic_reachability(model: &WorkspaceModel, cg: &CallGraph, out: &mut Vec<Finding>) {
    for f in 0..model.fns.len() {
        if !model.is_lib_fn(f) || model.fns[f].def.panics.is_empty() {
            continue;
        }
        let Some((anc, path)) = cg.nearest_ancestor(f, |i| model.is_pub_api(i)) else {
            continue; // not reachable from any exported function
        };
        let file = &model.files[model.fns[f].file];
        for site in &model.fns[f].def.panics {
            let verb = match site.kind {
                PanicKind::Unwrap | PanicKind::Expect => "panics via",
                PanicKind::Macro => "panics with",
                PanicKind::Index => "may panic on unguarded index",
            };
            let mut trace: Vec<String> = path.iter().map(|e| edge_step(model, e)).collect();
            trace.push(format!(
                "{} {} `{}` at {}:{}",
                model.fq_name(f),
                verb,
                site.what,
                file.rel,
                site.line
            ));
            out.push(Finding {
                rule: "S101",
                path: file.rel.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "`{}` is reachable from pub `{}` ({} call{} away); propagate \
                     Result/Option or allowlist with the guarding invariant",
                    site.what,
                    model.fq_name(anc),
                    path.len(),
                    if path.len() == 1 { "" } else { "s" },
                ),
                snippet: line_text(&file.src, site.line),
                trace,
            });
        }
    }
}

/// S102: non-associative floating-point reductions (`sum` / `fold` /
/// `+=`-in-loop over `f32`/`f64`) in functions reachable from a `par::`
/// map/sweep closure. Reordering such a reduction across the thread
/// boundary would break the bit-identical guarantee; reviewed kernels
/// whose reduction order is fixed per item belong in the allowlist.
fn s102_float_reductions(model: &WorkspaceModel, cg: &CallGraph, out: &mut Vec<Finding>) {
    // Par entry sites in deterministic order: (fn, par-call position).
    struct Entry {
        caller: FnIdx,
        label: String,
        at: String,
        roots: Vec<FnIdx>,
        args: (usize, usize),
    }
    let mut entries: Vec<Entry> = Vec::new();
    for f in 0..model.fns.len() {
        if !model.is_lib_fn(f) {
            continue;
        }
        let def = &model.fns[f].def;
        for pc in &def.par_calls {
            // Roots: calls lexically inside the par call's argument span.
            let mut roots: Vec<FnIdx> = Vec::new();
            for call in &def.calls {
                if call.tok > pc.args.0 && call.tok < pc.args.1 {
                    for e in &cg.out[f] {
                        if e.line == call.line && model.fns[e.to].def.name == call.name {
                            roots.push(e.to);
                        }
                    }
                }
            }
            roots.sort_unstable();
            roots.dedup();
            entries.push(Entry {
                caller: f,
                label: format!("par::{}", pc.entry),
                at: format!("{}:{}", model.path_of(f), pc.line),
                roots,
                args: pc.args,
            });
        }
    }

    let mut seen: Vec<(String, u32, u32)> = Vec::new();
    let mut emit = |model: &WorkspaceModel,
                    out: &mut Vec<Finding>,
                    site_fn: FnIdx,
                    site: &crate::parser::ReductionSite,
                    trace: Vec<String>,
                    entry_label: &str| {
        let file = &model.files[model.fns[site_fn].file];
        let key = (file.rel.clone(), site.line, site.col);
        if seen.contains(&key) {
            return;
        }
        seen.push(key);
        out.push(Finding {
            rule: "S102",
            path: file.rel.clone(),
            line: site.line,
            col: site.col,
            message: format!(
                "float reduction `{}` runs under the parallel entry `{}`; \
                 keep reductions off the par boundary or allowlist the kernel \
                 with its ordering argument",
                site.what, entry_label
            ),
            snippet: line_text(&file.src, site.line),
            trace,
        });
    };

    for entry in &entries {
        let def = &model.fns[entry.caller].def;
        // Reductions written directly inside the closure argument span.
        for site in &def.reductions {
            if site.tok > entry.args.0
                && site.tok < entry.args.1
                && (site.definite || def.float_evidence)
            {
                let trace = vec![
                    format!("parallel entry `{}` at {}", entry.label, entry.at),
                    format!(
                        "{} reduces floats via `{}` inside the closure at {}:{}",
                        model.fq_name(entry.caller),
                        site.what,
                        model.path_of(entry.caller),
                        site.line
                    ),
                ];
                emit(model, out, entry.caller, site, trace, &entry.label);
            }
        }
        // Reductions in functions reachable from the closure's callees.
        for target in cg.reachable_from(&entry.roots) {
            if !model.is_lib_fn(target) {
                continue;
            }
            let tdef = &model.fns[target].def;
            let has_floats = tdef.float_evidence;
            for site in &tdef.reductions {
                if !(site.definite || has_floats) {
                    continue;
                }
                // Deterministic shortest chain from any root.
                let path = entry
                    .roots
                    .iter()
                    .filter_map(|&r| cg.path(r, target).map(|p| (r, p)))
                    .min_by_key(|(r, p)| (p.len(), *r));
                let Some((root, path)) = path else { continue };
                let mut trace = vec![
                    format!("parallel entry `{}` at {}", entry.label, entry.at),
                    format!("closure calls {}", model.fq_name(root)),
                ];
                trace.extend(path.iter().map(|e| edge_step(model, e)));
                trace.push(format!(
                    "{} reduces floats via `{}` at {}:{}",
                    model.fq_name(target),
                    site.what,
                    model.path_of(target),
                    site.line
                ));
                emit(model, out, target, site, trace, &entry.label);
            }
        }
    }
}

/// S103: mutable state (`&mut` bindings, RNG handles) captured by
/// closures passed across the `par` boundary. Shared mutable state inside
/// a parallel map makes results depend on thread interleaving — exactly
/// what the deterministic map exists to prevent.
fn s103_par_captures(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    for f in 0..model.fns.len() {
        if !model.is_lib_fn(f) {
            continue;
        }
        let def = &model.fns[f].def;
        let file = &model.files[model.fns[f].file];
        for pc in &def.par_calls {
            for cap in &pc.captures {
                let what = match cap.how {
                    "&mut" => format!("`&mut {}`", cap.name),
                    _ => format!("RNG handle `{}`", cap.name),
                };
                out.push(Finding {
                    rule: "S103",
                    path: file.rel.clone(),
                    line: cap.line,
                    col: cap.col,
                    message: format!(
                        "{what} is captured by a closure crossing the `par::{}` \
                         boundary; thread interleaving would order its mutations \
                         — move the state inside the closure or restructure",
                        pc.entry
                    ),
                    snippet: line_text(&file.src, cap.line),
                    trace: vec![
                        format!(
                            "parallel entry `par::{}` at {}:{}",
                            pc.entry,
                            file.rel,
                            pc.line
                        ),
                        format!("{} captured at {}:{}", what, file.rel, cap.line),
                    ],
                });
            }
        }
    }
}

/// S104: dead exports. A `pub` item that no bin, test, bench, example, or
/// other crate ever names is API surface without users — demote it to
/// `pub(crate)` (keeping it for siblings) or delete it.
fn s104_dead_exports(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    // An export is alive if anything that exercises the public surface
    // names it: another crate, a same-crate bin/test/bench/example file,
    // or inline `#[cfg(test)]` code anywhere in the crate (including the
    // defining file — the definition itself never sits in a test span).
    let used_externally = |def_file: usize, name: &str| -> bool {
        let def_crate = &model.files[def_file].crate_name;
        let name = name.to_string();
        model.files.iter().enumerate().any(|(fi, file)| {
            let external = file.crate_name != *def_crate
                || file.kind != crate::rules::FileKind::Lib;
            if external && fi != def_file {
                file.parsed.idents.binary_search(&name).is_ok()
            } else {
                file.parsed.test_idents.binary_search(&name).is_ok()
            }
        })
    };

    // A file whose pub fns are externally exercised anchors its pub
    // types: values of those types flow out through the alive fns even
    // when callers never write the type's name (`let r = fig1::run(…)`).
    let mut anchored = vec![false; model.files.len()];
    for f in 0..model.fns.len() {
        let node = &model.fns[f];
        if node.def.vis == Vis::Pub
            && !node.def.in_test
            && used_externally(node.file, &node.def.name)
        {
            anchored[node.file] = true;
        }
    }

    // Non-fn pub items.
    for (fi, item) in model.pub_items() {
        if anchored[fi] || used_externally(fi, &item.name) {
            continue;
        }
        let file = &model.files[fi];
        out.push(Finding {
            rule: "S104",
            path: file.rel.clone(),
            line: item.line,
            col: 1,
            message: format!(
                "pub {} `{}` is not named by any bin, test, bench, example, or \
                 other crate; demote to pub(crate) or remove",
                item.kind, item.name
            ),
            snippet: line_text(&file.src, item.line),
            trace: vec![format!(
                "`{}` is exported at {}:{} but only its own crate's library \
                 code ever names it",
                item.name, file.rel, item.line
            )],
        });
    }

    // Pub fns (free functions and inherent methods).
    for f in 0..model.fns.len() {
        let node = &model.fns[f];
        if node.def.vis != Vis::Pub
            || node.def.in_test
            || model.files[node.file].kind != crate::rules::FileKind::Lib
            || node.def.name == "main"
        {
            continue;
        }
        if used_externally(node.file, &node.def.name) {
            continue;
        }
        let file = &model.files[node.file];
        out.push(Finding {
            rule: "S104",
            path: file.rel.clone(),
            line: node.def.line,
            col: 1,
            message: format!(
                "pub fn `{}` is not named by any bin, test, bench, example, or \
                 other crate; demote to pub(crate) or remove",
                model.fq_name(f)
            ),
            snippet: line_text(&file.src, node.def.line),
            trace: vec![format!(
                "`{}` is exported at {}:{} but only its own crate's library \
                 code ever names it",
                model.fq_name(f),
                file.rel,
                node.def.line
            )],
        });
    }
}

/// S106: unbounded channel constructors. The serving engine stages every
/// cross-shard effect in a bounded `DeltaQueue` so overflow is an
/// explicit error; an `unbounded()` / `unbounded_channel()` constructor
/// anywhere else trades that guarantee for silent memory growth under
/// backpressure. Only `sybil-serve`'s queue module — the one reviewed
/// staging surface — is exempt; reviewed uses elsewhere (with a proof of
/// the message bound) belong in lint.toml.
fn s106_unbounded_channels(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    const NAMES: [&str; 2] = ["unbounded", "unbounded_channel"];
    for file in &model.files {
        if file.kind == FileKind::Test {
            continue;
        }
        if file.crate_name == "sybil-serve" && file.rel.ends_with("src/queue.rs") {
            continue;
        }
        let src = file.src.as_str();
        let toks = lex(src);
        let spans = test_line_spans_for(src);
        let in_test = |line: u32| spans.iter().any(|&(a, b)| line >= a && line <= b);
        for (i, t) in toks.iter().enumerate() {
            if !NAMES.iter().any(|n| t.is_ident(src, n)) || in_test(t.line) {
                continue;
            }
            // Constructor *calls* only: `unbounded(` or `unbounded::<T>(`.
            // A bare mention (doc string, field name) is not a channel.
            let rest = &toks[i + 1..];
            let is_call = rest.first().is_some_and(|n| n.is_punct(b'('))
                || (rest.len() >= 3
                    && rest[0].is_punct(b':')
                    && rest[1].is_punct(b':')
                    && rest[2].is_punct(b'<'));
            if !is_call {
                continue;
            }
            out.push(Finding {
                rule: "S106",
                path: file.rel.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "unbounded channel constructor `{}`; stage cross-task effects in a \
                     bounded queue (see sybil-serve's DeltaQueue) so overflow is an \
                     explicit error, or allowlist with the message-count bound",
                    t.text(src)
                ),
                snippet: line_text(src, t.line),
                trace: vec![format!(
                    "`{}` constructs a channel with no capacity bound at {}:{}, \
                     outside the sanctioned crates/sybil-serve/src/queue.rs",
                    t.text(src),
                    file.rel,
                    t.line
                )],
            });
        }
    }
}

/// S107: stringly-typed error API. Two shapes: (a) a `pub fn` whose
/// return type is `Result<_, String>` — the error carries no structure,
/// so callers can only string-match or rewrap (the workspace's typed
/// errors live in `sybil_core::Error`); (b) library code settling an
/// error with `unwrap_or_else(… process::exit …)`, which turns a
/// recoverable condition into a silent process death the caller cannot
/// intercept (binaries own their exit codes; libraries return errors).
fn s107_stringly_errors(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    for file in &model.files {
        if file.kind == FileKind::Test {
            continue;
        }
        let src = file.src.as_str();
        let toks = lex(src);
        let spans = test_line_spans_for(src);
        let in_test = |line: u32| spans.iter().any(|&(a, b)| line >= a && line <= b);

        // (a) `pub fn … -> Result<_, String>`, in libraries and binaries
        // alike — a pub signature is API surface either way. Restricted
        // visibility (`pub(crate)` …) is internal and exempt.
        for i in 0..toks.len() {
            if !toks[i].is_ident(src, "pub") || in_test(toks[i].line) {
                continue;
            }
            let Some(fn_tok) = toks.get(i + 1) else { break };
            if !fn_tok.is_ident(src, "fn") {
                continue;
            }
            let Some(name_tok) = toks.get(i + 2) else { break };
            let fn_name = name_tok.text(src);
            if let Some(res_tok) = stringly_result_in_return(src, &toks, i + 3) {
                out.push(Finding {
                    rule: "S107",
                    path: file.rel.clone(),
                    line: res_tok.line,
                    col: res_tok.col,
                    message: format!(
                        "pub fn `{fn_name}` returns Result<_, String>; a string error \
                         cannot be matched on and carries no source — return a typed \
                         error (see sybil_core::Error) and keep prose in Display"
                    ),
                    snippet: line_text(src, res_tok.line),
                    trace: vec![format!(
                        "`{fn_name}` declares a stringly-typed error at {}:{}; callers \
                         can only string-match or rewrap it",
                        file.rel, res_tok.line
                    )],
                });
            }
        }

        // (b) `unwrap_or_else(… process::exit …)` in library code only —
        // binaries legitimately own the process exit.
        if file.kind != FileKind::Lib {
            continue;
        }
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident(src, "unwrap_or_else") || in_test(t.line) {
                continue;
            }
            if !toks.get(i + 1).is_some_and(|n| n.is_punct(b'(')) {
                continue;
            }
            if call_args_invoke_process_exit(src, &toks, i + 2) {
                out.push(Finding {
                    rule: "S107",
                    path: file.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: "library code exits the process inside `unwrap_or_else`; \
                              return the error and let the binary choose the exit code"
                        .to_string(),
                    snippet: line_text(src, t.line),
                    trace: vec![format!(
                        "`unwrap_or_else` at {}:{} reaches `process::exit`, killing the \
                         process from library code no caller can intercept",
                        file.rel, t.line
                    )],
                });
            }
        }
    }
}

/// S108: hash containers keyed by node or packed-edge ids in the
/// designated scale-critical modules — the serving engine's mirror and
/// shard scan loop, and the graph's CSR snapshot. Those modules are the
/// million-account hot path: their memory-layout contract is flat arenas
/// (CSR row blocks, the FlatDelta link arena, sorted triple arrays), so
/// a `HashMap`/`HashSet` keyed by `NodeId`/`u32`/`u64` (or a tuple of
/// them) there reintroduces per-entry hashing, pointer-chased buckets,
/// and 8–48 B of overhead per id — exactly the structures the
/// million-account refactor removed. Reviewed small maps (provably
/// bounded, off the per-event path) belong in lint.toml with that bound.
fn s108_hot_path_hash_keys(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    /// The scale-critical modules, as `(crate, path suffix)` pairs.
    const HOT: [(&str, &str); 3] = [
        ("sybil-serve", "src/mirror.rs"),
        ("sybil-serve", "src/shard.rs"),
        ("osn-graph", "src/snapshot.rs"),
    ];
    /// Key types that are account or packed-edge ids.
    const KEYS: [&str; 3] = ["NodeId", "u32", "u64"];
    for file in &model.files {
        let hot = HOT
            .iter()
            .any(|&(krate, suffix)| file.crate_name == krate && file.rel.ends_with(suffix));
        if !hot || file.kind == FileKind::Test {
            continue;
        }
        let src = file.src.as_str();
        let toks = lex(src);
        let spans = test_line_spans_for(src);
        let in_test = |line: u32| spans.iter().any(|&(a, b)| line >= a && line <= b);
        for (i, t) in toks.iter().enumerate() {
            let container = if t.is_ident(src, "HashMap") {
                "HashMap"
            } else if t.is_ident(src, "HashSet") {
                "HashSet"
            } else {
                continue;
            };
            if in_test(t.line) {
                continue;
            }
            // Only a generic argument list names a key type: `HashMap<K,…>`
            // or turbofish `HashMap::<K,…>`. A bare mention (an import, a
            // doc reference, `HashMap::new()` whose key is inferred at a
            // flagged annotation elsewhere) keys nothing by itself.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_punct(b':'))
                && toks.get(j + 1).is_some_and(|n| n.is_punct(b':'))
                && toks.get(j + 2).is_some_and(|n| n.is_punct(b'<'))
            {
                j += 2;
            }
            if !toks.get(j).is_some_and(|n| n.is_punct(b'<')) {
                continue;
            }
            j += 1;
            // The key type: a flagged id type, or a tuple starting with one
            // (packed pairs like `(u32, u32)`).
            if toks.get(j).is_some_and(|n| n.is_punct(b'(')) {
                j += 1;
            }
            let Some(key) = toks.get(j) else { continue };
            if !KEYS.iter().any(|k| key.is_ident(src, k)) {
                continue;
            }
            let key_name = key.text(src);
            out.push(Finding {
                rule: "S108",
                path: file.rel.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "{container} keyed by `{key_name}` in a scale-critical module; use \
                     the flat layouts (CSR row probes, the FlatDelta arena, sorted \
                     arrays) or allowlist with the proven size bound",
                ),
                snippet: line_text(src, t.line),
                trace: vec![format!(
                    "`{container}` keyed by `{key_name}` at {}:{} sits on the \
                     million-account hot path; this module's layout contract is flat \
                     id-indexed arenas, not hash tables",
                    file.rel, t.line
                )],
            });
        }
    }
}

/// Does the fn signature starting at token `start` (just past the fn
/// name) return `Result<_, String>`? Returns the `Result` token when so.
fn stringly_result_in_return<'t>(
    src: &str,
    toks: &'t [crate::lexer::Token],
    start: usize,
) -> Option<&'t crate::lexer::Token> {
    // Find `->` at paren depth 0, stopping at the body or a `;`.
    let mut paren = 0i32;
    let mut j = start;
    let arrow = loop {
        let t = toks.get(j)?;
        if t.is_punct(b'(') {
            paren += 1;
        } else if t.is_punct(b')') {
            paren -= 1;
        } else if paren == 0 && (t.is_punct(b'{') || t.is_punct(b';')) {
            return None; // no return type
        } else if paren == 0
            && t.is_punct(b'-')
            && toks.get(j + 1).is_some_and(|n| n.is_punct(b'>'))
        {
            break j + 2;
        }
        j += 1;
    };
    // Within the return type, find `Result <` and walk its generic args.
    let mut k = arrow;
    while let Some(t) = toks.get(k) {
        if t.is_punct(b'{') || t.is_punct(b';') || t.is_ident(src, "where") {
            return None;
        }
        if t.is_ident(src, "Result") && toks.get(k + 1).is_some_and(|n| n.is_punct(b'<')) {
            let mut depth = 1i32;
            let mut m = k + 2;
            while let Some(t) = toks.get(m) {
                // An `->` inside the generics belongs to an fn type; its
                // `>` is not a closing angle bracket.
                if t.is_punct(b'-') && toks.get(m + 1).is_some_and(|n| n.is_punct(b'>')) {
                    m += 2;
                    continue;
                }
                if t.is_punct(b'<') {
                    depth += 1;
                } else if t.is_punct(b'>') {
                    depth -= 1;
                    if depth == 0 {
                        return None; // generics closed without a String error
                    }
                } else if t.is_punct(b',') && depth == 1 {
                    // The error parameter: flag exactly `String >`.
                    if toks.get(m + 1).is_some_and(|n| n.is_ident(src, "String"))
                        && toks.get(m + 2).is_some_and(|n| n.is_punct(b'>'))
                    {
                        return Some(&toks[k]);
                    }
                    return None;
                }
                m += 1;
            }
            return None;
        }
        k += 1;
    }
    None
}

/// Does the call-argument span opening at token `start` (just past the
/// `(`) contain a `process :: exit` invocation?
fn call_args_invoke_process_exit(
    src: &str,
    toks: &[crate::lexer::Token],
    start: usize,
) -> bool {
    let mut depth = 1i32;
    let mut j = start;
    while let Some(t) = toks.get(j) {
        if t.is_punct(b'(') {
            depth += 1;
        } else if t.is_punct(b')') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.is_ident(src, "process")
            && toks.get(j + 1).is_some_and(|n| n.is_punct(b':'))
            && toks.get(j + 2).is_some_and(|n| n.is_punct(b':'))
            && toks.get(j + 3).is_some_and(|n| n.is_ident(src, "exit"))
        {
            return true;
        }
        j += 1;
    }
    false
}
