//! Workspace discovery and the lint driver.
//!
//! `--workspace` walks every member crate under `crates/` plus the root
//! package's `src/`, classifies each `.rs` file (library / binary / test),
//! runs the rules, and partitions findings through the allowlist.
//! `vendor/` and `target/` are never scanned: vendored stubs are external
//! code, and build output is noise.

use crate::allowlist::Allowlist;
use crate::report::{Finding, Report};
use crate::rules::{check_file, FileCtx, FileKind};
use crate::symbols::WorkspaceModel;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One file scheduled for linting.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path, `/`-separated (stable across platforms).
    pub rel: String,
    /// Owning package name.
    pub crate_name: String,
    /// Build role.
    pub kind: FileKind,
}

/// Discover every lintable `.rs` file under `root` (a workspace root).
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        members.sort();
        for member in members {
            let name = package_name(&member.join("Cargo.toml")).unwrap_or_else(|| {
                member
                    .file_name()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default()
            });
            collect_crate(root, &member, &name, &mut out)?;
        }
    }
    // The root package's own sources.
    if root.join("Cargo.toml").is_file() && root.join("src").is_dir() {
        let name = package_name(&root.join("Cargo.toml")).unwrap_or_else(|| "root".into());
        collect_dir(root, &root.join("src"), &name, &mut out)?;
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

/// Collect `src/`, `tests/`, `benches/`, `examples/` of one crate.
fn collect_crate(
    root: &Path,
    member: &Path,
    name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    for sub in ["src", "tests", "benches", "examples"] {
        let dir = member.join(sub);
        if dir.is_dir() {
            collect_dir(root, &dir, name, out)?;
        }
    }
    Ok(())
}

fn collect_dir(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                // Lint fixtures are deliberately-bad code; never scan them.
                if p.file_name().is_some_and(|n| n == "fixtures") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                let rel = rel_path(root, &p);
                out.push(SourceFile {
                    kind: classify(&rel),
                    abs: p,
                    rel,
                    crate_name: crate_name.to_string(),
                });
            }
        }
    }
    Ok(())
}

/// Classify a workspace-relative path into its build role.
pub fn classify(rel: &str) -> FileKind {
    if rel.contains("/tests/") || rel.contains("/benches/") || rel.contains("/examples/") {
        FileKind::Test
    } else if rel.contains("/src/bin/") || rel.ends_with("/src/main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

fn rel_path(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Extract `name = "..."` from the `[package]` section of a Cargo.toml.
fn package_name(manifest: &Path) -> Option<String> {
    let content = fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in content.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Lint the given files with the per-file token rules only (D-series).
/// Semantic rules need whole-workspace context; see [`run_workspace`].
pub fn run(files: &[SourceFile], allowlist: &Allowlist) -> io::Result<Report> {
    run_impl(files, allowlist, false)
}

/// Lint the given files with the token rules *and* the semantic S-series
/// (call-graph rules S101–S104 plus the S105 staleness check, which
/// promotes every unused allowlist entry to an error anchored at its
/// `[[allow]]` line in lint.toml).
pub fn run_workspace(files: &[SourceFile], allowlist: &Allowlist) -> io::Result<Report> {
    run_impl(files, allowlist, true)
}

fn run_impl(files: &[SourceFile], allowlist: &Allowlist, semantic: bool) -> io::Result<Report> {
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let mut used = vec![false; allowlist.entries.len()];
    let mut sources: Vec<String> = Vec::with_capacity(files.len());
    for f in files {
        sources.push(fs::read_to_string(&f.abs)?);
    }

    let mut findings: Vec<Finding> = Vec::new();
    for (f, src) in files.iter().zip(&sources) {
        findings.extend(check_file(&FileCtx {
            rel_path: &f.rel,
            crate_name: &f.crate_name,
            kind: f.kind,
            src,
        }));
    }
    if semantic {
        let model = WorkspaceModel::build(files, &sources);
        findings.extend(crate::rules_sem::check_workspace_with(
            &model,
            &allowlist.effects,
            &allowlist.hotpaths,
        ));
    }

    for finding in findings {
        match allowlist.matching(&finding) {
            Some(entry) => {
                let idx = allowlist
                    .entries
                    .iter()
                    .position(|e| std::ptr::eq(e, entry))
                    .unwrap_or(usize::MAX);
                if idx != usize::MAX {
                    used[idx] = true;
                }
                report
                    .allowed
                    .push((finding, entry.justification.clone()));
            }
            None => report.violations.push(finding),
        }
    }
    for (i, e) in allowlist.entries.iter().enumerate() {
        if !used[i] {
            report.unused_allowlist.push(e.clone());
        }
    }
    if semantic {
        // S105: staleness is an error, not a warning — a stale entry
        // would silently re-arm if its pattern ever came back.
        for e in &report.unused_allowlist {
            report.violations.push(Finding {
                rule: "S105",
                path: "lint.toml".to_string(),
                line: e.defined_at,
                col: 1,
                message: format!(
                    "allowlist entry (rule={}, path={}) matched nothing this run; \
                     remove it or run --fix-allowlist",
                    e.rule, e.path
                ),
                snippet: "[[allow]]".to_string(),
                trace: vec![format!(
                    "entry defined at lint.toml:{} covers rule {} in {} but no such \
                     finding exists",
                    e.defined_at, e.rule, e.path
                )],
            });
        }
    }
    report.violations.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(report)
}

/// Locate the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(content) = fs::read_to_string(&manifest) {
                if content.lines().any(|l| l.trim() == "[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(classify("crates/x/src/lib.rs"), FileKind::Lib);
        assert_eq!(classify("crates/x/src/bin/tool.rs"), FileKind::Bin);
        assert_eq!(classify("crates/x/src/main.rs"), FileKind::Bin);
        assert_eq!(classify("crates/x/tests/it.rs"), FileKind::Test);
        assert_eq!(classify("crates/x/benches/b.rs"), FileKind::Test);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
    }

    #[test]
    fn discovers_this_workspace() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let files = discover(&root).unwrap();
        assert!(files.iter().any(|f| f.rel == "crates/sybil-lint/src/lexer.rs"));
        assert!(files.iter().all(|f| !f.rel.contains("vendor/")));
        assert!(files.iter().all(|f| !f.rel.contains("/fixtures/")));
        // Crate names come from manifests, not directory names.
        assert!(files.iter().any(|f| f.crate_name == "sybil-core"));
    }
}
