//! Loop-structure recovery per function, on top of the existing token
//! stream and the parser's body spans.
//!
//! The cost rules (S113–S117, see [`crate::costs`]) need to know whether
//! a call or an intrinsic site executes *inside a loop* of its enclosing
//! function: an allocation that runs once per epoch is amortized, the
//! same allocation inside the per-event scan loop is a per-event cost.
//! The parser already tracks a loop stack while scanning bodies (for the
//! float-reduction rule) but discards the spans; this pass re-derives
//! them as token-index ranges so later passes can test containment the
//! same way effect-intrinsic collection tests `FnDef::body`.
//!
//! Recovery mirrors the parser's approximation exactly: a `for` /
//! `while` / `loop` keyword arms the *next* brace that opens one level
//! deeper as the loop body. A closure or struct literal between the
//! keyword and the body brace can therefore claim the span (the same
//! over-approximation `parser::scan_body` accepts) — safe for the cost
//! rules, which only ever *add* candidate loop contexts, never hide one.

use crate::lexer::{TokKind, Token};

/// Token-index span `(open, close)` of one loop body's braces,
/// inclusive of both brace tokens.
pub type LoopSpan = (usize, usize);

/// All loop-body token spans inside one function body span `(open,
/// close)` (the `FnDef::body` brace tokens), outermost and innermost
/// alike, ordered by opening token.
pub fn body_loop_spans(src: &str, toks: &[Token], body: (usize, usize)) -> Vec<LoopSpan> {
    let (open, close) = body;
    let hi = close.min(toks.len().saturating_sub(1));
    let mut spans: Vec<LoopSpan> = Vec::new();
    let mut depth = 0i32;
    // Loop keywords seen whose body brace has not opened yet: the brace
    // depth at which their body will open.
    let mut pending: Vec<i32> = Vec::new();
    // Open loop bodies: (body depth, opening brace token index).
    let mut active: Vec<(i32, usize)> = Vec::new();
    let mut i = open;
    while i <= hi {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct(b'{') => {
                depth += 1;
                if pending.last() == Some(&depth) {
                    pending.pop();
                    active.push((depth, i));
                }
            }
            TokKind::Punct(b'}') => {
                if let Some(&(d, o)) = active.last() {
                    if d == depth {
                        active.pop();
                        spans.push((o, i));
                    }
                }
                depth -= 1;
            }
            TokKind::Ident => {
                let text = t.text(src);
                if text == "for" || text == "while" || text == "loop" {
                    pending.push(depth + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    spans.sort_unstable();
    spans
}

/// Does token index `tok` sit strictly inside any of `spans`?
pub fn in_loop(spans: &[LoopSpan], tok: usize) -> bool {
    spans.iter().any(|&(a, b)| tok > a && tok < b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser;
    use crate::rules::test_line_spans_for;

    fn spans_of(src: &str, fn_name: &str) -> (Vec<Token>, Vec<LoopSpan>) {
        let toks = lex(src);
        let parsed = parser::parse(src, &test_line_spans_for(src));
        let def = parsed
            .fns
            .iter()
            .find(|f| f.name == fn_name)
            .unwrap_or_else(|| panic!("fn {fn_name} not found"));
        let spans = body_loop_spans(src, &toks, def.body);
        (toks, spans)
    }

    fn tok_at(toks: &[Token], src: &str, name: &str) -> usize {
        toks.iter()
            .position(|t| t.kind == TokKind::Ident && t.is_ident(src, name))
            .unwrap_or_else(|| panic!("token {name} not found"))
    }

    #[test]
    fn recovers_for_while_and_bare_loop_bodies() {
        let src = "fn f(v: &[u32]) {\n\
                   let before = 0;\n\
                   for x in v { step(x); }\n\
                   while cond() { tick(); }\n\
                   loop { spin(); break; }\n\
                   let after = 0;\n\
                   }\n";
        let (toks, spans) = spans_of(src, "f");
        assert_eq!(spans.len(), 3, "{spans:?}");
        assert!(in_loop(&spans, tok_at(&toks, src, "step")));
        assert!(in_loop(&spans, tok_at(&toks, src, "tick")));
        assert!(in_loop(&spans, tok_at(&toks, src, "spin")));
        assert!(!in_loop(&spans, tok_at(&toks, src, "before")));
        assert!(!in_loop(&spans, tok_at(&toks, src, "after")));
    }

    #[test]
    fn nested_loops_both_contain_the_inner_site() {
        let src = "fn f(n: usize) {\n\
                   for i in 0..n { while more(i) { inner(i); } }\n\
                   }\n";
        let (toks, spans) = spans_of(src, "f");
        assert_eq!(spans.len(), 2, "{spans:?}");
        let inner = tok_at(&toks, src, "inner");
        assert!(spans.iter().all(|&(a, b)| inner > a && inner < b));
    }

    #[test]
    fn while_let_headers_arm_the_right_brace() {
        let src = "fn f(q: &mut Q) {\n\
                   while let Some(x) = q.front() { drain(x); }\n\
                   settle();\n\
                   }\n";
        let (toks, spans) = spans_of(src, "f");
        assert_eq!(spans.len(), 1, "{spans:?}");
        assert!(in_loop(&spans, tok_at(&toks, src, "drain")));
        assert!(!in_loop(&spans, tok_at(&toks, src, "settle")));
    }

    #[test]
    fn loop_free_body_yields_no_spans() {
        let src = "fn f() { if cond() { a(); } else { b(); } }\n";
        let (_, spans) = spans_of(src, "f");
        assert!(spans.is_empty(), "{spans:?}");
    }
}
