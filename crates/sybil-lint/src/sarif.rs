//! SARIF 2.1.0 output (`--format sarif`) so findings attach to CI
//! code-scanning UIs.
//!
//! Like the JSON renderer, the document is emitted by hand with a stable
//! key order and zero dependencies. One `run` carries the full rule
//! catalog (`tool.driver.rules`, indexed by `ruleIndex`) and one
//! `result` per finding: unallowlisted violations at `level: "error"`,
//! allowlisted findings at `level: "note"` with a `suppressions` entry
//! carrying the lint.toml justification — so a code-scanning UI shows
//! them as reviewed, not as open alerts. Propagation traces are appended
//! to the message text, one step per line, matching the human renderer's
//! `= note:` steps. Each catalog rule carries the full `--explain` text
//! as its `fullDescription` and a stable `helpUri`, so the scanning UI
//! can show the same remediation guidance the CLI does.

use crate::report::{json_str, Finding, Report};
use crate::rules;

/// Render the report as a SARIF 2.1.0 document.
pub fn render_sarif(r: &Report) -> String {
    let catalog: Vec<&str> = rules::ALL_RULES
        .iter()
        .chain(rules::SEM_RULES.iter())
        .copied()
        .collect();
    let rule_index = |id: &str| catalog.iter().position(|&c| c == id).unwrap_or(0);

    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"sybil-lint\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, id) in catalog.iter().enumerate() {
        // fullDescription is the `--explain CODE` text verbatim; every
        // registered rule has one, so the fallback never fires in
        // practice but keeps the renderer total.
        let full = rules::rule_explanation(id).unwrap_or_else(|| rules::rule_summary(id));
        s.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}, \
             \"fullDescription\": {{\"text\": {}}}, \"helpUri\": {}}}{}\n",
            json_str(id),
            json_str(rules::rule_summary(id)),
            json_str(full),
            json_str(&format!("https://sybil-lint.example/explain/{id}")),
            if i + 1 < catalog.len() { "," } else { "" }
        ));
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");

    let total = r.violations.len() + r.allowed.len();
    let mut emitted = 0;
    let mut push_result = |s: &mut String, f: &Finding, justification: Option<&str>| {
        let mut text = f.message.clone();
        for step in &f.trace {
            text.push('\n');
            text.push_str(step);
        }
        s.push_str("        {\n");
        s.push_str(&format!("          \"ruleId\": {},\n", json_str(f.rule)));
        s.push_str(&format!(
            "          \"ruleIndex\": {},\n",
            rule_index(f.rule)
        ));
        s.push_str(&format!(
            "          \"level\": {},\n",
            json_str(if justification.is_some() { "note" } else { "error" })
        ));
        s.push_str(&format!(
            "          \"message\": {{\"text\": {}}},\n",
            json_str(&text)
        ));
        s.push_str("          \"locations\": [\n");
        s.push_str("            {\"physicalLocation\": {\n");
        s.push_str(&format!(
            "              \"artifactLocation\": {{\"uri\": {}}},\n",
            json_str(&f.path)
        ));
        s.push_str(&format!(
            "              \"region\": {{\"startLine\": {}, \"startColumn\": {}, \
             \"snippet\": {{\"text\": {}}}}}\n",
            f.line,
            f.col,
            json_str(&f.snippet)
        ));
        s.push_str("            }}\n          ]");
        if let Some(j) = justification {
            s.push_str(&format!(
                ",\n          \"suppressions\": [\n            {{\"kind\": \"external\", \
                 \"justification\": {}}}\n          ]",
                json_str(j)
            ));
        }
        emitted += 1;
        s.push_str(&format!(
            "\n        }}{}\n",
            if emitted < total { "," } else { "" }
        ));
    };

    for f in &r.violations {
        push_result(&mut s, f, None);
    }
    for (f, why) in &r.allowed {
        push_result(&mut s, f, Some(why));
    }

    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_renders_errors_and_suppressed_notes() {
        let rep = Report {
            violations: vec![Finding {
                rule: "S109",
                path: "crates/x/src/lib.rs".into(),
                line: 4,
                col: 9,
                message: "clock read reachable".into(),
                snippet: "let t = Instant::now();".into(),
                trace: vec!["x::serve calls x::tick at crates/x/src/lib.rs:2".into()],
            }],
            allowed: vec![(
                Finding {
                    rule: "D003",
                    path: "crates/y/src/b.rs".into(),
                    line: 7,
                    col: 1,
                    message: "Mutex".into(),
                    snippet: "use std::sync::Mutex;".into(),
                    trace: Vec::new(),
                },
                "memo cache; value-identical under any interleaving".into(),
            )],
            unused_allowlist: vec![],
            files_scanned: 2,
        };
        let s = render_sarif(&rep);
        assert!(s.contains("\"version\": \"2.1.0\""), "{s}");
        assert!(s.contains("\"ruleId\": \"S109\""), "{s}");
        assert!(s.contains("\"level\": \"error\""), "{s}");
        assert!(s.contains("\"level\": \"note\""), "{s}");
        assert!(s.contains("\"justification\": \"memo cache"), "{s}");
        assert!(
            s.contains("clock read reachable\\nx::serve calls x::tick"),
            "{s}"
        );
        assert!(s.contains("\"startLine\": 4"), "{s}");
        // Every rule appears exactly once in the catalog, carrying the
        // --explain text and a helpUri.
        for id in rules::ALL_RULES.iter().chain(rules::SEM_RULES.iter()) {
            assert!(s.contains(&format!("\"id\": \"{id}\"")), "missing {id}");
            assert!(
                s.contains(&format!("https://sybil-lint.example/explain/{id}")),
                "missing helpUri for {id}"
            );
        }
        assert!(s.contains("\"fullDescription\""), "{s}");
        // Spot-check one fullDescription is the --explain text verbatim.
        let expl = rules::rule_explanation("S113").unwrap();
        assert!(
            s.contains(&crate::report::json_str(expl)),
            "S113 fullDescription should be the --explain text"
        );
    }
}
