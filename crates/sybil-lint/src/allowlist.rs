//! The `lint.toml` allowlist: reviewed exceptions with mandatory
//! justifications.
//!
//! Format — a sequence of `[[allow]]` tables, parsed by a tiny TOML-subset
//! reader (the workspace vendors no TOML crate):
//!
//! ```toml
//! [[allow]]
//! rule = "D003"
//! path = "crates/sybil-defense/src/ranking.rs"
//! # optional: restrict to one line
//! line = 28
//! justification = "memo cache behind a Mutex; results are value-identical"
//! ```
//!
//! `rule`, `path`, and a non-trivial `justification` (≥ 15 characters) are
//! required; unknown keys and malformed lines are hard errors so the file
//! cannot silently rot.
//!
//! Besides `[[allow]]` entries, the file may designate effect-analysis
//! roots and sinks (see [`crate::effects`]):
//!
//! ```toml
//! [effects.roots]
//! clockless = ["sybil-serve::engine::serve", "osn-sim::simulate"]
//! io_free = [
//!     "sybil-serve::shard::*",
//! ]
//!
//! [effects.sinks]
//! byte_stable = ["sybil-obs::Snapshot::*"]
//! ```
//!
//! and the per-event hot-path cores for the cost rules S113–S117 (see
//! [`crate::costs`]):
//!
//! ```toml
//! [hotpaths.roots]
//! per_event = ["sybil-serve::shard::ShardState::run_epoch"]
//! ```
//!
//! Values are arrays of fully qualified function names, exact or
//! trailing-`*` prefix patterns; arrays may span multiple lines.

use crate::costs::HotPathConfig;
use crate::effects::EffectConfig;
use crate::report::Finding;

/// One reviewed exception.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule code the entry silences (`D001`…`D006`, `S101`…`S117`).
    pub rule: String,
    /// Workspace-relative path the entry applies to.
    pub path: String,
    /// Optional 1-based line restriction; `None` covers the whole file.
    pub line: Option<u32>,
    /// Why this exception is sound — mandatory, non-trivial.
    pub justification: String,
    /// 1-based line of this entry's `[[allow]]` header in lint.toml —
    /// where S105 anchors staleness findings.
    pub defined_at: u32,
}

/// A parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// All entries, in file order.
    pub entries: Vec<AllowEntry>,
    /// Effect-rule roots and sinks from the `[effects.*]` tables.
    pub effects: EffectConfig,
    /// Cost-rule hot-path roots from the `[hotpaths.roots]` table.
    pub hotpaths: HotPathConfig,
}

impl Allowlist {
    /// The entry covering `f`, if any: rule and path must match exactly,
    /// and the entry's `line` (when present) must equal the finding's.
    pub fn matching(&self, f: &Finding) -> Option<&AllowEntry> {
        self.entries
            .iter()
            .find(|e| e.rule == f.rule && e.path == f.path && e.line.is_none_or(|l| l == f.line))
    }
}

/// Why `lint.toml` could not be parsed. Both variants carry a 1-based
/// line number so callers can render `file:line` diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// A line that isn't valid on its own (bad key, bad string, unknown
    /// table…).
    Line {
        /// The offending line.
        line: usize,
        /// What went wrong there.
        message: String,
    },
    /// An `[[allow]]` entry that ended incomplete or invalid.
    Entry {
        /// The line the entry ends at.
        end_line: usize,
        /// What the entry is missing or violating.
        message: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Line { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Entry { end_line, message } => {
                write!(f, "entry ending at line {end_line}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    fn at(line: usize, message: impl Into<String>) -> ParseError {
        ParseError::Line {
            line,
            message: message.into(),
        }
    }

    fn entry(end_line: usize, message: impl Into<String>) -> ParseError {
        ParseError::Entry {
            end_line,
            message: message.into(),
        }
    }
}

/// Which non-`[[allow]]` table the parser is inside.
#[derive(Clone, Copy, PartialEq, Eq)]
enum EffTable {
    Roots,
    Sinks,
    HotRoots,
}

/// Parse `lint.toml` content. Errors carry the offending line number.
pub fn parse(content: &str) -> Result<Allowlist, ParseError> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut effects = EffectConfig::default();
    let mut hotpaths = HotPathConfig::default();
    let mut cur: Option<PartialEntry> = None;
    let mut table: Option<EffTable> = None;
    let lines: Vec<&str> = content.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let lineno = i + 1;
        let line = strip_comment(lines[i]).trim().to_string();
        i += 1;
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(p) = cur.take() {
                entries.push(p.finish(lineno)?);
            }
            table = None;
            cur = Some(PartialEntry {
                defined_at: lineno as u32,
                ..PartialEntry::default()
            });
            continue;
        }
        if line.starts_with('[') {
            if let Some(p) = cur.take() {
                entries.push(p.finish(lineno)?);
            }
            table = match line.as_str() {
                "[effects.roots]" => Some(EffTable::Roots),
                "[effects.sinks]" => Some(EffTable::Sinks),
                "[hotpaths.roots]" => Some(EffTable::HotRoots),
                _ => {
                    return Err(ParseError::at(
                        lineno,
                        format!(
                            "unknown table {line:?} (supported: [[allow]], \
                             [effects.roots], [effects.sinks], [hotpaths.roots])"
                        ),
                    ))
                }
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ParseError::at(
                lineno,
                format!("expected `key = value`, got {line:?}"),
            ));
        };
        let (key, mut value) = (key.trim(), value.trim().to_string());
        if let Some(t) = table {
            // Effect tables: every value is a string array, possibly
            // spanning multiple lines — accumulate until it closes.
            while !value.ends_with(']') && i < lines.len() {
                value.push(' ');
                value.push_str(strip_comment(lines[i]).trim());
                i += 1;
            }
            let pats = parse_string_array(&value, lineno)?;
            let slot = match (t, key) {
                (EffTable::Roots, "clockless") => &mut effects.clockless_roots,
                (EffTable::Roots, "io_free") => &mut effects.io_free_roots,
                (EffTable::Roots, "fault_plane") => &mut effects.fault_plane_roots,
                (EffTable::Sinks, "byte_stable") => &mut effects.byte_stable_sinks,
                (EffTable::HotRoots, "per_event") => &mut hotpaths.per_event_roots,
                (EffTable::Roots, _) => {
                    return Err(ParseError::at(
                        lineno,
                        format!("unknown key {key:?} in [effects.roots] (allowed: clockless, io_free, fault_plane)"),
                    ))
                }
                (EffTable::Sinks, _) => {
                    return Err(ParseError::at(
                        lineno,
                        format!("unknown key {key:?} in [effects.sinks] (allowed: byte_stable)"),
                    ))
                }
                (EffTable::HotRoots, _) => {
                    return Err(ParseError::at(
                        lineno,
                        format!("unknown key {key:?} in [hotpaths.roots] (allowed: per_event)"),
                    ))
                }
            };
            *slot = pats;
            continue;
        }
        let Some(p) = cur.as_mut() else {
            return Err(ParseError::at(
                lineno,
                format!("key {key:?} outside an [[allow]] table"),
            ));
        };
        match key {
            "rule" => p.rule = Some(parse_string(&value, lineno)?),
            "path" => p.path = Some(parse_string(&value, lineno)?),
            "justification" => p.justification = Some(parse_string(&value, lineno)?),
            "line" => {
                p.line = Some(value.parse::<u32>().map_err(|_| {
                    ParseError::at(
                        lineno,
                        format!("`line` must be an integer, got {value:?}"),
                    )
                })?)
            }
            _ => {
                return Err(ParseError::at(
                    lineno,
                    format!("unknown key {key:?} (allowed: rule, path, line, justification)"),
                ))
            }
        }
    }
    if let Some(p) = cur.take() {
        let end = lines.len();
        entries.push(p.finish(end)?);
    }
    Ok(Allowlist {
        entries,
        effects,
        hotpaths,
    })
}

/// Parse a `["a", "b", …]` string array (already joined onto one line).
fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, ParseError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| {
            ParseError::at(
                lineno,
                format!("expected a string array `[…]`, got {value:?}"),
            )
        })?;
    let mut out = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        if !rest.starts_with('"') {
            return Err(ParseError::at(
                lineno,
                format!("expected a double-quoted string in array, got {rest:?}"),
            ));
        }
        // Find the closing quote (the patterns are plain paths — no
        // escapes to honor, but reject embedded backslashes outright).
        let close = rest[1..].find('"').ok_or_else(|| {
            ParseError::at(lineno, "unterminated string in array".to_string())
        })? + 1;
        let s = &rest[1..close];
        if s.contains('\\') {
            return Err(ParseError::at(
                lineno,
                format!("escapes are not supported in effect patterns: {s:?}"),
            ));
        }
        out.push(s.to_string());
        rest = rest[close + 1..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(ParseError::at(
                lineno,
                format!("expected `,` between array elements, got {rest:?}"),
            ));
        }
    }
    Ok(out)
}

#[derive(Default)]
struct PartialEntry {
    rule: Option<String>,
    path: Option<String>,
    line: Option<u32>,
    justification: Option<String>,
    defined_at: u32,
}

impl PartialEntry {
    fn finish(self, lineno: usize) -> Result<AllowEntry, ParseError> {
        let rule = self
            .rule
            .ok_or_else(|| ParseError::entry(lineno, "missing `rule`"))?;
        if !crate::rules::is_known_rule(&rule) {
            return Err(ParseError::entry(lineno, format!("unknown rule {rule:?}")));
        }
        let path = self
            .path
            .ok_or_else(|| ParseError::entry(lineno, "missing `path`"))?;
        let justification = self
            .justification
            .ok_or_else(|| ParseError::entry(lineno, "missing `justification`"))?;
        if justification.trim().len() < 15 {
            return Err(ParseError::entry(
                lineno,
                format!(
                    "justification {justification:?} is too short — explain *why* the \
                     exception is sound (≥ 15 chars)"
                ),
            ));
        }
        Ok(AllowEntry {
            rule,
            path,
            line: self.line,
            justification,
            defined_at: self.defined_at,
        })
    }
}

/// Rewrite `content` with the blocks of `stale` entries removed
/// (`--fix-allowlist`). A block runs from its `[[allow]]` header (plus any
/// comment lines directly above it) through its last key, including the
/// blank separator that follows. With no stale entries the result is
/// **byte-identical** to the input — the rewriter never reformats.
pub fn remove_stale(content: &str, stale: &[AllowEntry]) -> String {
    if stale.is_empty() {
        return content.to_string();
    }
    let headers: Vec<u32> = stale.iter().map(|e| e.defined_at).collect();
    let lines: Vec<&str> = content.lines().collect();
    let mut drop = vec![false; lines.len()];
    for &h in &headers {
        let h0 = h as usize - 1; // 0-based index of the [[allow]] header
        if h0 >= lines.len() {
            continue;
        }
        // Comment lines directly above the header belong to the block.
        let mut start = h0;
        while start > 0 && lines[start - 1].trim_start().starts_with('#') {
            start -= 1;
        }
        // The block ends before the next [[allow]] / [effects.*] table /
        // EOF, trailing blank separator included.
        let mut end = h0 + 1;
        while end < lines.len() && !lines[end].trim_start().starts_with('[') {
            end += 1;
        }
        while end > h0 + 1 && lines[end - 1].trim().is_empty() {
            end -= 1;
        }
        if end < lines.len() && lines[end].trim().is_empty() {
            end += 1; // eat exactly one separating blank line
        }
        for d in drop.iter_mut().take(end).skip(start) {
            *d = true;
        }
    }
    let mut out = String::with_capacity(content.len());
    for (i, l) in lines.iter().enumerate() {
        if !drop[i] {
            out.push_str(l);
            out.push('\n');
        }
    }
    if !content.ends_with('\n') {
        out.pop();
    }
    out
}

/// Strip a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Parse a double-quoted TOML string with basic escapes.
fn parse_string(value: &str, lineno: usize) -> Result<String, ParseError> {
    let v = value.trim();
    if v.len() < 2 || !v.starts_with('"') || !v.ends_with('"') {
        return Err(ParseError::at(
            lineno,
            format!("expected a double-quoted string, got {value:?}"),
        ));
    }
    let inner = &v[1..v.len() - 1];
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => {
                    return Err(ParseError::at(
                        lineno,
                        format!("unsupported escape `\\{other}`"),
                    ))
                }
                None => return Err(ParseError::at(lineno, "dangling escape")),
            }
        } else if c == '"' {
            return Err(ParseError::at(lineno, "unescaped quote inside string"));
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# reviewed exceptions
[[allow]]
rule = "D003"
path = "crates/sybil-defense/src/ranking.rs"
justification = "memo cache; results value-identical under any interleaving"

[[allow]]
rule = "D004"
path = "crates/core/src/eval.rs"
line = 12
justification = "index comes from the same vec's enumerate()"
"#;

    #[test]
    fn parses_entries() {
        let a = parse(GOOD).unwrap();
        assert_eq!(a.entries.len(), 2);
        assert_eq!(a.entries[0].rule, "D003");
        assert_eq!(a.entries[1].line, Some(12));
    }

    #[test]
    fn matching_respects_line() {
        let a = parse(GOOD).unwrap();
        let mk = |line| Finding {
            rule: "D004",
            path: "crates/core/src/eval.rs".into(),
            line,
            col: 1,
            message: String::new(),
            snippet: String::new(),
            trace: Vec::new(),
        };
        assert!(a.matching(&mk(12)).is_some());
        assert!(a.matching(&mk(13)).is_none());
    }

    #[test]
    fn rejects_missing_justification() {
        let err = parse("[[allow]]\nrule = \"D001\"\npath = \"x.rs\"\n").unwrap_err();
        assert!(matches!(err, ParseError::Entry { end_line: 3, .. }), "{err}");
        assert!(err.to_string().contains("missing `justification`"), "{err}");
    }

    #[test]
    fn rejects_trivial_justification() {
        let err = parse(
            "[[allow]]\nrule = \"D001\"\npath = \"x.rs\"\njustification = \"because\"\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("too"), "{err}");
    }

    #[test]
    fn line_errors_carry_their_location() {
        let err = parse("[[allow]]\nrule = unquoted\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::Line {
                line: 2,
                message: "expected a double-quoted string, got \"unquoted\"".into()
            }
        );
        assert!(err.to_string().starts_with("line 2:"), "{err}");
    }

    #[test]
    fn tracks_defined_at_and_accepts_s_rules() {
        let a = parse(GOOD).unwrap();
        assert_eq!(a.entries[0].defined_at, 3);
        assert_eq!(a.entries[1].defined_at, 8);
        let s = parse(
            "[[allow]]\nrule = \"S101\"\npath = \"x.rs\"\njustification = \"invariant: index from enumerate\"\n",
        )
        .unwrap();
        assert_eq!(s.entries[0].rule, "S101");
    }

    #[test]
    fn remove_stale_is_byte_identical_when_nothing_is_stale() {
        assert_eq!(remove_stale(GOOD, &[]), GOOD);
    }

    #[test]
    fn remove_stale_drops_the_block_and_its_comment() {
        let a = parse(GOOD).unwrap();
        // Drop the first entry (with the comment line above it); keep the second.
        let out = remove_stale(GOOD, &a.entries[..1]);
        assert!(!out.contains("ranking.rs"), "{out}");
        assert!(!out.contains("# reviewed exceptions"), "{out}");
        assert!(out.contains("crates/core/src/eval.rs"), "{out}");
        let reparsed = parse(&out).unwrap();
        assert_eq!(reparsed.entries.len(), 1);
        assert_eq!(reparsed.entries[0].rule, "D004");
    }

    #[test]
    fn rejects_unknown_rule_and_keys() {
        assert!(parse("[[allow]]\nrule = \"D999\"\npath = \"x\"\njustification = \"long enough to pass\"\n").is_err());
        assert!(parse("[[allow]]\nfoo = \"bar\"\n").is_err());
    }
}
