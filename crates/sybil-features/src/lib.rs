//! # sybil-features — behavioral feature extraction
//!
//! §2.2 of the paper identifies four behavioral attributes that separate
//! Sybils from normal users on Renren, all computable from friend-request
//! logs and the friendship graph:
//!
//! 1. **Invitation frequency** (Fig. 1) — average invitations sent per
//!    fixed window, at a short (1 h) and long (400 h) time scale.
//! 2. **Outgoing requests accepted** (Fig. 2) — fraction of sent requests
//!    that were confirmed (normal ≈ 79%, Sybil ≈ 26%).
//! 3. **Incoming requests accepted** (Fig. 3) — fraction of received
//!    requests the account confirmed (Sybils ≈ 100%).
//! 4. **Clustering coefficient** (Fig. 4) — over the first 50 friends by
//!    time (normal ≫ Sybil).
//!
//! [`FeatureExtractor`] computes all of these for every account of a
//! simulation; [`dataset`] assembles labeled ground-truth samples like the
//! paper's 1000 + 1000 hand-verified set.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod clustering;
pub mod dataset;
pub mod invitation;
pub mod ratios;
pub mod temporal;

use osn_graph::{par, CsrSnapshot, NeighborScratch, NodeId};
use osn_sim::log::LogIndex;
use osn_sim::SimOutput;
use serde::{Deserialize, Serialize};

/// The paper's behavioral feature vector for one account.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    /// Average invitations per non-empty 1-hour window.
    pub inv_freq_1h: f64,
    /// Average invitations per non-empty 400-hour window.
    pub inv_freq_400h: f64,
    /// Accepted fraction of outgoing requests (0 if none sent).
    pub outgoing_accept_ratio: f64,
    /// Accepted fraction of incoming requests (1 if none received — an
    /// account that rejected nothing).
    pub incoming_accept_ratio: f64,
    /// Clustering coefficient of the first 50 friends.
    pub clustering_coefficient: f64,
}

impl FeatureVector {
    /// The features as a fixed array (order: freq1h, freq400h, out, in, cc)
    /// for consumption by vector classifiers.
    pub fn as_array(&self) -> [f64; 5] {
        [
            self.inv_freq_1h,
            self.inv_freq_400h,
            self.outgoing_accept_ratio,
            self.incoming_accept_ratio,
            self.clustering_coefficient,
        ]
    }

    /// Feature names matching [`Self::as_array`] positions.
    pub const NAMES: [&'static str; 5] = [
        "inv_freq_1h",
        "inv_freq_400h",
        "outgoing_accept_ratio",
        "incoming_accept_ratio",
        "clustering_coefficient",
    ];
}

/// Computes [`FeatureVector`]s for the accounts of one simulation run.
///
/// Construction builds per-account request indices and a frozen
/// [`CsrSnapshot`] of the friendship graph once; each `features_for` call
/// is then cheap, and [`Self::features_for_all`] fans the per-account work
/// out across threads (see `osn_graph::par`).
pub struct FeatureExtractor<'a> {
    out: &'a SimOutput,
    snap: CsrSnapshot,
    send_idx: LogIndex,
    recv_idx: LogIndex,
}

impl<'a> FeatureExtractor<'a> {
    /// Index the simulation output for feature extraction.
    pub fn new(out: &'a SimOutput) -> Self {
        let n = out.accounts.len();
        FeatureExtractor {
            out,
            snap: CsrSnapshot::freeze(&out.graph),
            send_idx: out.log.sender_index(n),
            recv_idx: out.log.receiver_index(n),
        }
    }

    /// The underlying simulation output.
    pub fn output(&self) -> &SimOutput {
        self.out
    }

    /// Record indices of requests sent by `n`, in time order.
    pub fn sent_by(&self, n: NodeId) -> &[u32] {
        self.send_idx.of(n.index())
    }

    /// Record indices of requests received by `n`, in time order.
    pub fn received_by(&self, n: NodeId) -> &[u32] {
        self.recv_idx.of(n.index())
    }

    /// Compute the full feature vector for account `n`.
    pub fn features_for(&self, n: NodeId) -> FeatureVector {
        let mut scratch = NeighborScratch::new(self.snap.num_nodes());
        self.features_with_scratch(n, &mut scratch)
    }

    /// Shared kernel: the only clustering path, so `features_for` and the
    /// parallel `features_for_all` cannot diverge.
    fn features_with_scratch(&self, n: NodeId, scratch: &mut NeighborScratch) -> FeatureVector {
        let sent: Vec<osn_graph::Timestamp> = self
            .send_idx
            .of(n.index())
            .iter()
            .map(|&i| self.out.log.get(i as usize).sent_at)
            .collect();
        FeatureVector {
            inv_freq_1h: invitation::mean_per_active_window(&sent, 1),
            inv_freq_400h: invitation::mean_per_active_window(&sent, 400),
            outgoing_accept_ratio: ratios::outgoing_accept_ratio(
                self.out,
                self.send_idx.of(n.index()),
            ),
            incoming_accept_ratio: ratios::incoming_accept_ratio(
                self.out,
                self.recv_idx.of(n.index()),
            ),
            clustering_coefficient: self
                .snap
                .first_k_clustering(n, clustering::FIRST_K, scratch),
        }
    }

    /// Feature vectors for a list of accounts, extracted in parallel with
    /// one [`NeighborScratch`] per worker. Output order and bits match the
    /// serial `nodes.iter().map(|&n| self.features_for(n))` loop.
    pub fn features_for_all(&self, nodes: &[NodeId]) -> Vec<FeatureVector> {
        par::map_indexed_with(
            nodes.len(),
            || NeighborScratch::new(self.snap.num_nodes()),
            |scratch, i| self.features_with_scratch(nodes[i], scratch),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_sim::{simulate, SimConfig};

    #[test]
    fn features_separate_populations_in_simulation() {
        let out = simulate(SimConfig::tiny(3));
        let fx = FeatureExtractor::new(&out);
        let mean = |ids: &[NodeId], f: fn(&FeatureVector) -> f64| {
            ids.iter().map(|&n| f(&fx.features_for(n))).sum::<f64>() / ids.len() as f64
        };
        let sybils = out.sybil_ids();
        let normals = out.normal_ids();
        // Fig. 1: Sybil invitation frequency far above normal.
        let s_freq = mean(&sybils, |f| f.inv_freq_1h);
        let n_freq = mean(&normals, |f| f.inv_freq_1h);
        assert!(
            s_freq > 4.0 * n_freq.max(0.1),
            "freq separation: sybil {s_freq} normal {n_freq}"
        );
        // Fig. 2: outgoing accept ratio lower for Sybils.
        let s_out = mean(&sybils, |f| f.outgoing_accept_ratio);
        let n_out = mean(&normals, |f| f.outgoing_accept_ratio);
        assert!(s_out + 0.2 < n_out, "out ratio: sybil {s_out} normal {n_out}");
        // Fig. 3: incoming accept ratio ~1 for Sybils.
        let s_in = mean(&sybils, |f| f.incoming_accept_ratio);
        assert!(s_in > 0.85, "sybil incoming ratio {s_in}");
    }

    #[test]
    fn as_array_matches_fields() {
        let f = FeatureVector {
            inv_freq_1h: 1.0,
            inv_freq_400h: 2.0,
            outgoing_accept_ratio: 0.3,
            incoming_accept_ratio: 0.4,
            clustering_coefficient: 0.05,
        };
        assert_eq!(f.as_array(), [1.0, 2.0, 0.3, 0.4, 0.05]);
        assert_eq!(FeatureVector::NAMES.len(), 5);
    }
}
