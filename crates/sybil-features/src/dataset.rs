//! Labeled ground-truth datasets (the paper's 1000 + 1000 verified sample).
//!
//! Renren handed the authors 1000 confirmed Sybils and 1000 confirmed
//! normal users; all classifier results (Table 1) come from that sample.
//! [`GroundTruth::sample`] draws the analogous labeled sample from a
//! simulation run. Sybils are drawn among accounts that actually *acted*
//! (sent at least one request), mirroring how Renren's set was assembled
//! from caught, active Sybils.

use crate::{FeatureExtractor, FeatureVector};
use osn_graph::NodeId;
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// A labeled behavioral dataset.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Feature vectors.
    pub features: Vec<FeatureVector>,
    /// Ground-truth labels, `true` = Sybil; parallel to `features`.
    pub labels: Vec<bool>,
    /// The sampled account ids, parallel to `features`.
    pub nodes: Vec<NodeId>,
}

impl GroundTruth {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of Sybil examples.
    pub fn num_sybil(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Draw a balanced sample of up to `per_class` Sybils and `per_class`
    /// normal users from `fx`'s simulation, computing features for each.
    ///
    /// Only accounts that sent at least one friend request are eligible
    /// (verification teams can't judge accounts with no behavior).
    pub fn sample<R: Rng + ?Sized>(
        fx: &FeatureExtractor<'_>,
        per_class: usize,
        rng: &mut R,
    ) -> Self {
        let out = fx.output();
        let eligible = |n: &NodeId| !fx.sent_by(*n).is_empty();
        let mut sybils: Vec<NodeId> = out.sybil_ids().into_iter().filter(|n| eligible(n)).collect();
        let mut normals: Vec<NodeId> =
            out.normal_ids().into_iter().filter(|n| eligible(n)).collect();
        sybils.shuffle(rng);
        normals.shuffle(rng);
        sybils.truncate(per_class);
        normals.truncate(per_class);
        let mut ds = GroundTruth::default();
        for n in sybils {
            ds.nodes.push(n);
            ds.features.push(fx.features_for(n));
            ds.labels.push(true);
        }
        for n in normals {
            ds.nodes.push(n);
            ds.features.push(fx.features_for(n));
            ds.labels.push(false);
        }
        ds
    }

    /// Shuffle examples in place (keeping features/labels/nodes aligned).
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        self.features = order.iter().map(|&i| self.features[i]).collect();
        self.labels = order.iter().map(|&i| self.labels[i]).collect();
        self.nodes = order.iter().map(|&i| self.nodes[i]).collect();
    }

    /// Split indices into `k` contiguous folds of near-equal size for
    /// cross-validation. Shuffle first for random folds.
    pub fn fold_ranges(&self, k: usize) -> Vec<std::ops::Range<usize>> {
        assert!(k >= 2, "need at least 2 folds");
        let n = self.len();
        let base = n / k;
        let extra = n % k;
        let mut ranges = Vec::with_capacity(k);
        let mut start = 0;
        for i in 0..k {
            let len = base + usize::from(i < extra);
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_sim::{simulate, SimConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_is_balanced_and_labeled() {
        let out = simulate(SimConfig::tiny(9));
        let fx = FeatureExtractor::new(&out);
        let mut rng = StdRng::seed_from_u64(1);
        let ds = GroundTruth::sample(&fx, 40, &mut rng);
        assert_eq!(ds.num_sybil(), 40);
        assert_eq!(ds.len(), 80);
        // Labels agree with ground truth.
        for (i, &n) in ds.nodes.iter().enumerate() {
            assert_eq!(ds.labels[i], out.is_sybil(n));
        }
    }

    #[test]
    fn sample_clamps_to_available() {
        let out = simulate(SimConfig::tiny(9));
        let fx = FeatureExtractor::new(&out);
        let mut rng = StdRng::seed_from_u64(2);
        let ds = GroundTruth::sample(&fx, 100_000, &mut rng);
        assert!(ds.num_sybil() <= out.sybil_ids().len());
        assert!(ds.len() - ds.num_sybil() <= out.normal_ids().len());
        assert!(!ds.is_empty());
    }

    #[test]
    fn shuffle_keeps_alignment() {
        let out = simulate(SimConfig::tiny(9));
        let fx = FeatureExtractor::new(&out);
        let mut rng = StdRng::seed_from_u64(3);
        let mut ds = GroundTruth::sample(&fx, 30, &mut rng);
        let before: std::collections::HashMap<NodeId, bool> =
            ds.nodes.iter().copied().zip(ds.labels.iter().copied()).collect();
        ds.shuffle(&mut rng);
        for (i, &n) in ds.nodes.iter().enumerate() {
            assert_eq!(ds.labels[i], before[&n]);
        }
    }

    #[test]
    fn fold_ranges_partition() {
        let ds = GroundTruth {
            features: vec![
                FeatureVector {
                    inv_freq_1h: 0.0,
                    inv_freq_400h: 0.0,
                    outgoing_accept_ratio: 0.0,
                    incoming_accept_ratio: 0.0,
                    clustering_coefficient: 0.0,
                };
                10
            ],
            labels: vec![false; 10],
            nodes: vec![NodeId(0); 10],
        };
        let folds = ds.fold_ranges(3);
        assert_eq!(folds.len(), 3);
        let total: usize = folds.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(folds[0], 0..4); // 10 = 4 + 3 + 3
        assert_eq!(folds[1], 4..7);
        assert_eq!(folds[2], 7..10);
    }

    #[test]
    #[should_panic(expected = "need at least 2 folds")]
    fn fold_ranges_rejects_k1() {
        let ds = GroundTruth::default();
        ds.fold_ranges(1);
    }
}
