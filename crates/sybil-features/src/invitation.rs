//! Invitation-frequency features (Fig. 1).
//!
//! The paper plots “average invitations sent over N hours” for N = 1 and
//! N = 400. We bucket an account's invitation timestamps into consecutive
//! N-hour windows anchored at its first invitation and average the counts
//! over **non-empty** windows. Averaging over non-empty windows (rather
//! than all windows including idle ones) is what makes the metric a *rate
//! while active*: a Sybil tool firing 30 requests/hour in bursts scores
//! ≈ 30 at the 1-hour scale even if it sleeps between bursts, while a
//! normal user who sends two or three invitations per session scores 2–3.

use osn_graph::Timestamp;
use std::collections::BTreeMap;

/// Average invitations per non-empty `window_h`-hour window.
/// Returns 0.0 when no invitations were sent.
pub fn mean_per_active_window(sent: &[Timestamp], window_h: u64) -> f64 {
    if sent.is_empty() {
        return 0.0;
    }
    let w = window_h.max(1) * 3600;
    let t0 = sent.iter().map(|t| t.as_secs()).min().unwrap_or(0);
    let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
    for t in sent {
        *counts.entry((t.as_secs() - t0) / w).or_insert(0) += 1;
    }
    let total: u64 = counts.values().map(|&c| c as u64).sum();
    total as f64 / counts.len() as f64
}

/// The maximum invitations sent in any single `window_h`-hour window — the
/// burst peak a rate-limit detector would key on.
pub fn max_per_window(sent: &[Timestamp], window_h: u64) -> u32 {
    if sent.is_empty() {
        return 0;
    }
    let w = window_h.max(1) * 3600;
    let t0 = sent.iter().map(|t| t.as_secs()).min().unwrap_or(0);
    let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
    for t in sent {
        *counts.entry((t.as_secs() - t0) / w).or_insert(0) += 1;
    }
    counts.values().copied().max().unwrap_or(0)
}

/// Count of invitations within the trailing window `(now - window_h, now]`
/// — what a streaming real-time detector maintains.
pub fn count_in_trailing_window(sent: &[Timestamp], now: Timestamp, window_h: u64) -> usize {
    let w = window_h.max(1) * 3600;
    let lo = now.as_secs().saturating_sub(w);
    sent.iter()
        .filter(|t| t.as_secs() > lo && t.as_secs() <= now.as_secs())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(h: f64) -> Timestamp {
        Timestamp::from_hours_f64(h)
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(mean_per_active_window(&[], 1), 0.0);
        assert_eq!(max_per_window(&[], 1), 0);
    }

    #[test]
    fn single_burst_counts_full_rate() {
        // 30 invitations within one hour -> 1h metric = 30.
        let sent: Vec<Timestamp> = (0..30).map(|i| ts(0.01 * i as f64)).collect();
        assert_eq!(mean_per_active_window(&sent, 1), 30.0);
        assert_eq!(max_per_window(&sent, 1), 30);
    }

    #[test]
    fn idle_gaps_do_not_dilute() {
        // Two bursts of 10, separated by a 100-hour gap: the 1h average
        // stays 10 because idle windows are not counted.
        let mut sent: Vec<Timestamp> = (0..10).map(|i| ts(0.01 * i as f64)).collect();
        sent.extend((0..10).map(|i| ts(100.0 + 0.01 * i as f64)));
        assert_eq!(mean_per_active_window(&sent, 1), 10.0);
    }

    #[test]
    fn long_window_aggregates() {
        // 50 invitations spread over 200 hours: one 400h window -> 50.
        let sent: Vec<Timestamp> = (0..50).map(|i| ts(4.0 * i as f64)).collect();
        assert_eq!(mean_per_active_window(&sent, 400), 50.0);
        // At the 1h scale each invitation is alone in its window -> 1.0.
        assert_eq!(mean_per_active_window(&sent, 1), 1.0);
    }

    #[test]
    fn windows_anchor_at_first_invitation() {
        // Two invites 30 minutes apart land in the same 1h window even when
        // the first is late in an absolute hour.
        let sent = vec![ts(5.9), ts(6.4)];
        assert_eq!(mean_per_active_window(&sent, 1), 2.0);
    }

    #[test]
    fn trailing_window_counts() {
        let sent = vec![ts(1.0), ts(2.0), ts(2.5), ts(3.0)];
        assert_eq!(count_in_trailing_window(&sent, ts(3.0), 1), 2); // (2.0, 3.0]
        assert_eq!(count_in_trailing_window(&sent, ts(10.0), 1), 0);
        assert_eq!(count_in_trailing_window(&sent, ts(3.0), 400), 4);
    }

    #[test]
    fn unsorted_input_tolerated() {
        let sent = vec![ts(6.4), ts(5.9)];
        assert_eq!(mean_per_active_window(&sent, 1), 2.0);
    }
}
