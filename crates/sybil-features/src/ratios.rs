//! Accept-ratio features (Figs. 2 and 3).
//!
//! *Outgoing* accepted ratio = accepted / sent (never-answered requests
//! count against the sender, matching the paper's "fraction of outgoing
//! friend requests confirmed by the recipient").
//!
//! *Incoming* accepted ratio = accepted / received. A Sybil that was banned
//! with pending incoming requests scores < 1 even though it never rejected
//! anyone — exactly the effect the paper describes under Fig. 3.

use osn_sim::SimOutput;

/// Accepted fraction of the sent requests listed by `sent_records`
/// (record indices into the output's log). Zero if none were sent.
pub fn outgoing_accept_ratio(out: &SimOutput, sent_records: &[u32]) -> f64 {
    if sent_records.is_empty() {
        return 0.0;
    }
    let accepted = sent_records
        .iter()
        .filter(|&&i| out.log.get(i as usize).outcome.is_accepted())
        .count();
    accepted as f64 / sent_records.len() as f64
}

/// Accepted fraction of the received requests listed by `recv_records`.
/// Returns 1.0 when nothing was received: the account declined nothing.
pub fn incoming_accept_ratio(out: &SimOutput, recv_records: &[u32]) -> f64 {
    if recv_records.is_empty() {
        return 1.0;
    }
    let accepted = recv_records
        .iter()
        .filter(|&&i| out.log.get(i as usize).outcome.is_accepted())
        .count();
    accepted as f64 / recv_records.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::{NodeId, TemporalGraph, Timestamp};
    use osn_sim::{
        Account, AccountKind, Gender, Profile, RequestLog, RequestOutcome, RequestRecord,
        SimConfig, SimOutput,
    };

    fn output_with_log(records: Vec<RequestRecord>) -> SimOutput {
        let mut log = RequestLog::new();
        for r in records {
            let outcome = r.outcome;
            let i = log.push(RequestRecord {
                outcome: RequestOutcome::Pending,
                ..r
            });
            if outcome.is_resolved() {
                log.resolve(i, outcome);
            }
        }
        let acct = Account {
            kind: AccountKind::Normal,
            profile: Profile::new(Gender::Male, 0.5),
            created_at: Timestamp::ZERO,
            banned_at: None,
            accept_tendency: 0.5,
            sociability: 1.0,
        };
        SimOutput {
            config: SimConfig::tiny(0),
            graph: TemporalGraph::with_nodes(3),
            accounts: vec![acct.clone(), acct.clone(), acct],
            log,
            engine_stats: osn_sim::output::EngineStats::default(),
        }
    }

    fn rec(from: u32, to: u32, h: u64, outcome: RequestOutcome) -> RequestRecord {
        RequestRecord {
            from: NodeId(from),
            to: NodeId(to),
            sent_at: Timestamp::from_hours(h),
            outcome,
        }
    }

    #[test]
    fn outgoing_counts_pending_as_unaccepted() {
        let t = Timestamp::from_hours(9);
        let out = output_with_log(vec![
            rec(0, 1, 1, RequestOutcome::Accepted(t)),
            rec(0, 2, 2, RequestOutcome::Rejected(t)),
            rec(0, 1, 3, RequestOutcome::Pending),
        ]);
        // Indices 0..3 all sent by account 0.
        assert!((outgoing_accept_ratio(&out, &[0, 1, 2]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn outgoing_zero_when_nothing_sent() {
        let out = output_with_log(vec![]);
        assert_eq!(outgoing_accept_ratio(&out, &[]), 0.0);
    }

    #[test]
    fn incoming_full_acceptance() {
        let t = Timestamp::from_hours(9);
        let out = output_with_log(vec![
            rec(1, 0, 1, RequestOutcome::Accepted(t)),
            rec(2, 0, 2, RequestOutcome::Accepted(t)),
        ]);
        assert_eq!(incoming_accept_ratio(&out, &[0, 1]), 1.0);
    }

    #[test]
    fn incoming_pending_reduces_ratio() {
        let t = Timestamp::from_hours(9);
        let out = output_with_log(vec![
            rec(1, 0, 1, RequestOutcome::Accepted(t)),
            rec(2, 0, 2, RequestOutcome::Pending), // banned before answering
        ]);
        assert_eq!(incoming_accept_ratio(&out, &[0, 1]), 0.5);
    }

    #[test]
    fn incoming_default_is_one() {
        let out = output_with_log(vec![]);
        assert_eq!(incoming_accept_ratio(&out, &[]), 1.0);
    }
}
