//! Clustering-coefficient feature (Fig. 4): first 50 friends by time.

use osn_graph::{clustering, par, CsrSnapshot, NeighborScratch, NodeId, TemporalGraph};

/// Number of earliest friends the paper's Fig. 4 metric considers.
pub const FIRST_K: usize = 50;

/// Clustering coefficient over the first 50 friends of `n` (by friendship
/// time). Zero for accounts with fewer than two friends.
pub fn first50_cc(graph: &TemporalGraph, n: NodeId) -> f64 {
    clustering::first_k_clustering(graph, n, FIRST_K)
}

/// Same metric for every node in `nodes`, computed over one frozen
/// [`CsrSnapshot`] across threads. Bit-identical to mapping
/// [`first50_cc`] over `nodes` serially.
pub fn first50_cc_all(graph: &TemporalGraph, nodes: &[NodeId]) -> Vec<f64> {
    let snap = CsrSnapshot::freeze(graph);
    par::map_indexed_with(
        nodes.len(),
        || NeighborScratch::new(snap.num_nodes()),
        |scratch, i| snap.first_k_clustering(nodes[i], FIRST_K, scratch),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::Timestamp;

    #[test]
    fn matches_graph_crate_metric() {
        let mut g = TemporalGraph::with_nodes(4);
        let t = Timestamp::ZERO;
        g.add_edge(NodeId(0), NodeId(1), t).unwrap();
        g.add_edge(NodeId(0), NodeId(2), t).unwrap();
        g.add_edge(NodeId(1), NodeId(2), t).unwrap();
        assert_eq!(first50_cc(&g, NodeId(0)), 1.0);
        assert_eq!(first50_cc(&g, NodeId(3)), 0.0);
        assert_eq!(first50_cc_all(&g, &[NodeId(0), NodeId(3)]), vec![1.0, 0.0]);
    }

    #[test]
    fn only_first_fifty_friends_count() {
        // Node 0 with 60 friends; friends 51..60 form a clique with friend 1,
        // but they are outside the first-50 prefix, so cc stays 0.
        let mut g = TemporalGraph::with_nodes(62);
        for i in 1..=60 {
            g.add_edge(NodeId(0), NodeId(i), Timestamp::from_hours(i as u64))
                .unwrap();
        }
        for i in 51..=60 {
            for j in (i + 1)..=60 {
                g.add_edge(NodeId(i), NodeId(j), Timestamp::from_hours(100))
                    .unwrap();
            }
        }
        assert_eq!(first50_cc(&g, NodeId(0)), 0.0);
    }
}
