//! Temporal edge-order analysis (Fig. 8, §3.4).
//!
//! For each Sybil the paper builds the chronological sequence of its edges
//! and marks which are Sybil edges. Intentionally-created Sybil edges show
//! up as a *contiguous run at the start* of the sequence (the attacker
//! interlinked the accounts before friending normal users); accidental ones
//! are scattered uniformly over the account's life.

use osn_graph::{NodeId, TemporalGraph};
use serde::{Deserialize, Serialize};

/// One Fig. 8 column: the chronological edge sequence of one account with
/// Sybil-edge positions marked.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeOrderColumn {
    /// The account.
    pub node: NodeId,
    /// Total number of edges (sequence length).
    pub total: usize,
    /// 0-based positions within the sequence that are Sybil edges,
    /// ascending.
    pub sybil_positions: Vec<usize>,
}

impl EdgeOrderColumn {
    /// Build the column for `node`: its adjacency is already chronological.
    pub fn build<F>(graph: &TemporalGraph, node: NodeId, is_sybil: F) -> Self
    where
        F: Fn(NodeId) -> bool,
    {
        let nb = graph.neighbors(node);
        let sybil_positions = nb
            .iter()
            .enumerate()
            .filter(|(_, n)| is_sybil(n.node))
            .map(|(i, _)| i)
            .collect();
        EdgeOrderColumn {
            node,
            total: nb.len(),
            sybil_positions,
        }
    }

    /// Number of Sybil edges.
    pub fn sybil_count(&self) -> usize {
        self.sybil_positions.len()
    }

    /// Mean *normalized* position of the Sybil edges in `[0, 1]`.
    /// Accidental edges scatter around 0.5; intentional prefixes sit near 0.
    /// `None` when the column has no Sybil edges or only one edge total.
    pub fn mean_normalized_position(&self) -> Option<f64> {
        if self.sybil_positions.is_empty() || self.total < 2 {
            return None;
        }
        let denom = (self.total - 1) as f64;
        Some(
            self.sybil_positions.iter().map(|&p| p as f64 / denom).sum::<f64>()
                / self.sybil_positions.len() as f64,
        )
    }

    /// Heuristic for the paper's circled columns: the account looks like an
    /// *intentional* interlinker if it has at least `min_edges` Sybil edges
    /// and they form one contiguous run starting within the first
    /// `prefix_slack` positions.
    pub fn looks_intentional(&self, min_edges: usize, prefix_slack: usize) -> bool {
        let k = self.sybil_positions.len();
        if k < min_edges {
            return false;
        }
        let (Some(&first), Some(&last)) =
            (self.sybil_positions.first(), self.sybil_positions.last())
        else {
            return false; // no Sybil edges at all (only when min_edges == 0)
        };
        first <= prefix_slack && last - first + 1 == k
    }
}

/// Build Fig. 8 columns for a set of accounts.
pub fn columns_for<F>(graph: &TemporalGraph, nodes: &[NodeId], is_sybil: F) -> Vec<EdgeOrderColumn>
where
    F: Fn(NodeId) -> bool + Copy,
{
    nodes
        .iter()
        .map(|&n| EdgeOrderColumn::build(graph, n, is_sybil))
        .collect()
}

/// Summary of a population of columns: how many look intentional, and the
/// distribution of normalized Sybil-edge positions (for the uniformity
/// argument of §3.4).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TemporalSummary {
    /// Columns with at least one Sybil edge.
    pub with_sybil_edges: usize,
    /// Columns matching the intentional heuristic.
    pub intentional: usize,
    /// Mean of all normalized Sybil-edge positions.
    pub mean_position: f64,
    /// Mean normalized position over columns *not* flagged intentional —
    /// the paper's uniformity claim is about these accidental edges.
    pub accidental_mean_position: f64,
}

/// Summarize columns with the default heuristic (≥ 3 edges, prefix run).
pub fn summarize(columns: &[EdgeOrderColumn]) -> TemporalSummary {
    let mut s = TemporalSummary::default();
    let mut pos_sum = 0.0;
    let mut pos_n = 0usize;
    let mut acc_sum = 0.0;
    let mut acc_n = 0usize;
    for c in columns {
        if c.sybil_count() > 0 {
            s.with_sybil_edges += 1;
            let intentional = c.looks_intentional(3, 1);
            if intentional {
                s.intentional += 1;
            }
            if let Some(m) = c.mean_normalized_position() {
                pos_sum += m * c.sybil_count() as f64;
                pos_n += c.sybil_count();
                if !intentional {
                    acc_sum += m * c.sybil_count() as f64;
                    acc_n += c.sybil_count();
                }
            }
        }
    }
    s.mean_position = if pos_n == 0 { 0.0 } else { pos_sum / pos_n as f64 };
    s.accidental_mean_position = if acc_n == 0 { 0.0 } else { acc_sum / acc_n as f64 };
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::Timestamp;

    /// Node 0 with 6 friends in time order; friends with odd ids are
    /// "sybils".
    fn column_with(sybil_first: bool) -> EdgeOrderColumn {
        let mut g = TemporalGraph::with_nodes(8);
        let order: Vec<u32> = if sybil_first {
            vec![1, 3, 5, 2, 4, 6] // sybil prefix
        } else {
            vec![2, 1, 4, 3, 6, 5] // interleaved
        };
        for (i, &f) in order.iter().enumerate() {
            g.add_edge(NodeId(0), NodeId(f), Timestamp::from_hours(i as u64))
                .unwrap();
        }
        EdgeOrderColumn::build(&g, NodeId(0), |n| n.0 % 2 == 1)
    }

    #[test]
    fn build_marks_positions() {
        let c = column_with(true);
        assert_eq!(c.total, 6);
        assert_eq!(c.sybil_positions, vec![0, 1, 2]);
        let c2 = column_with(false);
        assert_eq!(c2.sybil_positions, vec![1, 3, 5]);
    }

    #[test]
    fn intentional_heuristic() {
        assert!(column_with(true).looks_intentional(3, 1));
        assert!(!column_with(false).looks_intentional(3, 1));
        // Too few edges never counts.
        assert!(!column_with(true).looks_intentional(4, 1));
    }

    #[test]
    fn normalized_positions() {
        let c = column_with(true);
        // positions 0,1,2 of 0..=5 -> (0 + 0.2 + 0.4)/3 = 0.2
        assert!((c.mean_normalized_position().unwrap() - 0.2).abs() < 1e-12);
        let c2 = column_with(false);
        // positions 1,3,5 -> (0.2 + 0.6 + 1.0)/3 = 0.6
        assert!((c2.mean_normalized_position().unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_column() {
        let g = TemporalGraph::with_nodes(1);
        let c = EdgeOrderColumn::build(&g, NodeId(0), |_| true);
        assert_eq!(c.total, 0);
        assert_eq!(c.sybil_count(), 0);
        assert_eq!(c.mean_normalized_position(), None);
        assert!(!c.looks_intentional(1, 1));
    }

    #[test]
    fn summary_counts() {
        let cols = vec![column_with(true), column_with(false), {
            let g = TemporalGraph::with_nodes(1);
            EdgeOrderColumn::build(&g, NodeId(0), |_| true)
        }];
        let s = summarize(&cols);
        assert_eq!(s.with_sybil_edges, 2);
        assert_eq!(s.intentional, 1);
        assert!((s.mean_position - 0.4).abs() < 1e-12);
        // Accidental-only mean excludes the intentional column.
        assert!((s.accidental_mean_position - 0.6).abs() < 1e-12);
    }
}
