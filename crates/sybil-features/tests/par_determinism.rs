//! Serial-vs-parallel determinism of feature extraction: for randomly
//! seeded simulations, `features_for_all` must return the exact bits of
//! the per-node serial loop at every thread count.

use osn_graph::{par, NodeId};
use osn_sim::{simulate, SimConfig};
use proptest::prelude::*;
use sybil_features::{clustering, FeatureExtractor, FeatureVector};

/// Run `body` with `RENREN_THREADS` pinned, restoring the prior value.
fn with_threads_env(value: &str, body: impl FnOnce()) {
    use std::sync::{Mutex, OnceLock};
    static ENV_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let _guard = ENV_LOCK.get_or_init(|| Mutex::new(())).lock().unwrap();
    let prior = std::env::var(par::THREADS_ENV).ok();
    std::env::set_var(par::THREADS_ENV, value);
    body();
    match prior {
        Some(v) => std::env::set_var(par::THREADS_ENV, v),
        None => std::env::remove_var(par::THREADS_ENV),
    }
}

proptest! {
    // Each case runs a full (tiny) simulation, so keep the count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn features_for_all_is_thread_count_invariant(seed in 0u64..1000) {
        let out = simulate(SimConfig::tiny(seed));
        let fx = FeatureExtractor::new(&out);
        let nodes: Vec<NodeId> = (0..out.accounts.len() as u32).map(NodeId).collect();
        let serial: Vec<FeatureVector> =
            nodes.iter().map(|&n| fx.features_for(n)).collect();
        for threads in ["1", "2", "3", "6"] {
            let mut parallel = Vec::new();
            with_threads_env(threads, || {
                parallel = fx.features_for_all(&nodes);
            });
            prop_assert_eq!(&parallel, &serial, "threads={}", threads);
        }
    }

    #[test]
    fn first50_cc_all_matches_serial_metric(seed in 0u64..1000) {
        let out = simulate(SimConfig::tiny(seed));
        let nodes: Vec<NodeId> = (0..out.accounts.len() as u32).map(NodeId).collect();
        let serial: Vec<f64> = nodes
            .iter()
            .map(|&n| clustering::first50_cc(&out.graph, n))
            .collect();
        for threads in ["1", "4"] {
            let mut parallel = Vec::new();
            with_threads_env(threads, || {
                parallel = clustering::first50_cc_all(&out.graph, &nodes);
            });
            prop_assert_eq!(&parallel, &serial, "threads={}", threads);
        }
    }
}
