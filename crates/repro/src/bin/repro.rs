//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [FLAGS] [EXPERIMENTS...]
//! ```
//!
//! Arguments are parsed into a typed [`RunSpec`] (`--help` prints the
//! full flag table and experiment list, rendered from the same spec the
//! parser consumes). With `--metrics DIR`, every observed stage — the
//! simulator and both serving engines — contributes to one deterministic
//! `DIR/metrics.json`: the `logical` section is byte-identical across
//! `RENREN_THREADS` and shard counts, while wall-clock quantities live in
//! the segregated `wall` section.

use sybil_obs::Snapshot;
use sybil_repro::{chaos, defenses, deployment, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9};
use sybil_repro::{help, mixing, parse_args, reach, restart, serve, table1, table2, table3, zoo};
use sybil_repro::{Ctx, RunSpec};
use sybil_stats::export;

fn main() {
    let spec: RunSpec = match parse_args(std::env::args().skip(1)) {
        Ok(spec) => spec,
        Err(sybil_repro::CliError::HelpRequested) => {
            println!("{}", help());
            return;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", help());
            std::process::exit(2);
        }
    };
    if let Some(t) = spec.threads {
        // Must happen before any parallel work spins up worker pools.
        std::env::set_var(osn_graph::par::THREADS_ENV, t.to_string());
    }

    // The binary is the one place a real clock is constructed (libraries
    // take an injected `Clock`; lint D002 enforces that split).
    let epoch = std::time::Instant::now();
    let clock = move || epoch.elapsed().as_secs_f64();
    let mut master: Option<Snapshot> = spec.metrics_dir.as_ref().map(|_| Snapshot::default());

    eprintln!("simulating scale={} seed={} ...", spec.scale, spec.seed);
    let t0 = std::time::Instant::now();
    // Scale xl has no simulator configuration (the dataset comes from
    // the synthetic scale generator), so it contributes no `sim` metrics
    // namespace and always goes through `Ctx::build`.
    let ctx = match (master.as_mut(), spec.scale.config(spec.seed)) {
        (Some(m), Some(sim_cfg)) => {
            let (out, sim_snap) = osn_sim::simulate_observed(sim_cfg);
            m.absorb(&sim_snap.prefixed("sim"));
            Ctx::from_output(out, spec.scale, spec.seed)
        }
        _ => Ctx::build(spec.scale, spec.seed),
    };
    let stats = ctx.out.stats();
    eprintln!(
        "simulated {} accounts / {} requests / {} edges in {:.1}s \
         (sybil edges {}, attack edges {}, banned {})",
        ctx.out.accounts.len(),
        stats.requests,
        stats.edges,
        t0.elapsed().as_secs_f64(),
        stats.sybil_edges,
        stats.attack_edges,
        stats.banned
    );

    let dir = spec.run_dir();
    let save = |name: &str, json: &dyn erased::Json, text: &str| {
        println!("{text}");
        println!("{}", "=".repeat(78));
        if let Err(e) = json.write(&dir.join(format!("{name}.json"))) {
            eprintln!("warning: could not write {name}.json: {e}");
        }
        if let Err(e) = export::write_text(dir.join(format!("{name}.txt")), text) {
            eprintln!("warning: could not write {name}.txt: {e}");
        }
    };

    let per_class = spec.per_class();
    for e in &spec.experiments {
        let t = std::time::Instant::now();
        match e.as_str() {
            "fig1" => {
                let r = fig1::run(&ctx, per_class);
                save("fig1", &r, &r.render());
            }
            "fig2" => {
                let r = fig2::run(&ctx, per_class);
                save("fig2", &r, &r.render());
            }
            "fig3" => {
                let r = fig3::run(&ctx, per_class);
                save("fig3", &r, &r.render());
            }
            "fig4" => {
                let r = fig4::run(&ctx, per_class);
                save("fig4", &r, &r.render());
            }
            "table1" => {
                let r = table1::run(&ctx, per_class, 5);
                save("table1", &r, &r.render());
            }
            "fig5" => {
                let r = fig5::run(&ctx);
                save("fig5", &r, &r.render());
            }
            "fig6" => {
                let r = fig6::run(&ctx);
                save("fig6", &r, &r.render());
            }
            "table2" => {
                let r = table2::run(&ctx);
                save("table2", &r, &r.render());
            }
            "fig7" => {
                let r = fig7::run(&ctx);
                save("fig7", &r, &r.render());
            }
            "fig8" => {
                let r = fig8::run(&ctx, 1000);
                save("fig8", &r, &r.render());
            }
            "fig9" => {
                let r = fig9::run(&ctx);
                save("fig9", &r, &r.render());
            }
            "table3" => {
                let r = table3::run(&ctx);
                save("table3", &r, &r.render());
            }
            "zoo" => {
                let r = zoo::run(&ctx, per_class, 5);
                save("zoo", &r, &r.render());
            }
            "mixing" => {
                let r = mixing::run(&ctx);
                save("mixing", &r, &r.render());
            }
            "deployment" => {
                let r = deployment::run(&ctx, &spec);
                save("deployment", &r, &r.render());
            }
            "serve" => {
                let r = if let Some(m) = master.as_mut() {
                    let (r, snap) = serve::run_observed(&ctx, &spec, &clock);
                    m.absorb(&snap);
                    r
                } else {
                    serve::run(&ctx, &spec)
                };
                save("serve", &r, &r.render());
            }
            "chaos" => {
                let result = if master.is_some() {
                    let mut reg = sybil_obs::Registry::new();
                    let r = chaos::run_observed(&ctx, &spec, &mut reg);
                    if let (Some(m), Ok(_)) = (master.as_mut(), &r) {
                        m.absorb(&reg.snapshot());
                    }
                    r
                } else {
                    chaos::run(&ctx, &spec)
                };
                match result {
                    Ok(r) => save("chaos", &r, &r.render()),
                    Err(e) => eprintln!("chaos drill failed: {e}"),
                }
            }
            "restart" => match restart::run(&ctx, &spec) {
                Ok(r) => save("restart", &r, &r.render()),
                Err(e) => eprintln!("restart drill failed: {e}"),
            },
            "reach" => {
                let r = reach::run(&ctx, spec.reach_trials());
                save("reach", &r, &r.render());
            }
            "defenses" => {
                let r = defenses::run(&ctx, &spec);
                save("defenses", &r, &r.render());
            }
            other => eprintln!("unknown experiment {other:?} (skipped)"),
        }
        eprintln!("[{e} done in {:.1}s]", t.elapsed().as_secs_f64());
    }
    if let (Some(metrics_dir), Some(m)) = (spec.metrics_dir.as_ref(), master.as_ref()) {
        let path = metrics_dir.join("metrics.json");
        match export::write_json(&path, m) {
            Ok(()) => eprintln!("metrics written to {}", path.display()),
            Err(e) => eprintln!("warning: could not write metrics.json: {e}"),
        }
    }
    eprintln!("results written under {}", dir.display());
}

/// Tiny object-safe serialization shim so `save` can take any result.
mod erased {
    use std::path::Path;

    pub trait Json {
        fn write(&self, path: &Path) -> std::io::Result<()>;
    }

    impl<T: serde::Serialize> Json for T {
        fn write(&self, path: &Path) -> std::io::Result<()> {
            sybil_stats::export::write_json(path, self)
        }
    }
}
