//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale tiny|small|paper] [--seed N] [--out DIR] [EXPERIMENTS...]
//! ```
//!
//! `EXPERIMENTS` defaults to `all`; valid names: `fig1` … `fig9`,
//! `table1` … `table3`, `defenses`. Results are printed as text and
//! written under `--out` (default `results/`) as JSON.

use std::path::PathBuf;
use sybil_repro::{defenses, deployment, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9};
use sybil_repro::{mixing, reach, serve, table1, table2, table3, zoo, Ctx, Scale};
use sybil_stats::export;

fn main() {
    let mut scale = Scale::Small;
    let mut seed = 1u64;
    let mut out_dir = PathBuf::from("results");
    let mut experiments: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale {v:?}; use tiny|small|paper");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs an integer");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| "results".into()));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale tiny|small|paper] [--seed N] [--out DIR] \
                     [fig1..fig9 table1..table3 zoo mixing deployment serve reach defenses | all]"
                );
                return;
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = vec![
            "fig1", "fig2", "fig3", "fig4", "table1", "fig5", "fig6", "table2", "fig7", "fig8",
            "fig9", "table3", "zoo", "mixing", "deployment", "serve", "reach", "defenses",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }

    let per_class = match scale {
        Scale::Tiny => 50,
        Scale::Small => 250,
        Scale::Paper => 1000,
    };

    eprintln!("simulating scale={scale} seed={seed} ...");
    let t0 = std::time::Instant::now();
    let ctx = Ctx::build(scale, seed);
    let stats = ctx.out.stats();
    eprintln!(
        "simulated {} accounts / {} requests / {} edges in {:.1}s \
         (sybil edges {}, attack edges {}, banned {})",
        ctx.out.accounts.len(),
        stats.requests,
        stats.edges,
        t0.elapsed().as_secs_f64(),
        stats.sybil_edges,
        stats.attack_edges,
        stats.banned
    );

    let dir = out_dir.join(format!("{scale}-seed{seed}"));
    let save = |name: &str, json: &dyn erased::Json, text: &str| {
        println!("{text}");
        println!("{}", "=".repeat(78));
        if let Err(e) = json.write(&dir.join(format!("{name}.json"))) {
            eprintln!("warning: could not write {name}.json: {e}");
        }
        if let Err(e) = export::write_text(dir.join(format!("{name}.txt")), text) {
            eprintln!("warning: could not write {name}.txt: {e}");
        }
    };

    for e in &experiments {
        let t = std::time::Instant::now();
        match e.as_str() {
            "fig1" => {
                let r = fig1::run(&ctx, per_class);
                save("fig1", &r, &r.render());
            }
            "fig2" => {
                let r = fig2::run(&ctx, per_class);
                save("fig2", &r, &r.render());
            }
            "fig3" => {
                let r = fig3::run(&ctx, per_class);
                save("fig3", &r, &r.render());
            }
            "fig4" => {
                let r = fig4::run(&ctx, per_class);
                save("fig4", &r, &r.render());
            }
            "table1" => {
                let r = table1::run(&ctx, per_class, 5);
                save("table1", &r, &r.render());
            }
            "fig5" => {
                let r = fig5::run(&ctx);
                save("fig5", &r, &r.render());
            }
            "fig6" => {
                let r = fig6::run(&ctx);
                save("fig6", &r, &r.render());
            }
            "table2" => {
                let r = table2::run(&ctx);
                save("table2", &r, &r.render());
            }
            "fig7" => {
                let r = fig7::run(&ctx);
                save("fig7", &r, &r.render());
            }
            "fig8" => {
                let r = fig8::run(&ctx, 1000);
                save("fig8", &r, &r.render());
            }
            "fig9" => {
                let r = fig9::run(&ctx);
                save("fig9", &r, &r.render());
            }
            "table3" => {
                let r = table3::run(&ctx);
                save("table3", &r, &r.render());
            }
            "zoo" => {
                let r = zoo::run(&ctx, per_class, 5);
                save("zoo", &r, &r.render());
            }
            "mixing" => {
                let r = mixing::run(&ctx);
                save("mixing", &r, &r.render());
            }
            "deployment" => {
                let r = deployment::run(&ctx, per_class);
                save("deployment", &r, &r.render());
            }
            "serve" => {
                let r = serve::run(&ctx, per_class);
                save("serve", &r, &r.render());
            }
            "reach" => {
                let trials = if matches!(scale, Scale::Paper) { 20 } else { 50 };
                let r = reach::run(&ctx, trials);
                save("reach", &r, &r.render());
            }
            "defenses" => {
                let suspects = match scale {
                    Scale::Tiny => 15,
                    Scale::Small => 30,
                    Scale::Paper => 40,
                };
                let r = defenses::run(&ctx, suspects);
                save("defenses", &r, &r.render());
            }
            other => eprintln!("unknown experiment {other:?} (skipped)"),
        }
        eprintln!("[{e} done in {:.1}s]", t.elapsed().as_secs_f64());
    }
    eprintln!("results written under {}", dir.display());
}

/// Tiny object-safe serialization shim so `save` can take any result.
mod erased {
    use std::path::Path;

    pub trait Json {
        fn write(&self, path: &Path) -> std::io::Result<()>;
    }

    impl<T: serde::Serialize> Json for T {
        fn write(&self, path: &Path) -> std::io::Result<()> {
            sybil_stats::export::write_json(path, self)
        }
    }
}
