//! Figure 6 — size distribution of connected Sybil components.
//!
//! Paper (§3.3): the Sybil-only subgraph fragments into 7,094 components;
//! 98% have fewer than 10 members, yet one giant component holds most
//! connected Sybils (63,541 of ~92k, i.e. ≈69% of Sybils with Sybil
//! edges).

use crate::scenario::Ctx;
use serde::{Deserialize, Serialize};
use sybil_stats::{ascii, Cdf};

/// Result of the Fig. 6 experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig6 {
    /// Sizes of all non-singleton Sybil components, largest first.
    pub sizes: Vec<usize>,
    /// Fraction of components with fewer than 10 members (paper 0.98).
    pub below_10: f64,
    /// Fraction of connected Sybils inside the giant component
    /// (paper ≈ 0.69).
    pub giant_share: f64,
}

/// Run the experiment.
pub fn run(ctx: &Ctx) -> Fig6 {
    let sizes: Vec<usize> = ctx.sybil_components.iter().map(|c| c.len()).collect();
    let below_10 = if sizes.is_empty() {
        0.0
    } else {
        sizes.iter().filter(|&&s| s < 10).count() as f64 / sizes.len() as f64
    };
    let connected: usize = sizes.iter().sum();
    let giant_share = match sizes.first() {
        Some(&g) if connected > 0 => g as f64 / connected as f64,
        _ => 0.0,
    };
    Fig6 {
        sizes,
        below_10,
        giant_share,
    }
}

impl Fig6 {
    /// Render the size CDF plus the paper-comparison summary.
    pub fn render(&self) -> String {
        let cdf = Cdf::from_iter(self.sizes.iter().map(|&s| s as f64));
        let mut out = String::from("Figure 6 — size of connected Sybil components\n\n");
        if self.sizes.is_empty() {
            out.push_str("(no Sybil components formed at this scale/seed)\n");
            return out;
        }
        out.push_str(&ascii::plot_cdfs(&[("Components", &cdf)], 70, 14, true));
        out.push_str(&format!(
            "\ncomponents: {}; <10 members: {:.0}% (paper 98%); giant holds {:.0}% \
             of connected Sybils (paper ≈69%)\n",
            self.sizes.len(),
            100.0 * self.below_10,
            100.0 * self.giant_share
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn heavy_tail_with_dominant_giant() {
        let ctx = Ctx::build(Scale::Small, 1);
        let fig = run(&ctx);
        assert!(!fig.sizes.is_empty(), "some sybil components must form");
        assert!(
            fig.below_10 > 0.5,
            "most components should be small: {}",
            fig.below_10
        );
        assert!(
            fig.giant_share > 0.3,
            "giant must dominate: {}",
            fig.giant_share
        );
        assert!(fig.render().contains("Figure 6"));
    }
}
