//! # sybil-repro — the experiment harness
//!
//! One module per table/figure of the paper. Each experiment consumes a
//! shared simulation context ([`scenario::Ctx`]), produces a typed result
//! (serializable for `results/*.json`), renders itself as text (ASCII CDF
//! plots, aligned tables), and writes its underlying series as CSV.
//!
//! | Experiment | Paper artifact | Module |
//! |---|---|---|
//! | invitation frequency CDFs | Fig. 1 | [`fig1`] |
//! | outgoing accept ratio CDFs | Fig. 2 | [`fig2`] |
//! | incoming accept ratio CDFs | Fig. 3 | [`fig3`] |
//! | clustering coefficient CDFs | Fig. 4 | [`fig4`] |
//! | SVM vs threshold confusion | Table 1 | [`table1`] |
//! | Sybil degree distributions | Fig. 5 | [`fig5`] |
//! | Sybil component sizes | Fig. 6 | [`fig6`] |
//! | five largest components | Table 2 | [`table2`] |
//! | Sybil vs attack edge scatter | Fig. 7 | [`fig7`] |
//! | edge-creation order matrix | Fig. 8 | [`fig8`] |
//! | giant-component degrees | Fig. 9 | [`fig9`] |
//! | tool catalog + behavior | Table 3 | [`table3`] |
//! | graph-defense evaluation | §3.1 claim | [`defenses`] |
//! | classifier zoo (+NB, LR) | extension of Table 1 | [`zoo`] |
//! | mixing-time analysis | extension of §3.1 | [`mixing`] |
//! | deployment replay | §2.3 production story | [`deployment`] |
//! | sharded serving replay | §2.3 at serving scale | [`serve`] |
//! | kill + warm-restart drill | §2.3 persistence story | [`restart`] |
//! | spam-reach cascades | §2.1 motivation | [`reach`] |
//!
//! Run everything with the `repro` binary:
//! `cargo run --release -p sybil-repro --bin repro -- all`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chaos;
pub mod defenses;
pub mod deployment;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod restart;
pub mod runspec;
pub mod scenario;
pub mod serve;
pub mod mixing;
pub mod reach;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod zoo;

pub use runspec::{help, parse_args, CliError, RunSpec};
pub use scenario::{Ctx, Scale};
