//! Canonical reproduction scenarios and the shared experiment context.

use osn_graph::components::{self, Component};
use osn_graph::NodeId;
use osn_sim::{simulate, SimConfig, SimOutput};
use serde::{Deserialize, Serialize};

/// Which scale to reproduce at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// ~1k accounts; seconds. Shapes hold loosely.
    Tiny,
    /// ~8k accounts; the default for local runs and CI.
    Small,
    /// ~103k accounts; the scaled-down-Renren headline run.
    Paper,
    /// 1M accounts from the synthetic scale generator
    /// (`osn_sim::scale`), not the behavioural simulator. Only the
    /// `serve` experiment runs at this scale: the workload exists to
    /// exercise the serving engine's million-account path, and the
    /// figure/table experiments assume simulator-shaped ground truth.
    Xl,
}

impl Scale {
    /// The simulation configuration for this scale, or `None` for
    /// [`Scale::Xl`], whose dataset comes from the scale generator
    /// rather than the simulator (see [`Ctx::build`]).
    pub fn config(self, seed: u64) -> Option<SimConfig> {
        match self {
            Scale::Tiny => Some(SimConfig::tiny(seed)),
            Scale::Small => Some(SimConfig::small(seed)),
            Scale::Paper => Some(SimConfig::paper(seed)),
            Scale::Xl => None,
        }
    }

    /// Parse from CLI text.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            "xl" => Some(Scale::Xl),
            _ => None,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scale::Tiny => write!(f, "tiny"),
            Scale::Small => write!(f, "small"),
            Scale::Paper => write!(f, "paper"),
            Scale::Xl => write!(f, "xl"),
        }
    }
}

/// Shared context: one simulation run plus cached derived structures every
/// experiment needs.
pub struct Ctx {
    /// The simulated dataset.
    pub out: SimOutput,
    /// Scale used.
    pub scale: Scale,
    /// Seed used.
    pub seed: u64,
    /// All Sybil node ids.
    pub sybils: Vec<NodeId>,
    /// All normal node ids.
    pub normals: Vec<NodeId>,
    /// Connected components of the Sybil-induced subgraph, largest first,
    /// singletons excluded (§3.3's "Sybils with at least one Sybil edge").
    pub sybil_components: Vec<Component>,
}

impl Ctx {
    /// Run the simulation for `scale`/`seed` and precompute shared data.
    /// [`Scale::Xl`] has no simulator configuration; its dataset comes
    /// from the synthetic scale generator at one million accounts.
    pub fn build(scale: Scale, seed: u64) -> Ctx {
        let out = match scale.config(seed) {
            Some(cfg) => simulate(cfg),
            None => osn_sim::scale::generate(&osn_sim::scale::ScaleConfig::at(1_000_000, seed)),
        };
        Self::from_output(out, scale, seed)
    }

    /// Wrap an existing simulation output.
    pub fn from_output(out: SimOutput, scale: Scale, seed: u64) -> Ctx {
        let sybils = out.sybil_ids();
        let normals = out.normal_ids();
        let is_sybil = |n: NodeId| out.is_sybil(n);
        let mut comps = components::components_of_subset(&out.graph, is_sybil);
        comps.retain(|c| c.len() > 1);
        Ctx {
            out,
            scale,
            seed,
            sybils,
            normals,
            sybil_components: comps,
        }
    }

    /// The giant Sybil component, if any Sybil edges exist.
    pub fn giant_component(&self) -> Option<&Component> {
        self.sybil_components.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse_roundtrip() {
        for s in [Scale::Tiny, Scale::Small, Scale::Paper, Scale::Xl] {
            assert_eq!(Scale::parse(&s.to_string()), Some(s));
        }
        assert_eq!(Scale::parse("nope"), None);
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        // Only the simulated scales have a simulator configuration.
        assert!(Scale::Xl.config(1).is_none());
        assert!(Scale::Tiny.config(1).is_some());
    }

    #[test]
    fn ctx_partitions_population() {
        let ctx = Ctx::build(Scale::Tiny, 5);
        assert_eq!(
            ctx.sybils.len() + ctx.normals.len(),
            ctx.out.accounts.len()
        );
        // Components exclude singletons.
        for c in &ctx.sybil_components {
            assert!(c.len() >= 2);
            for &n in &c.nodes {
                assert!(ctx.out.is_sybil(n));
            }
        }
        // Largest first.
        for w in ctx.sybil_components.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
    }
}
