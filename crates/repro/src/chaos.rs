//! Chaos drill — the serving engine run under a seeded fault schedule,
//! with crash-replay recovery verified against the fault-free run.
//!
//! `repro chaos --seed N` derives a [`FaultSchedule`] from the run seed
//! (same SplitMix64 stream as the scale generator — "same seed, same
//! faults" on every machine); `--faults FILE` loads a hand-written or
//! previously dumped JSON schedule instead. The drill then:
//!
//! 1. runs the fault-free `serve()` oracle;
//! 2. re-runs under a [`ChaosPlane`](sybil_chaos::ChaosPlane) that
//!    injects the schedule and write-ahead journals every epoch;
//! 3. byte-compares the two reports (identical, or a typed fault —
//!    never silent divergence);
//! 4. reopens the journal *bytes* cold and replays every shard,
//!    checking digests against the live run's commits.
//!
//! The emitted [`ChaosResult`] — faults injected by kind, epochs
//! replayed, recovery latency in logical epochs, journal size — is a
//! pure function of `(scale, seed, schedule)`, so the dashboard is
//! byte-reproducible.

use crate::fig1::ground_truth_sample;
use crate::runspec::RunSpec;
use crate::scenario::Ctx;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use sybil_chaos::{
    run_chaos, verify_journal, ChaosOutcome, FaultSchedule, RecoveryReport,
};
use sybil_core::realtime::RealtimeConfig;
use sybil_core::ThresholdClassifier;
use sybil_serve::{ServeConfig, ServeError};
use sybil_stats::table::Table;

/// Epochs the seed-derived schedule targets (faults beyond the stream's
/// actual epoch count simply never fire).
const SCHEDULE_EPOCHS: u64 = 16;
/// Faults the seed-derived schedule draws.
const SCHEDULE_FAULTS: usize = 8;

/// Why the chaos drill could not run.
#[derive(Debug)]
pub enum ChaosExpError {
    /// The `--faults` file could not be read.
    FaultsIo {
        /// The file.
        path: PathBuf,
        /// The IO error kind.
        kind: std::io::ErrorKind,
    },
    /// The `--faults` file is not a valid schedule.
    FaultsParse {
        /// The file.
        path: PathBuf,
    },
    /// The engine failed for a reason no injected fault explains.
    Engine(ServeError),
}

impl std::fmt::Display for ChaosExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosExpError::FaultsIo { path, kind } => {
                write!(f, "could not read {} ({kind:?})", path.display())
            }
            ChaosExpError::FaultsParse { path } => {
                write!(f, "{} is not a valid fault schedule", path.display())
            }
            ChaosExpError::Engine(e) => write!(f, "serving engine failed: {e}"),
        }
    }
}

impl std::error::Error for ChaosExpError {}

/// Result of the chaos drill.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosResult {
    /// The calibrated rule the detector ran (same calibration as
    /// `serve`/`deployment`).
    pub rule: ThresholdClassifier,
    /// Shard count the engine used.
    pub shards: usize,
    /// Whether the schedule came from `--faults` (vs. seed-derived).
    pub faults_from_file: bool,
    /// The schedule that ran (dump this to JSON to replay the drill).
    pub schedule: FaultSchedule,
    /// The deterministic recovery report.
    pub report: RecoveryReport,
    /// Whether the journal bytes, reopened cold, replayed every shard to
    /// its committed digest (skipped — `false` — when the run surfaced
    /// a fault before finishing).
    pub journal_replay_verified: bool,
}

/// Load the schedule: from `--faults FILE` when given, else derived
/// from the run seed.
fn load_schedule(spec: &RunSpec, shards: usize) -> Result<(FaultSchedule, bool), ChaosExpError> {
    match &spec.faults_file {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| ChaosExpError::FaultsIo {
                    path: path.clone(),
                    kind: e.kind(),
                })?;
            let mut schedule: FaultSchedule = serde_json::from_str(&text).map_err(|_| {
                ChaosExpError::FaultsParse { path: path.clone() }
            })?;
            schedule.normalize();
            Ok((schedule, true))
        }
        None => Ok((
            FaultSchedule::generate(spec.seed, SCHEDULE_EPOCHS, shards, SCHEDULE_FAULTS),
            false,
        )),
    }
}

/// Run the chaos drill.
pub fn run(ctx: &Ctx, spec: &RunSpec) -> Result<ChaosResult, ChaosExpError> {
    run_inner(ctx, spec, None)
}

/// [`run`] with metrics: the recovery report's counters land in `reg`
/// under `chaos.*` keys — all logical quantities, deterministic at
/// every thread and shard count.
pub fn run_observed(
    ctx: &Ctx,
    spec: &RunSpec,
    reg: &mut sybil_obs::Registry,
) -> Result<ChaosResult, ChaosExpError> {
    run_inner(ctx, spec, Some(reg))
}

fn run_inner(
    ctx: &Ctx,
    spec: &RunSpec,
    obs: Option<&mut sybil_obs::Registry>,
) -> Result<ChaosResult, ChaosExpError> {
    let ds = ground_truth_sample(ctx, spec.per_class());
    let rule = ThresholdClassifier::calibrate(&ds);
    let detect = RealtimeConfig {
        rule,
        adaptive: true,
        ..RealtimeConfig::default()
    };
    // Resolve `--shards 0` the same way the engine does, so the
    // schedule's shard targets line up with the shards that actually run.
    let shards = sybil_chaos::resolved_shards(&ServeConfig {
        shards: spec.shards,
        epoch_hours: 48,
        detect,
        rotate_floor: 0,
    });
    let cfg = ServeConfig {
        shards,
        epoch_hours: 48,
        detect,
        rotate_floor: 0,
    };
    let (schedule, faults_from_file) = load_schedule(spec, shards)?;
    let chaos = run_chaos(
        &ctx.out,
        &cfg,
        schedule.clone(),
        std::io::Cursor::new(Vec::new()),
        obs,
    )
    .map_err(ChaosExpError::Engine)?;

    // Recovery double-check: the journal *bytes*, reopened cold, must
    // replay every shard to the digest the live run committed. Only a
    // finished run has the run-end record this needs.
    let journal_replay_verified = if chaos.report.outcome == ChaosOutcome::Identical {
        let bytes = chaos.journal.into_store();
        verify_journal(bytes, &ctx.out, &cfg)
            .map(|v| v.all_match())
            .unwrap_or(false)
    } else {
        false
    };

    Ok(ChaosResult {
        rule,
        shards,
        faults_from_file,
        schedule,
        report: chaos.report,
        journal_replay_verified,
    })
}

impl ChaosResult {
    /// Render the recovery dashboard.
    pub fn render(&self) -> String {
        let r = &self.report;
        let mut t = Table::new(["Quantity", "Value"]);
        let outcome = match &r.outcome {
            ChaosOutcome::Identical => "byte-identical to fault-free run".to_string(),
            ChaosOutcome::Fault { epoch, shard, kind } => match shard {
                Some(s) => format!("typed fault: {kind} at epoch {epoch}, shard {s}"),
                None => format!("typed fault: {kind} at epoch {epoch}"),
            },
            ChaosOutcome::Diverged => "SILENT DIVERGENCE (invariant broken)".to_string(),
        };
        let rows: Vec<(&str, String)> = vec![
            ("Epochs processed", r.epochs.to_string()),
            ("Faults scheduled", r.faults_scheduled.to_string()),
            (
                "Faults injected",
                format!(
                    "{} (stall {}, clamp {}, delay {}, reorder {}, crash {})",
                    r.injected.total(),
                    r.injected.stalls,
                    r.injected.queue_clamps,
                    r.injected.barrier_delays,
                    r.injected.barrier_reorders,
                    r.injected.crashes
                ),
            ),
            ("Epochs replayed (crash recovery)", r.epochs_replayed.to_string()),
            ("Replay digest checks", r.replay_digest_checks.to_string()),
            (
                "Recovery latency (logical epochs)",
                r.recovery_latency_epochs.to_string(),
            ),
            ("Journal size", format!("{} bytes", r.journal_bytes)),
            ("Outcome", outcome),
            (
                "Journal cold replay",
                if self.journal_replay_verified {
                    "verified (all shards byte-identical)".into()
                } else if r.outcome == ChaosOutcome::Identical {
                    "FAILED".into()
                } else {
                    "skipped (run surfaced a fault)".into()
                },
            ),
        ];
        for (k, v) in rows {
            t.add_row([k.to_string(), v]);
        }
        format!(
            "Chaos drill — seed {}, {} shards, schedule {} ({} faults)\n\n{}",
            self.schedule.seed,
            self.shards,
            if self.faults_from_file {
                "from --faults file"
            } else {
                "seed-derived"
            },
            self.schedule.faults.len(),
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn seed_derived_drill_recovers_or_types() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let spec = RunSpec::builder().scale(Scale::Tiny).seed(11).shards(2).build();
        let r = run(&ctx, &spec).expect("drill failed");
        assert!(!r.faults_from_file);
        assert!(r.report.outcome.invariant_holds(), "{:?}", r.report);
        if r.report.outcome == ChaosOutcome::Identical {
            assert!(r.journal_replay_verified);
        }
        assert!(r.render().contains("Chaos drill"));
    }

    #[test]
    fn drill_is_deterministic() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let spec = RunSpec::builder().scale(Scale::Tiny).seed(11).shards(2).build();
        let a = serde_json::to_string(&run(&ctx, &spec).expect("drill failed")).unwrap();
        let b = serde_json::to_string(&run(&ctx, &spec).expect("drill failed")).unwrap();
        assert_eq!(a, b, "chaos drill must be byte-reproducible");
    }

    #[test]
    fn faults_file_round_trips_through_the_drill() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let dir = std::env::temp_dir().join("sybil-chaos-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faults.json");
        let schedule = FaultSchedule::generate(99, 8, 2, 4);
        std::fs::write(&path, serde_json::to_string(&schedule).unwrap()).unwrap();
        let spec = RunSpec::builder()
            .scale(Scale::Tiny)
            .seed(11)
            .shards(2)
            .faults_file(path.clone())
            .build();
        let r = run(&ctx, &spec).expect("drill failed");
        assert!(r.faults_from_file);
        assert_eq!(r.schedule, schedule);
        assert!(r.report.outcome.invariant_holds());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_faults_file_is_a_typed_error() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let spec = RunSpec::builder()
            .scale(Scale::Tiny)
            .faults_file("/nonexistent/faults.json")
            .build();
        assert!(matches!(
            run(&ctx, &spec),
            Err(ChaosExpError::FaultsIo { .. })
        ));
    }
}
