//! Table 3 — the commercial Sybil tools, with measured in-simulation
//! behavior appended.
//!
//! The paper's table is a catalog (name, platform, cost). We reproduce the
//! catalog and extend it with what each tool's accounts actually did in
//! the simulation — request volume, acceptance, and accidental Sybil-edge
//! rate — which is the §3.4 argument in numbers.

use crate::scenario::Ctx;
use osn_sim::ToolKind;
use serde::{Deserialize, Serialize};
use sybil_stats::table::Table;

/// Per-tool measured behavior.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ToolRow {
    /// Tool name (catalog).
    pub name: String,
    /// Platform (catalog).
    pub platform: String,
    /// Cost (catalog).
    pub cost: String,
    /// Sybils driven by this tool.
    pub accounts: usize,
    /// Friend requests sent by those Sybils.
    pub requests: usize,
    /// Acceptance rate of those requests.
    pub accept_rate: f64,
    /// Fraction of those Sybils with ≥ 1 Sybil edge.
    pub sybil_edge_rate: f64,
}

/// Result of the Table 3 experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table3 {
    /// One row per tool, catalog order.
    pub rows: Vec<ToolRow>,
}

/// Run the experiment.
pub fn run(ctx: &Ctx) -> Table3 {
    let mut rows = Vec::new();
    for spec in ToolKind::catalog() {
        let accounts: Vec<_> = ctx
            .sybils
            .iter()
            .filter(|&&s| ctx.out.accounts[s.index()].tool() == Some(spec.kind))
            .copied()
            .collect();
        let mut requests = 0usize;
        let mut accepted = 0usize;
        for r in ctx.out.log.records() {
            if ctx.out.accounts[r.from.index()].tool() == Some(spec.kind) {
                requests += 1;
                if r.outcome.is_accepted() {
                    accepted += 1;
                }
            }
        }
        let with_sybil_edge = accounts
            .iter()
            .filter(|&&s| {
                ctx.out
                    .graph
                    .neighbors(s)
                    .iter()
                    .any(|nb| ctx.out.is_sybil(nb.node))
            })
            .count();
        rows.push(ToolRow {
            name: spec.name.to_string(),
            platform: spec.platform.to_string(),
            cost: spec.cost.to_string(),
            accounts: accounts.len(),
            requests,
            accept_rate: accepted as f64 / requests.max(1) as f64,
            sybil_edge_rate: with_sybil_edge as f64 / accounts.len().max(1) as f64,
        });
    }
    Table3 { rows }
}

impl Table3 {
    /// Render catalog plus measured columns.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "Tool",
            "Platform",
            "Cost",
            "Accounts",
            "Requests",
            "Accept%",
            "SybilEdge%",
        ]);
        for r in &self.rows {
            t.add_row([
                r.name.clone(),
                r.platform.clone(),
                r.cost.clone(),
                r.accounts.to_string(),
                r.requests.to_string(),
                format!("{:.1}", 100.0 * r.accept_rate),
                format!("{:.1}", 100.0 * r.sybil_edge_rate),
            ]);
        }
        let mut out = String::from(
            "Table 3 — Sybil creation/management tools (catalog + measured behavior)\n\n",
        );
        out.push_str(&t.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn catalog_rows_and_activity() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 3);
        assert!(t.rows.iter().any(|r| r.accounts > 0));
        let total: usize = t.rows.iter().map(|r| r.accounts).sum();
        assert_eq!(total, ctx.sybils.len(), "every sybil belongs to a tool");
        for r in &t.rows {
            assert!(r.accept_rate <= 1.0);
            assert!(r.sybil_edge_rate <= 1.0);
        }
        assert!(t.render().contains("Renren Marketing Assistant V1.0"));
    }
}
