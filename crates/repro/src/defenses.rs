//! §3.1 experiment — do community-based Sybil defenses work on realistic
//! topology?
//!
//! Every defense is evaluated twice: on the **wild** simulated graph
//! (Sybils created by snowball-sampling tools, integrated into the social
//! fabric) and on the **injected-cluster** synthetic graph the original
//! papers validated against (tight Sybil region, few attack edges). The
//! paper's claim is the contrast: high Sybil acceptance in the wild, low
//! on the synthetic graph.

use crate::runspec::RunSpec;
use crate::scenario::Ctx;
use osn_graph::{NodeId, TemporalGraph};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use sybil_defense::common::injected_cluster_graph;
use sybil_defense::{
    evaluate_defense, ConductanceRanking, DefenseEvaluation, SumUp, SybilDefense, SybilGuard,
    SybilInfer, SybilLimit,
};
use sybil_stats::table::Table;

/// One defense's two evaluations.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DefenseRow {
    /// Defense name.
    pub name: String,
    /// Acceptance/rejection rates on the wild simulated graph.
    pub wild: DefenseEvaluation,
    /// Rates on the injected-cluster synthetic graph.
    pub injected: DefenseEvaluation,
}

/// Result of the defenses experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Defenses {
    /// One row per defense.
    pub rows: Vec<DefenseRow>,
}

fn pick_active<R: Rng + RngExt + ?Sized>(
    g: &TemporalGraph,
    candidates: &[NodeId],
    min_degree: usize,
    count: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut pool: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|&n| g.degree(n) >= min_degree)
        .collect();
    pool.shuffle(rng);
    pool.truncate(count);
    pool
}

/// Run every defense on both graphs, with the suspect count per class
/// taken from the run's [`RunSpec::suspects`].
pub fn run(ctx: &Ctx, spec: &RunSpec) -> Defenses {
    let suspects = spec.suspects();
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0xDEF);
    // --- wild graph setup -------------------------------------------------
    let g = &ctx.out.graph;
    let wild_sybils = pick_active(g, &ctx.sybils, 5, suspects, &mut rng);
    let wild_honest = pick_active(g, &ctx.normals, 5, suspects, &mut rng);
    // Verifier: an honest user of solid but not extreme degree.
    let mut by_deg: Vec<NodeId> = ctx
        .normals
        .iter()
        .copied()
        .filter(|&n| g.degree(n) >= 10)
        .collect();
    by_deg.sort_by_key(|&n| g.degree(n));
    let verifier = by_deg[by_deg.len() / 2];

    // --- injected-cluster setup -------------------------------------------
    let (inj, first_sybil) =
        injected_cluster_graph(3000, 300, 12, &mut StdRng::seed_from_u64(ctx.seed ^ 0x1213));
    let inj_sybil_ids: Vec<NodeId> = (0..300u32).map(|i| NodeId(first_sybil.0 + i)).collect();
    let inj_honest_ids: Vec<NodeId> = (0..3000u32).map(NodeId).collect();
    let inj_sybils = pick_active(&inj, &inj_sybil_ids, 1, suspects, &mut rng);
    let inj_honest = pick_active(&inj, &inj_honest_ids, 3, suspects, &mut rng);
    let inj_verifier = NodeId(0);

    let mut rows = Vec::new();
    let mut eval_both = |name: &str,
                         wild_def: &dyn SybilDefense,
                         inj_def: &dyn SybilDefense| {
        let wild = evaluate_defense(wild_def, g, verifier, &wild_sybils, &wild_honest);
        let injected = evaluate_defense(inj_def, &inj, inj_verifier, &inj_sybils, &inj_honest);
        rows.push(DefenseRow {
            name: name.to_string(),
            wild,
            injected,
        });
    };

    let sg_wild = SybilGuard::new(g, None, ctx.seed ^ 1);
    // Injected graph: a route length that stays mostly inside the honest
    // region (the protocol's own small-w regime).
    let sg_inj = SybilGuard::new(&inj, Some(60), ctx.seed ^ 2);
    eval_both("SybilGuard", &sg_wild, &sg_inj);

    let sl_wild = SybilLimit::new(g, ctx.seed ^ 3);
    let sl_inj = SybilLimit::new(&inj, ctx.seed ^ 4);
    eval_both("SybilLimit", &sl_wild, &sl_inj);

    let si_wild = SybilInfer::new(g, ctx.seed ^ 5);
    let si_inj = SybilInfer::new(&inj, ctx.seed ^ 6);
    eval_both("SybilInfer", &si_wild, &si_inj);

    let mut cr_wild = ConductanceRanking::new();
    cr_wild.min_community = (ctx.normals.len() / 40).max(16);
    let mut cr_inj = ConductanceRanking::new();
    cr_inj.min_community = 75; // 3000 honest / 40
    eval_both("ConductanceRanking", &cr_wild, &cr_inj);

    // SumUp's guarantee is aggregate (votes accepted per attack edge), so
    // it is evaluated as batch vote collection rather than per-suspect.
    let su = SumUp::new(suspects * 2);
    let count = |v: Vec<bool>| v.iter().filter(|&&a| a).count();
    let wild = DefenseEvaluation {
        sybils_accepted: count(su.collect_votes(g, verifier, &wild_sybils)),
        sybils_total: wild_sybils.len(),
        honest_rejected: wild_honest.len() - count(su.collect_votes(g, verifier, &wild_honest)),
        honest_total: wild_honest.len(),
    };
    let injected = DefenseEvaluation {
        sybils_accepted: count(su.collect_votes(&inj, inj_verifier, &inj_sybils)),
        sybils_total: inj_sybils.len(),
        honest_rejected: inj_honest.len()
            - count(su.collect_votes(&inj, inj_verifier, &inj_honest)),
        honest_total: inj_honest.len(),
    };
    rows.push(DefenseRow {
        name: "SumUp".to_string(),
        wild,
        injected,
    });

    Defenses { rows }
}

impl Defenses {
    /// Mean Sybil acceptance across defenses on the wild graph.
    pub fn mean_wild_acceptance(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.wild.sybil_acceptance_rate())
            .sum::<f64>()
            / self.rows.len().max(1) as f64
    }

    /// Mean Sybil acceptance across defenses on the injected graph.
    pub fn mean_injected_acceptance(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.injected.sybil_acceptance_rate())
            .sum::<f64>()
            / self.rows.len().max(1) as f64
    }

    /// Render the comparison table.
    pub fn render(&self) -> String {
        let pct = |x: f64| format!("{:.0}%", 100.0 * x);
        let mut t = Table::new([
            "Defense",
            "Wild: Sybils accepted",
            "Wild: honest rejected",
            "Injected: Sybils accepted",
            "Injected: honest rejected",
        ]);
        for r in &self.rows {
            t.add_row([
                r.name.clone(),
                pct(r.wild.sybil_acceptance_rate()),
                pct(r.wild.honest_rejection_rate()),
                pct(r.injected.sybil_acceptance_rate()),
                pct(r.injected.honest_rejection_rate()),
            ]);
        }
        let mut out = String::from(
            "Defense evaluation — wild topology vs injected clusters (§3.1)\n\n",
        );
        out.push_str(&t.render());
        out.push_str(&format!(
            "\nmean Sybil acceptance: wild {:.0}% vs injected {:.0}% — \
             integrated Sybils defeat community-based detection\n",
            100.0 * self.mean_wild_acceptance(),
            100.0 * self.mean_injected_acceptance()
        ));
        out.push_str(
            "note: a defense also fails by rejecting honest users wholesale \
             (conductance ranking finds no community valley in the wild graph, \
             so its 'community' shrinks to the verifier's neighborhood)\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn wild_topology_defeats_defenses() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let d = run(&ctx, &RunSpec::builder().scale(Scale::Tiny).build());
        assert_eq!(d.rows.len(), 5);
        assert!(
            d.mean_wild_acceptance() > d.mean_injected_acceptance() + 0.15,
            "wild {} vs injected {}",
            d.mean_wild_acceptance(),
            d.mean_injected_acceptance()
        );
        assert!(d.render().contains("SybilGuard"));
    }
}
