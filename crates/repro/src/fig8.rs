//! Figure 8 — the order in which Sybils added their Sybil friends.
//!
//! For 1,000 random Sybils from the giant component, each column is the
//! account's chronological edge sequence with Sybil edges marked. Paper:
//! Sybil edges are scattered ~uniformly over each account's life
//! (accidental creation); only a handful of circled accounts show the
//! solid prefix runs of intentional interlinking.

use crate::scenario::Ctx;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use sybil_features::temporal::{self, EdgeOrderColumn};
use sybil_stats::ascii;

/// Result of the Fig. 8 experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig8 {
    /// One column per sampled account.
    pub columns: Vec<EdgeOrderColumn>,
    /// Accounts whose Sybil edges form an intentional-looking prefix run.
    pub intentional: usize,
    /// Mean normalized position of Sybil edges (≈0.5 = uniform/accidental).
    pub mean_position: f64,
    /// Mean position excluding intentional-looking columns.
    pub accidental_mean_position: f64,
}

/// Run the experiment, sampling up to `sample` accounts from the giant
/// component.
pub fn run(ctx: &Ctx, sample: usize) -> Fig8 {
    let mut nodes = match ctx.giant_component() {
        Some(c) => c.nodes.clone(),
        None => Vec::new(),
    };
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0xF18);
    nodes.shuffle(&mut rng);
    nodes.truncate(sample);
    let columns = temporal::columns_for(&ctx.out.graph, &nodes, |n| ctx.out.is_sybil(n));
    let summary = temporal::summarize(&columns);
    Fig8 {
        columns,
        intentional: summary.intentional,
        mean_position: summary.mean_position,
        accidental_mean_position: summary.accidental_mean_position,
    }
}

impl Fig8 {
    /// Render the dot matrix plus the uniformity summary.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 8 — order of adding Sybil friends\n\n");
        if self.columns.is_empty() {
            out.push_str("(no giant component at this scale/seed)\n");
            return out;
        }
        let cols: Vec<(usize, Vec<usize>)> = self
            .columns
            .iter()
            .map(|c| (c.total, c.sybil_positions.clone()))
            .collect();
        out.push_str(&ascii::dot_matrix(&cols, 100, 24));
        out.push_str(&format!(
            "\nmean normalized Sybil-edge position: {:.2} overall, {:.2} excluding \
             intentional columns (0.5 = uniform ⇒ accidental)\n",
            self.mean_position, self.accidental_mean_position
        ));
        out.push_str(&format!(
            "intentional-looking accounts: {} of {} sampled (paper: \"a handful\")\n",
            self.intentional,
            self.columns.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn sybil_edges_scatter_uniformly() {
        let ctx = Ctx::build(Scale::Small, 1);
        let fig = run(&ctx, 200);
        assert!(!fig.columns.is_empty());
        // Accidental edges scatter: mean normalized position near 0.5
        // (intentional prefixes would pull it toward 0).
        assert!(
            (0.2..=0.8).contains(&fig.accidental_mean_position),
            "accidental mean position {}",
            fig.accidental_mean_position
        );
        // Only a minority look intentional.
        assert!(
            fig.intentional * 3 <= fig.columns.len(),
            "{} of {} intentional",
            fig.intentional,
            fig.columns.len()
        );
        assert!(fig.render().contains("Figure 8"));
    }
}
