//! Deployment replay — the §2.3 production story as an experiment.
//!
//! The paper's detector ran on Renren from August 2010 to February 2011
//! and banned ~100,000 Sybils. Here the simulated request stream is
//! replayed through the streaming detector (static and adaptive variants)
//! and the operational metrics an abuse team would track are reported:
//! catch rate, false positives, and detection latency.

use crate::fig1::ground_truth_sample;
use crate::runspec::RunSpec;
use crate::scenario::Ctx;
use crate::serve::fmt_catch_rate;
use serde::{Deserialize, Serialize};
use sybil_core::realtime::{replay, DeploymentReport, RealtimeConfig};
use sybil_core::ThresholdClassifier;
use sybil_serve::{ServeConfig, ServeSession};
use sybil_stats::table::Table;

/// Result of the deployment experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Deployment {
    /// The calibrated initial rule.
    pub rule: ThresholdClassifier,
    /// Static-rule replay.
    pub static_report: DeploymentReport,
    /// Adaptive-rule replay.
    pub adaptive_report: DeploymentReport,
    /// Sybils Renren's prior techniques banned during the run (context).
    pub prior_bans: usize,
    /// Adaptive-detector detections per 500-hour operations window — the
    /// "bans per month" chart an abuse team watches.
    pub detections_per_window: Vec<(u64, usize)>,
}

/// Run the experiment.
pub fn run(ctx: &Ctx, spec: &RunSpec) -> Deployment {
    let ds = ground_truth_sample(ctx, spec.per_class());
    let rule = ThresholdClassifier::calibrate(&ds);
    // The sharded engine produces the same report byte-for-byte (see the
    // `serve` experiment, which checks exactly that) but walks the stream
    // in parallel; the sequential replay stays as a fallback for configs
    // the engine rejects.
    let run_variant = |adaptive: bool| {
        let detect = RealtimeConfig {
            rule,
            adaptive,
            ..RealtimeConfig::default()
        };
        let mut cfg = ServeConfig::for_detect(detect);
        if spec.shards != 0 {
            cfg.shards = spec.shards;
        }
        ServeSession::new(cfg)
            .run(&ctx.out)
            .map(|o| o.report)
            .unwrap_or_else(|_| replay(&ctx.out, &detect))
    };
    let static_report = run_variant(false);
    let adaptive_report = run_variant(true);
    // Bucket adaptive detections into 500 h operations windows.
    let window_h = 500u64;
    let mut buckets: std::collections::BTreeMap<u64, usize> = Default::default();
    for d in &adaptive_report.detections {
        *buckets.entry(d.at.as_secs() / (window_h * 3600)).or_default() += 1;
    }
    let detections_per_window = buckets
        .into_iter()
        .map(|(b, c)| (b * window_h, c))
        .collect();
    Deployment {
        rule,
        static_report,
        adaptive_report,
        prior_bans: ctx.out.stats().banned,
        detections_per_window,
    }
}

impl Deployment {
    /// Render the ops dashboard.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "Variant",
            "Detections",
            "Sybils caught",
            "Catch rate",
            "False pos.",
            "Mean latency",
        ]);
        for (name, r) in [
            ("static", &self.static_report),
            ("adaptive", &self.adaptive_report),
        ] {
            t.add_row([
                name.to_string(),
                r.detections.len().to_string(),
                r.true_positives.to_string(),
                fmt_catch_rate(r.catch_rate()),
                r.false_positives.to_string(),
                format!("{:.0}h", r.mean_latency_h),
            ]);
        }
        let mut out = String::from(
            "Deployment replay — the §2.3 production detector on the simulated stream\n\n",
        );
        out.push_str(&t.render());
        out.push_str("\nadaptive detections per 500h ops window:\n");
        let peak = self
            .detections_per_window
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(1)
            .max(1);
        for &(start_h, count) in &self.detections_per_window {
            let bar = "#".repeat((count * 40).div_ceil(peak));
            out.push_str(&format!("  t={start_h:>5}h {count:>5} {bar}\n"));
        }
        out.push_str(&format!(
            "\ninitial rule: ratio < {:.2} ∧ freq > {:.1} ∧ cc < {}; Renren's prior \
             techniques banned {} Sybils over the same period (paper: our detector added \
             ~100k to their ~560k)\n",
            self.rule.max_out_ratio,
            self.rule.min_freq,
            if self.rule.max_cc.is_finite() {
                format!("{:.3}", self.rule.max_cc)
            } else {
                "(off)".into()
            },
            self.prior_bans
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn both_variants_catch_most_sybils_cheaply() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let d = run(&ctx, &RunSpec::builder().scale(Scale::Tiny).build());
        assert!(!d.detections_per_window.is_empty());
        let total: usize = d.detections_per_window.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, d.adaptive_report.detections.len());
        for r in [&d.static_report, &d.adaptive_report] {
            assert!(r.catch_rate() > 0.5, "catch rate {:.2}", r.catch_rate());
            let fp = r.false_positives as f64 / ctx.normals.len() as f64;
            assert!(fp < 0.02, "fp rate {fp}");
            assert!(r.mean_latency_h >= 0.0);
        }
        assert!(d.render().contains("Deployment replay"));
    }
}
