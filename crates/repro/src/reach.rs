//! Spam-reach experiment — the paper's motivation, quantified.
//!
//! Table 2 reports each Sybil component's *audience* (distinct honest
//! neighbors) as its spam surface. But Renren content travels further
//! than one hop: "blog entries … can be forwarded across multiple social
//! hops much like retweets" (§2.1). This experiment seeds an independent
//! cascade at the honest friends of each large Sybil component and
//! measures how far an ad actually propagates, at several forwarding
//! probabilities.

use crate::scenario::Ctx;
use osn_graph::{cascade, metrics, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sybil_stats::table::Table;
use std::collections::HashSet;

/// Reach measurements for one Sybil component.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReachRow {
    /// Component size (Sybils).
    pub sybils: usize,
    /// Direct audience (Table 2's column: distinct honest neighbors).
    pub audience: usize,
    /// Expected cascade reach at each probed forwarding probability.
    pub reach: Vec<(f64, f64)>,
}

/// Result of the reach experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Reach {
    /// Forwarding probabilities probed.
    pub probabilities: Vec<f64>,
    /// One row per large component (top 3).
    pub rows: Vec<ReachRow>,
    /// Fraction of the normal population reachable by the giant
    /// component's campaign at the highest probed probability.
    pub giant_max_coverage: f64,
}

/// Run the experiment (`trials` cascades per probability).
pub fn run(ctx: &Ctx, trials: usize) -> Reach {
    let probabilities = vec![0.01, 0.05, 0.15];
    let g = &ctx.out.graph;
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x5EAC);
    let mut rows = Vec::new();
    let mut giant_max_coverage: f64 = 0.0;
    for (ci, comp) in ctx.sybil_components.iter().take(3).enumerate() {
        let stats = metrics::cut_stats(g, &comp.nodes);
        // Seeds: the component's honest audience (the accounts that see
        // the ad directly on their feed).
        let members: HashSet<NodeId> = comp.nodes.iter().copied().collect();
        let mut audience: HashSet<NodeId> = HashSet::new();
        for &s in &comp.nodes {
            for nb in g.neighbors(s) {
                if !members.contains(&nb.node) {
                    audience.insert(nb.node);
                }
            }
        }
        let mut seeds: Vec<NodeId> = audience.into_iter().collect();
        seeds.sort_unstable(); // determinism: HashSet order is randomized
        let mut reach = Vec::new();
        for &p in &probabilities {
            let r = cascade::expected_reach(g, &seeds, p, trials, &mut rng);
            reach.push((p, r));
            if ci == 0 {
                giant_max_coverage =
                    giant_max_coverage.max(r / ctx.normals.len().max(1) as f64);
            }
        }
        rows.push(ReachRow {
            sybils: comp.len(),
            audience: stats.audience,
            reach,
        });
    }
    Reach {
        probabilities,
        rows,
        giant_max_coverage,
    }
}

impl Reach {
    /// Render the reach table.
    pub fn render(&self) -> String {
        let mut header = vec!["Sybils".to_string(), "Audience".to_string()];
        for p in &self.probabilities {
            header.push(format!("reach@p={p}"));
        }
        let mut t = Table::new(header);
        for r in &self.rows {
            let mut row = vec![r.sybils.to_string(), r.audience.to_string()];
            for (_, reach) in &r.reach {
                row.push(format!("{reach:.0}"));
            }
            t.add_row(row);
        }
        let mut out = String::from(
            "Spam reach — cascades seeded at each component's audience (§2.1 motivation)\n\n",
        );
        out.push_str(&t.render());
        out.push_str(&format!(
            "\ngiant component campaign touches {:.0}% of the normal population at the \
             highest forwarding rate — why Table 2's audience column understates the threat\n",
            100.0 * self.giant_max_coverage
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn reach_exceeds_audience_and_grows_with_p() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let r = run(&ctx, 30);
        assert!(!r.rows.is_empty());
        for row in &r.rows {
            // Reach includes the seeds, so it is at least the audience.
            assert!(row.reach[0].1 >= row.audience as f64 * 0.99);
            // Monotone in p.
            for w in row.reach.windows(2) {
                assert!(w[1].1 >= w[0].1 * 0.99, "reach must not shrink with p");
            }
        }
        assert!(r.giant_max_coverage > 0.0);
        assert!(r.render().contains("Spam reach"));
    }
}
