//! Warm-restart drill — kill the persistent serving engine mid-stream,
//! restart from disk alone, and byte-compare against the uninterrupted
//! run.
//!
//! This is the persistence layer's headline invariant exercised on a
//! real simulated stream: `repro restart --seed N` calibrates the same
//! rule as [`crate::serve`], runs the fault-free oracle, then
//!
//! 1. runs again with a [`StorePlane`] armed to crash at a seed-derived
//!    epoch — the write-ahead journal record lands, then the process
//!    "dies" with a typed crash error;
//! 2. reopens a *fresh* plane over the same directory (nothing survives
//!    in memory), warm-restarts — newest checkpoint, committed journal
//!    tail, live stream — and runs to completion;
//! 3. byte-compares the restarted report against the oracle's.
//!
//! The emitted [`RestartRun`] — kill epoch, resume epoch, journal tail
//! length, checkpoint inventory, journal size — is a pure function of
//! `(scale, seed)`, so the dashboard is byte-reproducible.

use crate::fig1::ground_truth_sample;
use crate::runspec::RunSpec;
use crate::scenario::Ctx;
use serde::{Deserialize, Serialize};
use sybil_core::realtime::{DeploymentReport, RealtimeConfig};
use sybil_core::ThresholdClassifier;
use sybil_serve::fault::FaultKind;
use sybil_serve::{ServeConfig, ServeError, ServeSession};
use sybil_store::{IoOp, StoreError, StorePlane, DEFAULT_DIGEST_EVERY};

/// Epoch length for the drill. Shorter than the `serve` experiment's so
/// even the tiny stream spans enough epochs to kill mid-run.
const DRILL_EPOCH_HOURS: u64 = 12;

/// Why the restart drill could not run.
#[derive(Debug)]
pub enum RestartError {
    /// The snapshot store or journal failed.
    Store(StoreError),
    /// The engine failed for a reason that is not the armed kill.
    Engine(ServeError),
    /// The armed kill never fired — the stream ended before the kill
    /// epoch, so the drill proved nothing.
    KillNeverFired {
        /// The epoch the kill was armed at.
        kill_epoch: u64,
    },
}

impl std::fmt::Display for RestartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Spell out the IO operation for the common case; every
            // other store failure renders through its own Display.
            RestartError::Store(StoreError::Io { op, kind }) => {
                let verb = match op {
                    IoOp::Read => "reading",
                    IoOp::Write => "writing",
                    IoOp::Sync => "syncing",
                    IoOp::Rename => "renaming",
                    IoOp::CreateDir => "creating",
                    IoOp::List => "listing",
                    IoOp::Truncate => "truncating",
                };
                write!(f, "store IO failed while {verb} ({kind:?})")
            }
            RestartError::Store(e) => write!(f, "snapshot store failed: {e}"),
            RestartError::Engine(e) => write!(f, "serving engine failed: {e}"),
            RestartError::KillNeverFired { kill_epoch } => write!(
                f,
                "the stream ended before epoch {kill_epoch}; nothing was killed"
            ),
        }
    }
}

impl std::error::Error for RestartError {}

impl From<StoreError> for RestartError {
    fn from(e: StoreError) -> Self {
        RestartError::Store(e)
    }
}

/// Result of the warm-restart drill.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RestartRun {
    /// The calibrated rule the detector ran (same calibration as
    /// `serve`/`deployment`).
    pub rule: ThresholdClassifier,
    /// Shard count the engine used.
    pub shards: usize,
    /// Epoch the kill fired at (seed-derived).
    pub kill_epoch: u64,
    /// Epoch count of the checkpoint the restart resumed from; `None`
    /// means the kill predated the first checkpoint and the restart
    /// replayed the stream cold.
    pub resumed_from: Option<u64>,
    /// Committed journal epochs replayed after the checkpoint.
    pub tail_replayed: u64,
    /// Checkpoint inventory left in the store after the finished run.
    pub checkpoints: Vec<u64>,
    /// Journal size in bytes after the finished run.
    pub journal_bytes: u64,
    /// Where the journal lives (under the store directory).
    pub journal_path: String,
    /// Whether the restarted report serialized byte-identically to the
    /// uninterrupted oracle's — the invariant this drill exists for.
    pub matches_oracle: bool,
    /// The restarted run's report.
    pub report: DeploymentReport,
}

/// Run the drill. With `--store DIR` the drill keeps its state under
/// `DIR/restart-drill` (cleared at the start so the kill is always
/// exercised from cold); otherwise it stores under the run directory.
pub fn run(ctx: &Ctx, spec: &RunSpec) -> Result<RestartRun, RestartError> {
    let ds = ground_truth_sample(ctx, spec.per_class());
    let rule = ThresholdClassifier::calibrate(&ds);
    let detect = RealtimeConfig {
        rule,
        adaptive: true,
        ..RealtimeConfig::default()
    };
    let shards = sybil_chaos::resolved_shards(&ServeConfig {
        shards: spec.shards,
        epoch_hours: DRILL_EPOCH_HOURS,
        detect,
        rotate_floor: 0,
    });
    let cfg = ServeConfig {
        shards,
        epoch_hours: DRILL_EPOCH_HOURS,
        detect,
        rotate_floor: 0,
    };
    // Same seed, same kill point, on every machine.
    let kill_epoch = 1 + spec.seed % 4;

    let oracle = ServeSession::new(cfg)
        .run(&ctx.out)
        .map_err(RestartError::Engine)?;
    let oracle_json = serde_json::to_string(&oracle.report).unwrap_or_default();

    let base = spec
        .store_dir
        .clone()
        .unwrap_or_else(|| spec.run_dir());
    let dir = base.join("restart-drill");
    let _ = std::fs::remove_dir_all(&dir);

    // Act 1: the doomed run. The kill lands after the write-ahead
    // journal record for `kill_epoch`, exactly where a SIGKILL between
    // the journal append and the epoch barrier would. The drill
    // checkpoints every epoch (not the sparser production default) so a
    // seed-derived kill in the first few epochs still has a checkpoint
    // to resume from.
    let mut doomed =
        StorePlane::with_cadence(&dir, 1, DEFAULT_DIGEST_EVERY)?.kill_at_epoch(kill_epoch);
    match ServeSession::new(cfg).store(&mut doomed).run(&ctx.out) {
        Ok(_) => return Err(RestartError::KillNeverFired { kill_epoch }),
        Err(ServeError::Chaos(c)) if c.fault_kind == FaultKind::Crash => {}
        Err(e) => return Err(RestartError::Engine(e)),
    }
    drop(doomed);

    // Act 2: the warm restart, from the directory's bytes alone.
    let mut revived = StorePlane::with_cadence(&dir, 1, DEFAULT_DIGEST_EVERY)?;
    let outcome = ServeSession::new(cfg)
        .store(&mut revived)
        .run(&ctx.out)
        .map_err(RestartError::Engine)?;
    let matches_oracle =
        serde_json::to_string(&outcome.report).unwrap_or_default() == oracle_json;

    Ok(RestartRun {
        rule,
        shards,
        kill_epoch,
        resumed_from: revived.resumed_from(),
        tail_replayed: revived.tail_replayed(),
        checkpoints: revived.store().checkpoints()?,
        journal_bytes: revived.journal().len_bytes(),
        journal_path: revived.store().journal_path().display().to_string(),
        matches_oracle,
        report: outcome.report,
    })
}

impl RestartRun {
    /// Render the warm-restart dashboard.
    pub fn render(&self) -> String {
        use sybil_stats::table::Table;
        let mut t = Table::new(["Quantity", "Value"]);
        let rows: Vec<(&str, String)> = vec![
            ("Kill epoch", self.kill_epoch.to_string()),
            (
                "Resumed from checkpoint",
                match self.resumed_from {
                    Some(e) => format!("epoch {e}"),
                    None => "none (cold replay)".into(),
                },
            ),
            (
                "Journal tail replayed",
                format!("{} committed epochs", self.tail_replayed),
            ),
            (
                "Checkpoints on disk",
                format!("{} (latest epoch {:?})", self.checkpoints.len(), self.checkpoints.last()),
            ),
            (
                "Journal",
                format!("{} bytes at {}", self.journal_bytes, self.journal_path),
            ),
            (
                "Report vs uninterrupted run",
                if self.matches_oracle {
                    "byte-identical".into()
                } else {
                    "DIVERGED (invariant broken)".into()
                },
            ),
            ("Detections", self.report.detections.len().to_string()),
        ];
        for (k, v) in rows {
            t.add_row([k.to_string(), v]);
        }
        format!(
            "Warm-restart drill — {} shards, {}h epochs, killed at epoch {} and \
             restarted from disk\n\n{}",
            self.shards,
            DRILL_EPOCH_HOURS,
            self.kill_epoch,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    fn drill_spec(seed: u64) -> RunSpec {
        let dir = std::env::temp_dir().join(format!(
            "sybil-repro-restart-{}-{seed}",
            std::process::id()
        ));
        RunSpec::builder()
            .scale(Scale::Tiny)
            .seed(seed)
            .shards(2)
            .store_dir(dir)
            .build()
    }

    #[test]
    fn drill_restarts_byte_identically() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let spec = drill_spec(11);
        let r = run(&ctx, &spec).expect("drill failed");
        assert!(r.matches_oracle, "{r:?}");
        assert_eq!(r.kill_epoch, 1 + 11 % 4);
        // The kill fired past epoch 0, so a checkpoint existed to resume
        // from and the store kept checkpointing through the restart.
        assert!(r.resumed_from.is_some());
        assert!(!r.checkpoints.is_empty());
        assert!(r.journal_bytes > 0);
        assert!(r.journal_path.ends_with("journal.sybj"));
        assert!(r.render().contains("Warm-restart drill"));
        let _ = std::fs::remove_dir_all(spec.store_dir.unwrap());
    }

    #[test]
    fn drill_is_deterministic() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let spec = drill_spec(11);
        let a = serde_json::to_string(&run(&ctx, &spec).expect("drill failed")).unwrap();
        let b = serde_json::to_string(&run(&ctx, &spec).expect("drill failed")).unwrap();
        assert_eq!(a, b, "restart drill must be byte-reproducible");
        let _ = std::fs::remove_dir_all(spec.store_dir.unwrap());
    }

    /// The error surface stays typed end to end: a store IO failure
    /// renders with its operation spelled out, not as a bare kind.
    #[test]
    fn store_errors_render_their_operation() {
        let e = RestartError::Store(StoreError::Io {
            op: IoOp::Rename,
            kind: std::io::ErrorKind::PermissionDenied,
        });
        assert!(e.to_string().contains("renaming"));
        let e = RestartError::KillNeverFired { kill_epoch: 9 };
        assert!(e.to_string().contains("epoch 9"));
    }
}
