//! Figure 9 — degree distribution inside the largest Sybil component.
//!
//! Paper: within the giant component, 34.5% of Sybils have exactly one
//! Sybil edge and 93.7% have at most ten — the component is loose, not the
//! tight-knit cluster community detectors expect.

use crate::scenario::Ctx;
use osn_graph::degree;
use serde::{Deserialize, Serialize};
use sybil_stats::{ascii, Cdf};

/// Result of the Fig. 9 experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig9 {
    /// Total degree of each giant-component member.
    pub all_degrees: Vec<usize>,
    /// Within-component (Sybil-edge) degree of each member.
    pub sybil_degrees: Vec<usize>,
    /// Fraction with exactly one Sybil edge (paper 0.345).
    pub degree_one: f64,
    /// Fraction with at most ten Sybil edges (paper 0.937).
    pub degree_at_most_10: f64,
}

/// Run the experiment.
pub fn run(ctx: &Ctx) -> Fig9 {
    let Some(giant) = ctx.giant_component() else {
        return Fig9 {
            all_degrees: Vec::new(),
            sybil_degrees: Vec::new(),
            degree_one: 0.0,
            degree_at_most_10: 0.0,
        };
    };
    let members: std::collections::HashSet<_> = giant.nodes.iter().copied().collect();
    let all_degrees = degree::degrees_of(&ctx.out.graph, &giant.nodes);
    let sybil_degrees =
        degree::restricted_degrees(&ctx.out.graph, &giant.nodes, |n| members.contains(&n));
    Fig9 {
        degree_one: degree::fraction_with_degree(&sybil_degrees, 1),
        degree_at_most_10: degree::fraction_with_degree_at_most(&sybil_degrees, 10),
        all_degrees,
        sybil_degrees,
    }
}

impl Fig9 {
    /// Render the CDFs plus the looseness summary.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Figure 9 — degree distribution of the largest Sybil component\n\n");
        if self.all_degrees.is_empty() {
            out.push_str("(no giant component at this scale/seed)\n");
            return out;
        }
        let all = Cdf::from_iter(self.all_degrees.iter().map(|&d| d as f64));
        let sy = Cdf::from_iter(self.sybil_degrees.iter().map(|&d| d as f64));
        out.push_str(&ascii::plot_cdfs(
            &[("Sybil Edges", &sy), ("All Edges", &all)],
            70,
            14,
            true,
        ));
        out.push_str(&format!(
            "\nSybil-edge degree: exactly 1: {:.1}% (paper 34.5%); ≤10: {:.1}% (paper 93.7%)\n",
            100.0 * self.degree_one,
            100.0 * self.degree_at_most_10
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn giant_component_is_loose() {
        let ctx = Ctx::build(Scale::Small, 1);
        let fig = run(&ctx);
        assert!(!fig.sybil_degrees.is_empty());
        assert!(
            fig.degree_one > 0.2,
            "degree-1 share {} too low",
            fig.degree_one
        );
        assert!(
            fig.degree_at_most_10 > 0.8,
            "≤10 share {} too low",
            fig.degree_at_most_10
        );
        // Everyone in the component has ≥1 sybil edge by construction.
        assert!(fig.sybil_degrees.iter().all(|&d| d >= 1));
        assert!(fig.render().contains("Figure 9"));
    }
}
