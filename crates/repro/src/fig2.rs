//! Figure 2 — CDF of the accepted fraction of outgoing friend requests.
//!
//! Paper: normal users average 79% acceptance; Sybils average 26%
//! (strangers decline them).

use crate::fig1::ground_truth_sample;
use crate::scenario::Ctx;
use serde::{Deserialize, Serialize};
use sybil_stats::{ascii, Cdf, Summary};

/// Result of the Fig. 2 experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig2 {
    /// Outgoing accept ratios of sampled Sybils.
    pub sybil: Vec<f64>,
    /// Outgoing accept ratios of sampled normal users.
    pub normal: Vec<f64>,
    /// Mean Sybil ratio (paper: 0.26).
    pub sybil_mean: f64,
    /// Mean normal ratio (paper: 0.79).
    pub normal_mean: f64,
}

/// Run the experiment.
pub fn run(ctx: &Ctx, per_class: usize) -> Fig2 {
    let ds = ground_truth_sample(ctx, per_class);
    let mut sybil = Vec::new();
    let mut normal = Vec::new();
    for (f, &label) in ds.features.iter().zip(&ds.labels) {
        if label {
            sybil.push(f.outgoing_accept_ratio);
        } else {
            normal.push(f.outgoing_accept_ratio);
        }
    }
    let sybil_mean = Summary::of(sybil.iter().copied()).mean;
    let normal_mean = Summary::of(normal.iter().copied()).mean;
    Fig2 {
        sybil,
        normal,
        sybil_mean,
        normal_mean,
    }
}

impl Fig2 {
    /// Render the CDF chart plus the paper comparison line.
    pub fn render(&self) -> String {
        let s = Cdf::new(self.sybil.clone());
        let n = Cdf::new(self.normal.clone());
        let mut out = String::from("Figure 2 — ratio of accepted outgoing requests\n\n");
        out.push_str(&ascii::plot_cdfs(
            &[("Sybil", &s), ("Normal", &n)],
            70,
            14,
            false,
        ));
        out.push_str(&format!(
            "\nmeans: sybil {:.2} (paper 0.26), normal {:.2} (paper 0.79)\n",
            self.sybil_mean, self.normal_mean
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn outgoing_ratio_separates() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let fig = run(&ctx, 50);
        assert!(fig.normal_mean > fig.sybil_mean + 0.25,
            "means: normal {} sybil {}", fig.normal_mean, fig.sybil_mean);
        assert!(fig.sybil_mean < 0.45);
        assert!(fig.normal_mean > 0.55);
        assert!(fig.render().contains("paper 0.26"));
    }
}
