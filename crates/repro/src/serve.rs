//! Sharded serving replay — the §2.3 production detector run through the
//! `sybil-serve` engine instead of the sequential loop.
//!
//! The experiment calibrates the same initial rule as [`crate::deployment`],
//! then runs both detector variants through the sharded engine at the
//! ambient `RENREN_THREADS` shard count and byte-compares each report
//! against the sequential [`replay`] — the engine's headline invariant,
//! checked on real simulated streams at every scale.

use crate::fig1::ground_truth_sample;
use crate::scenario::Ctx;
use osn_graph::par;
use serde::{Deserialize, Serialize};
use sybil_core::realtime::{replay, DeploymentReport, RealtimeConfig};
use sybil_core::ThresholdClassifier;
use sybil_serve::{serve, ServeConfig};
use sybil_stats::table::Table;

/// Result of the sharded serving experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeRun {
    /// The calibrated initial rule (same calibration as `deployment`).
    pub rule: ThresholdClassifier,
    /// Shard count the engine actually used.
    pub shards: usize,
    /// Epoch barrier cadence in simulated hours (pre-clamp).
    pub epoch_hours: u64,
    /// Static-rule sharded run.
    pub static_report: DeploymentReport,
    /// Adaptive-rule sharded run.
    pub adaptive_report: DeploymentReport,
    /// Whether the static sharded report serialized byte-identically to
    /// the sequential replay's.
    pub matches_replay_static: bool,
    /// Same check for the adaptive variant.
    pub matches_replay_adaptive: bool,
}

/// Run the experiment. The sharded engine is the product; the sequential
/// replay is kept only as the equivalence oracle.
pub fn run(ctx: &Ctx, per_class: usize) -> ServeRun {
    let ds = ground_truth_sample(ctx, per_class);
    let rule = ThresholdClassifier::calibrate(&ds);
    let epoch_hours = 48;
    let shards = par::num_threads().max(1);
    let mut reports = Vec::new();
    let mut matches = Vec::new();
    for adaptive in [false, true] {
        let detect = RealtimeConfig {
            rule,
            adaptive,
            ..RealtimeConfig::default()
        };
        let cfg = ServeConfig {
            shards,
            epoch_hours,
            detect,
        };
        let report = match serve(&ctx.out, &cfg) {
            Ok(r) => r,
            // Serving constraints (e.g. zero feedback delay) fall back to
            // the sequential engine rather than failing the experiment.
            Err(_) => replay(&ctx.out, &detect),
        };
        let sequential = replay(&ctx.out, &detect);
        matches.push(
            serde_json::to_string(&report).ok() == serde_json::to_string(&sequential).ok(),
        );
        reports.push(report);
    }
    let adaptive_report = reports.pop().unwrap_or_default();
    let static_report = reports.pop().unwrap_or_default();
    ServeRun {
        rule,
        shards,
        epoch_hours,
        static_report,
        adaptive_report,
        matches_replay_static: matches[0],
        matches_replay_adaptive: matches[1],
    }
}

/// Format a catch rate, which is NaN when no Sybil was eligible.
pub(crate) fn fmt_catch_rate(rate: f64) -> String {
    if rate.is_nan() {
        "n/a".into()
    } else {
        format!("{:.0}%", 100.0 * rate)
    }
}

impl ServeRun {
    /// Render the serving dashboard.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "Variant",
            "Detections",
            "Catch rate",
            "False pos.",
            "Mean latency",
            "≡ replay",
        ]);
        for (name, r, ok) in [
            ("static", &self.static_report, self.matches_replay_static),
            (
                "adaptive",
                &self.adaptive_report,
                self.matches_replay_adaptive,
            ),
        ] {
            t.row([
                name.to_string(),
                r.detections.len().to_string(),
                fmt_catch_rate(r.catch_rate()),
                r.false_positives.to_string(),
                format!("{:.0}h", r.mean_latency_h),
                if ok { "yes".into() } else { "NO".into() },
            ]);
        }
        format!(
            "Sharded serving replay — {} shards, {}h epochs, byte-compared to the \
             sequential engine\n\n{}",
            self.shards,
            self.epoch_hours,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn sharded_run_matches_sequential_replay() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let r = run(&ctx, 50);
        assert!(r.matches_replay_static);
        assert!(r.matches_replay_adaptive);
        assert!(r.shards >= 1);
        assert!(r.render().contains("Sharded serving replay"));
    }

    #[test]
    fn catch_rate_formatter_handles_nan() {
        assert_eq!(fmt_catch_rate(f64::NAN), "n/a");
        assert_eq!(fmt_catch_rate(0.5), "50%");
    }
}
