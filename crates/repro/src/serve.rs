//! Sharded serving replay — the §2.3 production detector run through the
//! `sybil-serve` engine instead of the sequential loop.
//!
//! The experiment calibrates the same initial rule as [`crate::deployment`],
//! then runs both detector variants through the sharded engine at the
//! ambient `RENREN_THREADS` shard count and byte-compares each report
//! against the sequential [`replay`] — the engine's headline invariant,
//! checked on real simulated streams at every scale.

use crate::fig1::ground_truth_sample;
use crate::runspec::RunSpec;
use crate::scenario::Ctx;
use osn_graph::par;
use serde::{Deserialize, Serialize};
use sybil_core::realtime::{replay, replay_observed, DeploymentReport, RealtimeConfig};
use sybil_core::ThresholdClassifier;
use sybil_obs::{Registry, Snapshot};
use sybil_serve::{ServeConfig, ServeError, ServeOutcome, ServeSession};
use sybil_stats::table::Table;
use sybil_store::StorePlane;

/// Result of the sharded serving experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeRun {
    /// The calibrated initial rule (same calibration as `deployment`).
    pub rule: ThresholdClassifier,
    /// Shard count the engine actually used.
    pub shards: usize,
    /// Epoch barrier cadence in simulated hours (pre-clamp).
    pub epoch_hours: u64,
    /// Static-rule sharded run.
    pub static_report: DeploymentReport,
    /// Adaptive-rule sharded run.
    pub adaptive_report: DeploymentReport,
    /// Whether the static sharded report serialized byte-identically to
    /// the sequential replay's.
    pub matches_replay_static: bool,
    /// Same check for the adaptive variant.
    pub matches_replay_adaptive: bool,
    /// Whether both variants ran with a persistence plane attached
    /// (`--store DIR`): checkpoints + journal under `DIR/{variant}`,
    /// warm-restarting from whatever a previous invocation left there.
    pub persisted: bool,
}

/// Run the experiment. The sharded engine is the product; the sequential
/// replay is kept only as the equivalence oracle.
pub fn run(ctx: &Ctx, spec: &RunSpec) -> ServeRun {
    run_inner(ctx, spec, None).0
}

/// [`run`] with metrics: both engines run through their observed entry
/// points, and the returned [`Snapshot`] carries four namespaces —
/// `serve.static`, `serve.adaptive`, `replay.static`, `replay.adaptive`.
/// The `clock` feeds only wall spans; every logical metric stays
/// byte-identical across thread and shard counts. The clock is injected
/// because this is library code (lint D002 forbids reading one here);
/// the `repro` binary constructs the real clock.
pub fn run_observed(ctx: &Ctx, spec: &RunSpec, clock: sybil_obs::Clock<'_>) -> (ServeRun, Snapshot) {
    let (run, snap) = run_inner(ctx, spec, Some(clock));
    (run, snap.unwrap_or_default())
}

/// Run one engine pass with whatever optional capabilities the caller
/// holds. The plane changes the session's type parameter, so the
/// combinations are enumerated here once instead of at every call site.
fn run_engine(
    cfg: ServeConfig,
    out: &osn_sim::SimOutput,
    observed: Option<(sybil_obs::Clock<'_>, &mut Registry)>,
    plane: Option<&mut StorePlane>,
) -> Result<ServeOutcome, ServeError> {
    let s = ServeSession::new(cfg);
    match (observed, plane) {
        (Some((c, r)), Some(p)) => s.clock(c).metrics(r).store(p).run(out),
        (Some((c, r)), None) => s.clock(c).metrics(r).run(out),
        (None, Some(p)) => s.store(p).run(out),
        (None, None) => s.run(out),
    }
}

fn run_inner(
    ctx: &Ctx,
    spec: &RunSpec,
    observe: Option<sybil_obs::Clock<'_>>,
) -> (ServeRun, Option<Snapshot>) {
    let ds = ground_truth_sample(ctx, spec.per_class());
    let rule = ThresholdClassifier::calibrate(&ds);
    let epoch_hours = 48;
    let shards = if spec.shards == 0 {
        par::num_threads().max(1)
    } else {
        spec.shards
    };
    let mut reports = Vec::new();
    let mut matches = Vec::new();
    let mut persisted = spec.store_dir.is_some();
    let mut master = observe.map(|_| Snapshot::default());
    for adaptive in [false, true] {
        let variant = if adaptive { "adaptive" } else { "static" };
        let detect = RealtimeConfig {
            rule,
            adaptive,
            ..RealtimeConfig::default()
        };
        let cfg = ServeConfig {
            shards,
            epoch_hours,
            detect,
            rotate_floor: 0,
        };
        // With `--store DIR`, each variant persists under its own
        // subdirectory; a rerun over the same directory warm-restarts
        // (and, over a finished journal, replays without recomputing).
        let mut plane = match &spec.store_dir {
            Some(dir) => match StorePlane::open(dir.join(variant)) {
                Ok(p) => Some(p),
                Err(_) => {
                    persisted = false;
                    None
                }
            },
            None => None,
        };
        let (report, sequential) = match observe {
            Some(clock) => {
                let mut sreg = Registry::new();
                let served =
                    run_engine(cfg, &ctx.out, Some((clock, &mut sreg)), plane.as_mut());
                let report = match served {
                    Ok(o) => o.report,
                    // Serving constraints (e.g. zero feedback delay) fall
                    // back to the sequential engine rather than failing.
                    Err(_) => replay(&ctx.out, &detect),
                };
                let mut rreg = Registry::new();
                let sequential = replay_observed(&ctx.out, &detect, &mut rreg, Some(clock));
                if let Some(m) = master.as_mut() {
                    m.absorb(&sreg.snapshot().prefixed(&format!("serve.{variant}")));
                    m.absorb(&rreg.snapshot().prefixed(&format!("replay.{variant}")));
                }
                (report, sequential)
            }
            None => {
                let report = match run_engine(cfg, &ctx.out, None, plane.as_mut()) {
                    Ok(o) => o.report,
                    Err(_) => replay(&ctx.out, &detect),
                };
                (report, replay(&ctx.out, &detect))
            }
        };
        matches.push(
            serde_json::to_string(&report).ok() == serde_json::to_string(&sequential).ok(),
        );
        reports.push(report);
    }
    let adaptive_report = reports.pop().unwrap_or_default();
    let static_report = reports.pop().unwrap_or_default();
    (
        ServeRun {
            rule,
            shards,
            epoch_hours,
            static_report,
            adaptive_report,
            matches_replay_static: matches[0],
            matches_replay_adaptive: matches[1],
            persisted,
        },
        master,
    )
}

/// Format a catch rate, which is NaN when no Sybil was eligible.
pub(crate) fn fmt_catch_rate(rate: f64) -> String {
    if rate.is_nan() {
        "n/a".into()
    } else {
        format!("{:.0}%", 100.0 * rate)
    }
}

impl ServeRun {
    /// Render the serving dashboard.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "Variant",
            "Detections",
            "Catch rate",
            "False pos.",
            "Mean latency",
            "≡ replay",
        ]);
        for (name, r, ok) in [
            ("static", &self.static_report, self.matches_replay_static),
            (
                "adaptive",
                &self.adaptive_report,
                self.matches_replay_adaptive,
            ),
        ] {
            t.add_row([
                name.to_string(),
                r.detections.len().to_string(),
                fmt_catch_rate(r.catch_rate()),
                r.false_positives.to_string(),
                format!("{:.0}h", r.mean_latency_h),
                if ok { "yes".into() } else { "NO".into() },
            ]);
        }
        format!(
            "Sharded serving replay — {} shards, {}h epochs{}, byte-compared to the \
             sequential engine\n\n{}",
            self.shards,
            self.epoch_hours,
            if self.persisted { ", persisted" } else { "" },
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn sharded_run_matches_sequential_replay() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let spec = RunSpec::builder().scale(Scale::Tiny).build();
        let r = run(&ctx, &spec);
        assert!(r.matches_replay_static);
        assert!(r.matches_replay_adaptive);
        assert!(r.shards >= 1);
        assert!(r.render().contains("Sharded serving replay"));
    }

    /// The observed run must produce the identical report, and its
    /// logical metrics must agree between the sharded engine and the
    /// sequential oracle on the shared keys.
    #[test]
    fn observed_run_matches_and_aligns_engines() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let spec = RunSpec::builder().scale(Scale::Tiny).shards(2).build();
        let (r, snap) = run_observed(&ctx, &spec, &|| 0.0);
        assert!(r.matches_replay_static && r.matches_replay_adaptive);
        for variant in ["static", "adaptive"] {
            for key in [
                "events_processed",
                "checks_run",
                "detections",
                "features_computed",
                "feedback_applied",
                "audits_sampled",
            ] {
                let serve_v = snap.logical.get(&format!("serve.{variant}.{key}"));
                let replay_v = snap.logical.get(&format!("replay.{variant}.{key}"));
                assert!(serve_v.is_some(), "missing serve.{variant}.{key}");
                assert_eq!(serve_v, replay_v, "engines disagree on {variant}.{key}");
            }
        }
    }

    /// `--store DIR` must be report-transparent: a cold persisted run
    /// matches the sequential replay, and a second run over the same
    /// directory (pure warm restart) produces the identical bytes.
    #[test]
    fn persisted_run_is_transparent_and_warm_restarts() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let dir = std::env::temp_dir().join(format!(
            "sybil-repro-serve-store-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = RunSpec::builder()
            .scale(Scale::Tiny)
            .shards(2)
            .store_dir(&dir)
            .build();
        let cold = run(&ctx, &spec);
        assert!(cold.persisted);
        assert!(cold.matches_replay_static && cold.matches_replay_adaptive);
        assert!(cold.render().contains("persisted"));
        let warm = run(&ctx, &spec);
        assert_eq!(
            serde_json::to_string(&cold).unwrap(),
            serde_json::to_string(&warm).unwrap(),
            "warm restart over the finished store diverged"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn catch_rate_formatter_handles_nan() {
        assert_eq!(fmt_catch_rate(f64::NAN), "n/a");
        assert_eq!(fmt_catch_rate(0.5), "50%");
    }
}
