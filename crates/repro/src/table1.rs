//! Table 1 — SVM vs. threshold classifier on the ground-truth sample.
//!
//! Paper protocol: 1000 + 1000 verified accounts, 5-fold cross-validation.
//! Both classifiers land around 99% per-class accuracy; the point is that
//! the cheap threshold rule matches the SVM.

use crate::fig1::ground_truth_sample;
use crate::scenario::Ctx;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sybil_core::eval::{cross_validate, ConfusionMatrix};
use sybil_core::svm::kernel::KernelSvmParams;
use sybil_core::{KernelSvm, ThresholdClassifier};
use sybil_stats::table::Table;

/// Result of the Table 1 experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1 {
    /// Sample size per class actually used.
    pub per_class: usize,
    /// Cross-validated confusion matrix of the RBF SVM.
    pub svm: ConfusionMatrix,
    /// Cross-validated confusion matrix of the calibrated threshold rule.
    pub threshold: ConfusionMatrix,
    /// The thresholds the final calibration chose (for the record).
    pub example_rule: ThresholdClassifier,
}

/// Run the experiment with `folds`-fold cross-validation.
pub fn run(ctx: &Ctx, per_class: usize, folds: usize) -> Table1 {
    let mut ds = ground_truth_sample(ctx, per_class);
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x7AB1E);
    ds.shuffle(&mut rng);
    let svm_params = KernelSvmParams::default();
    let svm = cross_validate(&ds, folds, |train| {
        KernelSvm::train_features(&train.features, &train.labels, &svm_params)
    });
    let threshold = cross_validate(&ds, folds, ThresholdClassifier::calibrate);
    let example_rule = ThresholdClassifier::calibrate(&ds);
    Table1 {
        per_class: ds.num_sybil(),
        svm,
        threshold,
        example_rule,
    }
}

impl Table1 {
    /// Render in the paper's row/column layout.
    pub fn render(&self) -> String {
        let pct = |x: f64| format!("{:.2}%", 100.0 * x);
        let mut t = Table::new([
            "",
            "SVM: Sybil",
            "SVM: Non-Sybil",
            "Thr: Sybil",
            "Thr: Non-Sybil",
        ]);
        t.add_row([
            "True Sybil".to_string(),
            pct(self.svm.sybil_recall()),
            pct(1.0 - self.svm.sybil_recall()),
            pct(self.threshold.sybil_recall()),
            pct(1.0 - self.threshold.sybil_recall()),
        ]);
        t.add_row([
            "True Non-Sybil".to_string(),
            pct(self.svm.false_positive_rate()),
            pct(self.svm.normal_recall()),
            pct(self.threshold.false_positive_rate()),
            pct(self.threshold.normal_recall()),
        ]);
        let mut out = String::from(
            "Table 1 — classifier performance (5-fold CV; paper: both ≈ 99%/99%)\n\n",
        );
        out.push_str(&t.render());
        out.push_str(&format!(
            "\ncalibrated rule on full sample: ratio < {:.2} ∧ freq > {:.1} ∧ cc < {}\n",
            self.example_rule.max_out_ratio,
            self.example_rule.min_freq,
            if self.example_rule.max_cc.is_finite() {
                format!("{:.3}", self.example_rule.max_cc)
            } else {
                "(disabled)".into()
            }
        ));
        out.push_str(&format!(
            "accuracies: SVM {:.2}%, threshold {:.2}%\n",
            100.0 * self.svm.accuracy(),
            100.0 * self.threshold.accuracy()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn both_classifiers_are_accurate() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let t = run(&ctx, 50, 5);
        assert!(
            t.svm.accuracy() > 0.88,
            "svm accuracy {:.3}",
            t.svm.accuracy()
        );
        assert!(
            t.threshold.accuracy() > 0.85,
            "threshold accuracy {:.3}",
            t.threshold.accuracy()
        );
        // The paper's headline: the threshold rule keeps up with the SVM.
        assert!(t.threshold.accuracy() > t.svm.accuracy() - 0.10);
        assert!(t.render().contains("Table 1"));
    }
}
