//! Mixing-time analysis — extension experiment for §3.1.
//!
//! Every graph-based defense assumes (a) the honest region mixes fast and
//! (b) the Sybil region is separated by a slow-mixing bottleneck. We
//! measure both halves: the spectral gap of the lazy random walk, and the
//! empirical probability that a short walk started inside the Sybil set
//! *escapes* it. In the wild topology the Sybil set has no bottleneck at
//! all (escape ≈ 1 in a handful of steps); the injected cluster is the
//! textbook slow-mixing pocket.

use crate::scenario::Ctx;
use osn_graph::{spectral, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use sybil_defense::common::injected_cluster_graph;
use sybil_stats::table::Table;

/// Result of the mixing experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mixing {
    /// Spectral gap of the wild simulated graph.
    pub wild_gap: f64,
    /// Spectral gap of the injected-cluster graph.
    pub injected_gap: f64,
    /// Escape probability of 8-step walks from the wild Sybil set.
    pub wild_escape: f64,
    /// Escape probability of 8-step walks from the injected Sybil region.
    pub injected_escape: f64,
    /// Escape probability from a same-size random honest set (baseline).
    pub honest_escape: f64,
}

/// Run the experiment.
pub fn run(ctx: &Ctx) -> Mixing {
    let g = &ctx.out.graph;
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x313);
    let wild_gap = spectral::spectral_gap(g, 60, ctx.seed ^ 1).unwrap_or(0.0);
    let wild_escape = spectral::escape_probability(g, &ctx.sybils, 8, 4000, &mut rng)
        .unwrap_or(0.0);
    // Same-size honest baseline.
    let mut honest = ctx.normals.clone();
    honest.shuffle(&mut rng);
    honest.truncate(ctx.sybils.len().max(1));
    let honest_escape =
        spectral::escape_probability(g, &honest, 8, 4000, &mut rng).unwrap_or(0.0);
    // Injected cluster graph.
    let (inj, first_sybil) =
        injected_cluster_graph(3000, 300, 12, &mut StdRng::seed_from_u64(ctx.seed ^ 0x1213));
    let inj_set: Vec<NodeId> = (0..300u32).map(|i| NodeId(first_sybil.0 + i)).collect();
    let injected_gap = spectral::spectral_gap(&inj, 60, ctx.seed ^ 2).unwrap_or(0.0);
    let injected_escape =
        spectral::escape_probability(&inj, &inj_set, 8, 4000, &mut rng).unwrap_or(0.0);
    Mixing {
        wild_gap,
        injected_gap,
        wild_escape,
        injected_escape,
        honest_escape,
    }
}

impl Mixing {
    /// Render the comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new(["Quantity", "Wild graph", "Injected-cluster graph"]);
        t.add_row([
            "spectral gap (lazy walk)".to_string(),
            format!("{:.4}", self.wild_gap),
            format!("{:.4}", self.injected_gap),
        ]);
        t.add_row([
            "P(8-step walk escapes Sybil set)".to_string(),
            format!("{:.2}", self.wild_escape),
            format!("{:.2}", self.injected_escape),
        ]);
        let mut out = String::from(
            "Mixing analysis — the fast-mixing assumption behind §3.1 defenses\n\n",
        );
        out.push_str(&t.render());
        out.push_str(&format!(
            "\nhonest-set baseline escape: {:.2}. Wild Sybils escape like honest users \
             (no bottleneck to detect); the injected region is the slow-mixing pocket \
             the defenses were built for.\n",
            self.honest_escape
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn wild_sybils_escape_injected_do_not() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let m = run(&ctx);
        assert!(
            m.wild_escape > m.injected_escape + 0.3,
            "wild {} vs injected {}",
            m.wild_escape,
            m.injected_escape
        );
        // Wild Sybils behave like honest users within noise.
        assert!((m.wild_escape - m.honest_escape).abs() < 0.2);
        assert!(m.render().contains("Mixing analysis"));
    }
}
