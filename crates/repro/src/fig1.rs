//! Figure 1 — average friend-invitation frequency over 1-hour and
//! 400-hour windows (CDFs for Sybils vs. normal users).
//!
//! Paper findings reproduced here: Sybil curves sit far right of normal
//! curves at both time scales; "accounts sending more than 20 invites per
//! time interval are Sybils"; a 40 requests/hour cut catches ≈70% of
//! Sybils with no false positives.

use crate::scenario::Ctx;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sybil_features::dataset::GroundTruth;
use sybil_features::FeatureExtractor;
use sybil_stats::{ascii, Cdf};

/// Result of the Fig. 1 experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig1 {
    /// Sample size per class.
    pub per_class: usize,
    /// Sybil 1-hour frequencies.
    pub sybil_1h: Vec<f64>,
    /// Normal 1-hour frequencies.
    pub normal_1h: Vec<f64>,
    /// Sybil 400-hour frequencies.
    pub sybil_400h: Vec<f64>,
    /// Normal 400-hour frequencies.
    pub normal_400h: Vec<f64>,
    /// Fraction of Sybils above 40 invitations/hour.
    pub sybils_above_40_per_h: f64,
    /// Fraction of normal users above 40 invitations/hour (the paper
    /// reports zero — no false positives at that cut).
    pub normals_above_40_per_h: f64,
}

/// Draw the ground-truth sample used by Figs. 1–4 and Table 1.
pub fn ground_truth_sample(ctx: &Ctx, per_class: usize) -> GroundTruth {
    let fx = FeatureExtractor::new(&ctx.out);
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0xF16);
    GroundTruth::sample(&fx, per_class, &mut rng)
}

/// Run the experiment.
pub fn run(ctx: &Ctx, per_class: usize) -> Fig1 {
    let ds = ground_truth_sample(ctx, per_class);
    let mut r = Fig1 {
        per_class,
        sybil_1h: Vec::new(),
        normal_1h: Vec::new(),
        sybil_400h: Vec::new(),
        normal_400h: Vec::new(),
        sybils_above_40_per_h: 0.0,
        normals_above_40_per_h: 0.0,
    };
    for (f, &label) in ds.features.iter().zip(&ds.labels) {
        if label {
            r.sybil_1h.push(f.inv_freq_1h);
            r.sybil_400h.push(f.inv_freq_400h);
        } else {
            r.normal_1h.push(f.inv_freq_1h);
            r.normal_400h.push(f.inv_freq_400h);
        }
    }
    let above = |v: &[f64], cut: f64| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().filter(|&&x| x > cut).count() as f64 / v.len() as f64
        }
    };
    r.sybils_above_40_per_h = above(&r.sybil_1h, 40.0);
    r.normals_above_40_per_h = above(&r.normal_1h, 40.0);
    r
}

impl Fig1 {
    /// Render the two CDF charts and the threshold summary.
    pub fn render(&self) -> String {
        let s1 = Cdf::new(self.sybil_1h.clone());
        let n1 = Cdf::new(self.normal_1h.clone());
        let s4 = Cdf::new(self.sybil_400h.clone());
        let n4 = Cdf::new(self.normal_400h.clone());
        let mut out = String::new();
        out.push_str("Figure 1 — average invitations per active window\n\n");
        out.push_str("1-hour windows:\n");
        out.push_str(&ascii::plot_cdfs(
            &[("Normal 1h", &n1), ("Sybil 1h", &s1)],
            70,
            14,
            false,
        ));
        out.push_str("\n400-hour windows:\n");
        out.push_str(&ascii::plot_cdfs(
            &[("Normal 400h", &n4), ("Sybil 400h", &s4)],
            70,
            14,
            false,
        ));
        out.push_str(&format!(
            "\nmedians: normal 1h {:.1}, sybil 1h {:.1}; normal 400h {:.1}, sybil 400h {:.1}\n",
            n1.median().unwrap_or(0.0),
            s1.median().unwrap_or(0.0),
            n4.median().unwrap_or(0.0),
            s4.median().unwrap_or(0.0),
        ));
        out.push_str(&format!(
            "40/hour cut: catches {:.0}% of Sybils at {:.2}% normal false positives \
             (paper: ≈70% at 0%)\n",
            100.0 * self.sybils_above_40_per_h,
            100.0 * self.normals_above_40_per_h,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn frequency_shapes_hold_at_tiny_scale() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let fig = run(&ctx, 50);
        assert!(!fig.sybil_1h.is_empty() && !fig.normal_1h.is_empty());
        let med = |v: &[f64]| Cdf::new(v.to_vec()).median().unwrap_or(0.0);
        // Sybils invite far more per active window at both scales.
        assert!(
            med(&fig.sybil_1h) > 3.0 * med(&fig.normal_1h).max(0.5),
            "1h medians: sybil {} normal {}",
            med(&fig.sybil_1h),
            med(&fig.normal_1h)
        );
        assert!(med(&fig.sybil_400h) > med(&fig.normal_400h));
        // Normal users essentially never exceed 40/hour.
        assert!(fig.normals_above_40_per_h < 0.02);
        let text = fig.render();
        assert!(text.contains("Figure 1"));
        assert!(text.contains("40/hour cut"));
    }
}
