//! Typed run configuration for the `repro` binary.
//!
//! The binary used to parse `std::env::args` with a hand-rolled loop and
//! bail with `process::exit` mid-parse; experiments then took loose
//! `per_class`/`suspects`/shard parameters re-derived at every call
//! site. [`RunSpec`] replaces both: one typed spec built either by
//! [`parse_args`] (CLI) or by [`RunSpec::builder`] (tests, benches),
//! carrying every knob a run needs — scale, seed, output directory,
//! experiment set, shard count, thread override, metrics directory — plus
//! the scale-derived parameters (`per_class`, `suspects`,
//! `reach_trials`) that used to live as match blocks in `main`.
//!
//! Parsing is total: every failure is a [`CliError`] value (no exits, no
//! panics), and the `--help` text is rendered from the same flag table
//! the parser consumes, so the two cannot drift apart.

use crate::scenario::Scale;
use std::path::PathBuf;

/// Every experiment name the binary accepts, in default execution order.
pub const ALL_EXPERIMENTS: [&str; 20] = [
    "fig1", "fig2", "fig3", "fig4", "table1", "fig5", "fig6", "table2", "fig7", "fig8", "fig9",
    "table3", "zoo", "mixing", "deployment", "serve", "chaos", "restart", "reach", "defenses",
];

/// One CLI flag: spelling, value placeholder (`None` for bare flags),
/// and help text. [`help`] renders this table; [`parse_args`] consumes
/// it, so the documentation is the implementation.
struct Flag {
    name: &'static str,
    value: Option<&'static str>,
    help: &'static str,
}

const FLAGS: [Flag; 9] = [
    Flag {
        name: "--scale",
        value: Some("tiny|small|paper|xl"),
        help: "simulation scale (default small; xl = 1M synthetic accounts, serve only)",
    },
    Flag {
        name: "--seed",
        value: Some("N"),
        help: "simulation seed (default 1)",
    },
    Flag {
        name: "--out",
        value: Some("DIR"),
        help: "output directory (default results/)",
    },
    Flag {
        name: "--shards",
        value: Some("N"),
        help: "serving-engine shard count; 0 = RENREN_THREADS (default 0)",
    },
    Flag {
        name: "--threads",
        value: Some("N"),
        help: "worker thread count (sets RENREN_THREADS for this run)",
    },
    Flag {
        name: "--faults",
        value: Some("FILE"),
        help: "chaos experiment: load the fault schedule from FILE (JSON) instead of deriving it from --seed",
    },
    Flag {
        name: "--metrics",
        value: Some("DIR"),
        help: "write a deterministic metrics.json under DIR",
    },
    Flag {
        name: "--store",
        value: Some("DIR"),
        help: "persist serving state under DIR (versioned checkpoints + epoch journal; reruns warm-restart from it)",
    },
    Flag {
        name: "--help",
        value: None,
        help: "print this help",
    },
];

/// A fully-resolved run configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSpec {
    /// Simulation scale.
    pub scale: Scale,
    /// Simulation seed.
    pub seed: u64,
    /// Directory results are written under (a `{scale}-seed{seed}`
    /// subdirectory is appended per run).
    pub out_dir: PathBuf,
    /// Experiments to run, validated against [`ALL_EXPERIMENTS`], in
    /// execution order.
    pub experiments: Vec<String>,
    /// Serving-engine shard count; 0 means "ambient" (`RENREN_THREADS`).
    pub shards: usize,
    /// Worker-thread override; `Some(n)` sets `RENREN_THREADS=n` before
    /// the run.
    pub threads: Option<usize>,
    /// When set, a deterministic `metrics.json` is written under this
    /// directory.
    pub metrics_dir: Option<PathBuf>,
    /// Fault-schedule file for the `chaos` experiment; `None` derives a
    /// schedule from the seed.
    pub faults_file: Option<PathBuf>,
    /// When set, the `serve` experiment persists its state under this
    /// directory (checkpoints + journal) and warm-restarts from whatever
    /// a previous run left there; the `restart` drill stores under it
    /// too (in its own subdirectory, which it clears).
    pub store_dir: Option<PathBuf>,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            scale: Scale::Small,
            seed: 1,
            out_dir: PathBuf::from("results"),
            experiments: ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect(),
            shards: 0,
            threads: None,
            metrics_dir: None,
            faults_file: None,
            store_dir: None,
        }
    }
}

impl RunSpec {
    /// Start building a spec from the defaults.
    pub fn builder() -> RunSpecBuilder {
        RunSpecBuilder {
            spec: RunSpec::default(),
        }
    }

    /// Ground-truth sample size per class for feature/classifier
    /// experiments, scaled so every tier finishes in its time budget.
    pub fn per_class(&self) -> usize {
        match self.scale {
            Scale::Tiny => 50,
            Scale::Small => 250,
            Scale::Paper | Scale::Xl => 1000,
        }
    }

    /// Suspects per class for the graph-defense evaluation.
    pub fn suspects(&self) -> usize {
        match self.scale {
            Scale::Tiny => 15,
            Scale::Small => 30,
            Scale::Paper | Scale::Xl => 40,
        }
    }

    /// Cascade trials for the spam-reach experiment (fewer at paper
    /// scale and above, where each trial is large).
    pub fn reach_trials(&self) -> usize {
        if matches!(self.scale, Scale::Paper | Scale::Xl) {
            20
        } else {
            50
        }
    }

    /// The per-run output directory: `{out_dir}/{scale}-seed{seed}`.
    pub fn run_dir(&self) -> PathBuf {
        self.out_dir.join(format!("{}-seed{}", self.scale, self.seed))
    }
}

/// Infallible setters over a [`RunSpec`]; experiment names are the one
/// thing validated here (the only builder input with an invalid space).
pub struct RunSpecBuilder {
    spec: RunSpec,
}

impl RunSpecBuilder {
    /// Set the simulation scale.
    pub fn scale(mut self, scale: Scale) -> Self {
        self.spec.scale = scale;
        self
    }

    /// Set the simulation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Set the output directory.
    pub fn out_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spec.out_dir = dir.into();
        self
    }

    /// Replace the experiment set. Unknown names are rejected.
    pub fn experiments<I, S>(mut self, names: I) -> Result<Self, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.spec.experiments = validate_experiments(names.into_iter().map(Into::into))?;
        Ok(self)
    }

    /// Set the serving-engine shard count (0 = ambient).
    pub fn shards(mut self, shards: usize) -> Self {
        self.spec.shards = shards;
        self
    }

    /// Override the worker thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.spec.threads = Some(threads);
        self
    }

    /// Enable metrics export under `dir`.
    pub fn metrics_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spec.metrics_dir = Some(dir.into());
        self
    }

    /// Load the chaos fault schedule from `file`.
    pub fn faults_file(mut self, file: impl Into<PathBuf>) -> Self {
        self.spec.faults_file = Some(file.into());
        self
    }

    /// Persist serving state under `dir`.
    pub fn store_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spec.store_dir = Some(dir.into());
        self
    }

    /// Finish building.
    pub fn build(self) -> RunSpec {
        self.spec
    }
}

/// Why the command line could not be turned into a [`RunSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// `--help`/`-h` was given; callers print [`help`] and exit 0.
    HelpRequested,
    /// A flag the table doesn't know.
    UnknownFlag(String),
    /// A flag that needs a value was last on the line.
    MissingValue(&'static str),
    /// A flag's value didn't parse.
    InvalidValue {
        /// The flag.
        flag: &'static str,
        /// What was given.
        value: String,
        /// What would have been accepted.
        expected: &'static str,
    },
    /// A positional argument that names no known experiment.
    UnknownExperiment(String),
    /// `--scale xl` was combined with an experiment other than `serve`.
    /// The xl dataset comes from the synthetic scale generator, and the
    /// figure/table experiments assume simulator-shaped ground truth.
    XlServeOnly(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::HelpRequested => write!(f, "help requested"),
            CliError::UnknownFlag(flag) => write!(f, "unknown flag {flag:?}"),
            CliError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            CliError::InvalidValue {
                flag,
                value,
                expected,
            } => write!(f, "{flag}: invalid value {value:?} (expected {expected})"),
            CliError::UnknownExperiment(name) => {
                write!(f, "unknown experiment {name:?}; see --help for the list")
            }
            CliError::XlServeOnly(name) => {
                write!(
                    f,
                    "--scale xl runs the serving engine only; {name:?} needs the \
                     simulated dataset (pass `serve`, or drop the experiment list)"
                )
            }
        }
    }
}

impl std::error::Error for CliError {}

fn validate_experiments(
    names: impl Iterator<Item = String>,
) -> Result<Vec<String>, CliError> {
    let mut picked: Vec<String> = Vec::new();
    for name in names {
        if name == "all" {
            return Ok(ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect());
        }
        if !ALL_EXPERIMENTS.contains(&name.as_str()) {
            return Err(CliError::UnknownExperiment(name));
        }
        picked.push(name);
    }
    if picked.is_empty() {
        picked = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    Ok(picked)
}

/// Parse CLI arguments (without the program name) into a [`RunSpec`].
pub fn parse_args<I>(args: I) -> Result<RunSpec, CliError>
where
    I: IntoIterator<Item = String>,
{
    let mut spec = RunSpec::default();
    let mut positionals: Vec<String> = Vec::new();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => return Err(CliError::HelpRequested),
            "--scale" => {
                let v = args.next().ok_or(CliError::MissingValue("--scale"))?;
                spec.scale = Scale::parse(&v).ok_or(CliError::InvalidValue {
                    flag: "--scale",
                    value: v,
                    expected: "tiny|small|paper|xl",
                })?;
            }
            "--seed" => {
                let v = args.next().ok_or(CliError::MissingValue("--seed"))?;
                spec.seed = v.parse().map_err(|_| CliError::InvalidValue {
                    flag: "--seed",
                    value: v,
                    expected: "an unsigned integer",
                })?;
            }
            "--out" => {
                let v = args.next().ok_or(CliError::MissingValue("--out"))?;
                spec.out_dir = PathBuf::from(v);
            }
            "--shards" => {
                let v = args.next().ok_or(CliError::MissingValue("--shards"))?;
                spec.shards = v.parse().map_err(|_| CliError::InvalidValue {
                    flag: "--shards",
                    value: v,
                    expected: "an unsigned integer (0 = ambient)",
                })?;
            }
            "--threads" => {
                let v = args.next().ok_or(CliError::MissingValue("--threads"))?;
                let n: usize = v.parse().map_err(|_| CliError::InvalidValue {
                    flag: "--threads",
                    value: v.clone(),
                    expected: "a positive integer",
                })?;
                if n == 0 {
                    return Err(CliError::InvalidValue {
                        flag: "--threads",
                        value: v,
                        expected: "a positive integer",
                    });
                }
                spec.threads = Some(n);
            }
            "--metrics" => {
                let v = args.next().ok_or(CliError::MissingValue("--metrics"))?;
                spec.metrics_dir = Some(PathBuf::from(v));
            }
            "--faults" => {
                let v = args.next().ok_or(CliError::MissingValue("--faults"))?;
                spec.faults_file = Some(PathBuf::from(v));
            }
            "--store" => {
                let v = args.next().ok_or(CliError::MissingValue("--store"))?;
                spec.store_dir = Some(PathBuf::from(v));
            }
            other if other.starts_with('-') => {
                return Err(CliError::UnknownFlag(other.to_string()));
            }
            other => positionals.push(other.to_string()),
        }
    }
    let defaulted = positionals.is_empty();
    spec.experiments = validate_experiments(positionals.into_iter())?;
    if spec.scale == Scale::Xl {
        // The xl workload exists to exercise the serving engine at a
        // million accounts; nothing else runs there. An explicit
        // non-serve request is an error, while the default "all" set
        // narrows to `serve` silently.
        if defaulted {
            spec.experiments = vec!["serve".to_string()];
        } else if let Some(bad) = spec.experiments.iter().find(|e| e.as_str() != "serve") {
            return Err(CliError::XlServeOnly(bad.clone()));
        }
    }
    Ok(spec)
}

/// The `--help` text, rendered from the flag table and experiment list.
pub fn help() -> String {
    let mut s = String::from(
        "usage: repro [FLAGS] [EXPERIMENTS...]\n\
         \n\
         Regenerate the paper's tables and figures from one simulated run.\n\
         \n\
         flags:\n",
    );
    let spellings: Vec<String> = FLAGS
        .iter()
        .map(|f| match f.value {
            Some(v) => format!("{} {}", f.name, v),
            None => f.name.to_string(),
        })
        .collect();
    let width = spellings.iter().map(|s| s.len()).max().unwrap_or(0);
    for (f, spelled) in FLAGS.iter().zip(&spellings) {
        s.push_str(&format!("  {spelled:width$}  {}\n", f.help));
    }
    s.push_str("\nexperiments (default: all):\n  ");
    s.push_str(&ALL_EXPERIMENTS.join(" "));
    s.push_str("\n  all\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<RunSpec, CliError> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_args() {
        let spec = parse(&[]).unwrap();
        assert_eq!(spec, RunSpec::default());
        assert_eq!(spec.experiments.len(), ALL_EXPERIMENTS.len());
    }

    #[test]
    fn every_flag_round_trips() {
        let spec = parse(&[
            "--scale", "tiny", "--seed", "7", "--out", "tmp/x", "--shards", "4", "--threads",
            "8", "--metrics", "tmp/m", "--faults", "tmp/f.json", "--store", "tmp/s", "serve",
            "deployment",
        ])
        .unwrap();
        assert_eq!(
            spec,
            RunSpec::builder()
                .scale(Scale::Tiny)
                .seed(7)
                .out_dir("tmp/x")
                .shards(4)
                .threads(8)
                .metrics_dir("tmp/m")
                .faults_file("tmp/f.json")
                .store_dir("tmp/s")
                .experiments(["serve", "deployment"])
                .unwrap()
                .build()
        );
        assert_eq!(spec.run_dir(), PathBuf::from("tmp/x/tiny-seed7"));
    }

    #[test]
    fn all_expands_to_every_experiment() {
        let spec = parse(&["fig1", "all"]).unwrap();
        assert_eq!(spec.experiments, RunSpec::default().experiments);
    }

    #[test]
    fn unknown_flag_and_experiment_are_rejected() {
        assert_eq!(
            parse(&["--frobnicate"]),
            Err(CliError::UnknownFlag("--frobnicate".into()))
        );
        assert_eq!(
            parse(&["fig42"]),
            Err(CliError::UnknownExperiment("fig42".into()))
        );
    }

    #[test]
    fn missing_and_invalid_values_are_diagnosed() {
        assert_eq!(parse(&["--seed"]), Err(CliError::MissingValue("--seed")));
        assert!(matches!(
            parse(&["--scale", "huge"]),
            Err(CliError::InvalidValue { flag: "--scale", .. })
        ));
        assert!(matches!(
            parse(&["--threads", "0"]),
            Err(CliError::InvalidValue { flag: "--threads", .. })
        ));
        assert!(matches!(
            parse(&["--seed", "x"]),
            Err(CliError::InvalidValue { flag: "--seed", .. })
        ));
    }

    #[test]
    fn help_flag_short_circuits() {
        assert_eq!(parse(&["-h"]), Err(CliError::HelpRequested));
        assert_eq!(
            parse(&["--help", "--frobnicate"]),
            Err(CliError::HelpRequested)
        );
    }

    /// The help text is rendered from the flag table, so every flag and
    /// every experiment must appear in it (the golden shape, without
    /// pinning exact column widths).
    #[test]
    fn help_covers_every_flag_and_experiment() {
        let h = help();
        assert!(h.starts_with("usage: repro"));
        for f in &FLAGS {
            assert!(h.contains(f.name), "help text lost {}", f.name);
        }
        for e in ALL_EXPERIMENTS {
            assert!(h.contains(e), "help text lost experiment {e}");
        }
        assert!(h.contains("all"));
    }

    #[test]
    fn derived_parameters_follow_scale() {
        let tiny = RunSpec::builder().scale(Scale::Tiny).build();
        let paper = RunSpec::builder().scale(Scale::Paper).build();
        let xl = RunSpec::builder().scale(Scale::Xl).build();
        assert_eq!((tiny.per_class(), tiny.suspects(), tiny.reach_trials()), (50, 15, 50));
        assert_eq!(
            (paper.per_class(), paper.suspects(), paper.reach_trials()),
            (1000, 40, 20)
        );
        assert_eq!((xl.per_class(), xl.suspects(), xl.reach_trials()), (1000, 40, 20));
    }

    /// `--scale xl` narrows the default experiment set to `serve` and
    /// rejects explicit requests for anything else.
    #[test]
    fn xl_is_serve_only() {
        let spec = parse(&["--scale", "xl"]).unwrap();
        assert_eq!(spec.scale, Scale::Xl);
        assert_eq!(spec.experiments, vec!["serve".to_string()]);
        let spec = parse(&["--scale", "xl", "serve"]).unwrap();
        assert_eq!(spec.experiments, vec!["serve".to_string()]);
        assert_eq!(
            parse(&["--scale", "xl", "fig1"]),
            Err(CliError::XlServeOnly("fig1".into()))
        );
        // `all` expands to the full list, which includes non-serve names.
        assert!(matches!(
            parse(&["--scale", "xl", "all"]),
            Err(CliError::XlServeOnly(_))
        ));
    }

    #[test]
    fn builder_rejects_unknown_experiments() {
        assert_eq!(
            RunSpec::builder().experiments(["nope"]).err(),
            Some(CliError::UnknownExperiment("nope".into()))
        );
    }
}
