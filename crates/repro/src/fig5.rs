//! Figure 5 — degree distribution of all Sybil accounts: all edges vs.
//! edges to other Sybils.
//!
//! Paper headline (§3.2): the all-edges distribution looks like any OSN's,
//! but only ~20% of Sybils have even one edge to another Sybil — the vast
//! majority integrate into the normal graph and never cluster.

use crate::scenario::Ctx;
use osn_graph::degree;
use serde::{Deserialize, Serialize};
use sybil_stats::{ascii, Cdf};

/// Result of the Fig. 5 experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig5 {
    /// Total degree of every Sybil.
    pub all_degrees: Vec<usize>,
    /// Sybil-edge-only degree of every Sybil.
    pub sybil_degrees: Vec<usize>,
    /// Fraction of Sybils with ≥ 1 Sybil edge (paper ≈ 0.20).
    pub connected_fraction: f64,
}

/// Run the experiment.
pub fn run(ctx: &Ctx) -> Fig5 {
    let all_degrees = degree::degrees_of(&ctx.out.graph, &ctx.sybils);
    let sybil_degrees =
        degree::restricted_degrees(&ctx.out.graph, &ctx.sybils, |n| ctx.out.is_sybil(n));
    let connected = sybil_degrees.iter().filter(|&&d| d > 0).count();
    let connected_fraction = if ctx.sybils.is_empty() {
        0.0
    } else {
        connected as f64 / ctx.sybils.len() as f64
    };
    Fig5 {
        all_degrees,
        sybil_degrees,
        connected_fraction,
    }
}

impl Fig5 {
    /// Render the two degree CDFs plus the connectivity headline.
    pub fn render(&self) -> String {
        let all = Cdf::from_iter(self.all_degrees.iter().map(|&d| d as f64));
        let sy = Cdf::from_iter(self.sybil_degrees.iter().map(|&d| d as f64));
        let mut out = String::from("Figure 5 — degree of Sybil accounts (log x)\n\n");
        out.push_str(&ascii::plot_cdfs(
            &[("Sybil Edges", &sy), ("All Edges", &all)],
            70,
            14,
            true,
        ));
        out.push_str(&format!(
            "\nSybils with ≥1 Sybil edge: {:.1}% (paper: ≈20%; >70% isolated)\n",
            100.0 * self.connected_fraction
        ));
        out.push_str(&format!(
            "degree medians: all {:.0}, sybil-only {:.0}\n",
            all.median().unwrap_or(0.0),
            sy.median().unwrap_or(0.0)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn most_sybils_have_no_sybil_edges() {
        let ctx = Ctx::build(Scale::Small, 1);
        let fig = run(&ctx);
        assert!(
            fig.connected_fraction < 0.6,
            "connected fraction {}",
            fig.connected_fraction
        );
        // All-edges degrees dominate sybil-only degrees pointwise.
        for (a, s) in fig.all_degrees.iter().zip(&fig.sybil_degrees) {
            assert!(a >= s);
        }
        assert!(fig.render().contains("Figure 5"));
    }
}
