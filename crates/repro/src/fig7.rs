//! Figure 7 — scatter of attack edges vs. Sybil edges per component.
//!
//! Paper: every component sits **above** the `y = x` diagonal — more
//! attack edges than Sybil edges — so none meets the small-cut premise of
//! community-based Sybil detection.

use crate::scenario::Ctx;
use osn_graph::metrics;
use serde::{Deserialize, Serialize};
use sybil_stats::ascii;

/// Result of the Fig. 7 experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig7 {
    /// `(sybil_edges, attack_edges)` per component.
    pub points: Vec<(usize, usize)>,
    /// Fraction of components strictly above `y = x` (paper: 1.0).
    pub above_diagonal: f64,
}

/// Run the experiment.
pub fn run(ctx: &Ctx) -> Fig7 {
    let points: Vec<(usize, usize)> = ctx
        .sybil_components
        .iter()
        .map(|c| {
            let s = metrics::cut_stats(&ctx.out.graph, &c.nodes);
            (s.internal_edges, s.crossing_edges)
        })
        .collect();
    let above = points.iter().filter(|&&(s, a)| a > s).count();
    let above_diagonal = if points.is_empty() {
        0.0
    } else {
        above as f64 / points.len() as f64
    };
    Fig7 {
        points,
        above_diagonal,
    }
}

impl Fig7 {
    /// Render the log–log scatter with the diagonal.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .points
            .iter()
            .map(|&(s, a)| (s.max(1) as f64, a.max(1) as f64))
            .collect();
        let mut out = String::from("Figure 7 — Sybil edges (x) vs attack edges (y) per component\n\n");
        out.push_str(&ascii::scatter_loglog(&pts, 70, 20));
        out.push_str(&format!(
            "\ncomponents above y = x: {:.0}% (paper: 100%)\n",
            100.0 * self.above_diagonal
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn every_component_above_diagonal() {
        let ctx = Ctx::build(Scale::Small, 1);
        let fig = run(&ctx);
        assert!(!fig.points.is_empty());
        assert!(
            fig.above_diagonal >= 0.9,
            "fraction above diagonal: {}",
            fig.above_diagonal
        );
        assert!(fig.render().contains("Figure 7"));
    }
}
