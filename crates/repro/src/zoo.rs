//! Classifier zoo — extension experiment.
//!
//! Table 1 compares only the SVM and the threshold rule; §4 mentions the
//! Bayesian-filter and regression families used by prior OSN-spam work.
//! This experiment cross-validates all five classifiers on the same
//! ground-truth sample and adds ROC AUC, substantiating the paper's claim
//! that the *features* carry the detection power — every competent
//! classifier on top of them lands in the same place.

use crate::fig1::ground_truth_sample;
use crate::scenario::Ctx;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sybil_core::eval::{cross_validate, per_feature_auc, roc_curve, ConfusionMatrix};
use sybil_core::logistic::LogisticParams;
use sybil_core::svm::kernel::KernelSvmParams;
use sybil_core::svm::linear::LinearSvmParams;
use sybil_core::{
    KernelSvm, LinearSvm, LogisticRegression, NaiveBayes, ThresholdClassifier,
};
use sybil_stats::table::Table;

/// One classifier's cross-validated results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ZooRow {
    /// Classifier name.
    pub name: String,
    /// Aggregated held-out confusion matrix.
    pub matrix: ConfusionMatrix,
    /// ROC AUC on the full sample (classifier trained on the full sample;
    /// a ranking diagnostic, not a generalization estimate).
    pub auc: f64,
}

/// Result of the classifier-zoo experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Zoo {
    /// One row per classifier.
    pub rows: Vec<ZooRow>,
    /// Solo AUC of each behavioral feature (threshold-free importance).
    pub feature_auc: Vec<(String, f64)>,
}

/// Run the experiment.
pub fn run(ctx: &Ctx, per_class: usize, folds: usize) -> Zoo {
    let mut ds = ground_truth_sample(ctx, per_class);
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x200);
    ds.shuffle(&mut rng);
    let mut rows = Vec::new();

    let threshold = cross_validate(&ds, folds, ThresholdClassifier::calibrate);
    let full_thr = ThresholdClassifier::calibrate(&ds);
    rows.push(ZooRow {
        name: "threshold (paper)".into(),
        matrix: threshold,
        auc: roc_curve(&full_thr, &ds.features, &ds.labels).1,
    });

    let lp = LinearSvmParams::default();
    let linear = cross_validate(&ds, folds, |t| {
        LinearSvm::train_features(&t.features, &t.labels, &lp)
    });
    let full_lin = LinearSvm::train_features(&ds.features, &ds.labels, &lp);
    rows.push(ZooRow {
        name: "linear SVM (Pegasos)".into(),
        matrix: linear,
        auc: roc_curve(&full_lin, &ds.features, &ds.labels).1,
    });

    let kp = KernelSvmParams::default();
    let rbf = cross_validate(&ds, folds, |t| {
        KernelSvm::train_features(&t.features, &t.labels, &kp)
    });
    let full_rbf = KernelSvm::train_features(&ds.features, &ds.labels, &kp);
    rows.push(ZooRow {
        name: "RBF SVM (SMO)".into(),
        matrix: rbf,
        auc: roc_curve(&full_rbf, &ds.features, &ds.labels).1,
    });

    let nb = cross_validate(&ds, folds, |t| NaiveBayes::train(&t.features, &t.labels));
    let full_nb = NaiveBayes::train(&ds.features, &ds.labels);
    rows.push(ZooRow {
        name: "Gaussian naive Bayes".into(),
        matrix: nb,
        auc: roc_curve(&full_nb, &ds.features, &ds.labels).1,
    });

    let gp = LogisticParams::default();
    let lr = cross_validate(&ds, folds, |t| {
        LogisticRegression::train_features(&t.features, &t.labels, &gp)
    });
    let full_lr = LogisticRegression::train_features(&ds.features, &ds.labels, &gp);
    rows.push(ZooRow {
        name: "logistic regression".into(),
        matrix: lr,
        auc: roc_curve(&full_lr, &ds.features, &ds.labels).1,
    });

    let feature_auc = per_feature_auc(&ds.features, &ds.labels)
        .into_iter()
        .map(|(n, a)| (n.to_string(), a))
        .collect();
    Zoo { rows, feature_auc }
}

impl Zoo {
    /// Render the comparison table.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "Classifier",
            "Accuracy",
            "Sybil recall",
            "False pos.",
            "AUC",
        ]);
        for r in &self.rows {
            t.add_row([
                r.name.clone(),
                format!("{:.2}%", 100.0 * r.matrix.accuracy()),
                format!("{:.2}%", 100.0 * r.matrix.sybil_recall()),
                format!("{:.2}%", 100.0 * r.matrix.false_positive_rate()),
                format!("{:.4}", r.auc),
            ]);
        }
        let mut out = String::from(
            "Classifier zoo — 5-fold CV over the behavioral features (extension of Table 1)\n\n",
        );
        out.push_str(&t.render());
        out.push_str("\nper-feature solo AUC (0.5 = uninformative):\n");
        for (name, auc) in &self.feature_auc {
            out.push_str(&format!("  {name:24} {auc:.4}\n"));
        }
        out.push_str(
            "\nthe features do the work: every competent classifier lands within a point \
             of the paper's 99% (§2.3's argument for shipping the cheap threshold rule)\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn all_classifiers_competent() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let zoo = run(&ctx, 50, 5);
        assert_eq!(zoo.rows.len(), 5);
        assert_eq!(zoo.feature_auc.len(), 5);
        // The invitation-frequency features must be strongly informative.
        assert!(zoo.feature_auc[0].1 > 0.9, "freq1h auc {}", zoo.feature_auc[0].1);
        for r in &zoo.rows {
            assert!(
                r.matrix.accuracy() > 0.85,
                "{} accuracy {:.3}",
                r.name,
                r.matrix.accuracy()
            );
            assert!(r.auc > 0.9, "{} auc {:.3}", r.name, r.auc);
        }
        assert!(zoo.render().contains("Classifier zoo"));
    }
}
