//! Figure 4 — CDF of the clustering coefficient over each account's first
//! 50 friends.
//!
//! Paper: normal users average 0.0386, Sybils 0.0006 — orders of magnitude
//! apart, because Sybils befriend mutually-unacquainted strangers.
//!
//! Scale caveat (documented in EXPERIMENTS.md): in a 10⁴–10⁵-node
//! simulation the popular users Sybils target are measurably interlinked,
//! so the absolute gap is smaller than on 120M-user Renren; the *ordering*
//! (normal ≫ Sybil) is the reproduced shape.

use crate::fig1::ground_truth_sample;
use crate::scenario::Ctx;
use serde::{Deserialize, Serialize};
use sybil_stats::{ascii, Cdf, Summary};

/// Result of the Fig. 4 experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig4 {
    /// First-50 clustering coefficients of sampled Sybils.
    pub sybil: Vec<f64>,
    /// First-50 clustering coefficients of sampled normal users.
    pub normal: Vec<f64>,
    /// Mean Sybil cc (paper: 0.0006).
    pub sybil_mean: f64,
    /// Mean normal cc (paper: 0.0386).
    pub normal_mean: f64,
}

/// Run the experiment.
pub fn run(ctx: &Ctx, per_class: usize) -> Fig4 {
    let ds = ground_truth_sample(ctx, per_class);
    let mut sybil = Vec::new();
    let mut normal = Vec::new();
    for (f, &label) in ds.features.iter().zip(&ds.labels) {
        if label {
            sybil.push(f.clustering_coefficient);
        } else {
            normal.push(f.clustering_coefficient);
        }
    }
    Fig4 {
        sybil_mean: Summary::of(sybil.iter().copied()).mean,
        normal_mean: Summary::of(normal.iter().copied()).mean,
        sybil,
        normal,
    }
}

impl Fig4 {
    /// Render the log-x CDF chart plus the paper comparison line.
    pub fn render(&self) -> String {
        let s = Cdf::new(self.sybil.clone());
        let n = Cdf::new(self.normal.clone());
        let mut out =
            String::from("Figure 4 — clustering coefficient of first 50 friends (log x)\n\n");
        out.push_str(&ascii::plot_cdfs(
            &[("Sybil", &s), ("Normal", &n)],
            70,
            14,
            true,
        ));
        out.push_str(&format!(
            "\nmeans: sybil {:.4} (paper 0.0006), normal {:.4} (paper 0.0386); \
             ratio {:.1}x (paper 64x — gap shrinks at simulation scale)\n",
            self.sybil_mean,
            self.normal_mean,
            self.normal_mean / self.sybil_mean.max(1e-9)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn normal_users_cluster_more() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let fig = run(&ctx, 50);
        assert!(
            fig.normal_mean > fig.sybil_mean,
            "ordering must hold: normal {} vs sybil {}",
            fig.normal_mean,
            fig.sybil_mean
        );
        assert!(fig.render().contains("Figure 4"));
    }
}
