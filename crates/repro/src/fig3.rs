//! Figure 3 — CDF of the accepted fraction of incoming friend requests.
//!
//! Paper: Sybils accept essentially everything (80% of Sybils accept 100%
//! of incoming requests; the rest were banned before answering), while
//! normal users are spread across the board.

use crate::fig1::ground_truth_sample;
use crate::scenario::Ctx;
use serde::{Deserialize, Serialize};
use sybil_stats::{ascii, Cdf};

/// Result of the Fig. 3 experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig3 {
    /// Incoming accept ratios of sampled Sybils.
    pub sybil: Vec<f64>,
    /// Incoming accept ratios of sampled normal users.
    pub normal: Vec<f64>,
    /// Fraction of Sybils accepting 100% of incoming requests (paper ≈ 0.8).
    pub sybils_accepting_all: f64,
}

/// Run the experiment.
pub fn run(ctx: &Ctx, per_class: usize) -> Fig3 {
    let ds = ground_truth_sample(ctx, per_class);
    let mut sybil = Vec::new();
    let mut normal = Vec::new();
    for (f, &label) in ds.features.iter().zip(&ds.labels) {
        if label {
            sybil.push(f.incoming_accept_ratio);
        } else {
            normal.push(f.incoming_accept_ratio);
        }
    }
    let sybils_accepting_all = if sybil.is_empty() {
        0.0
    } else {
        sybil.iter().filter(|&&x| x >= 1.0).count() as f64 / sybil.len() as f64
    };
    Fig3 {
        sybil,
        normal,
        sybils_accepting_all,
    }
}

impl Fig3 {
    /// Render the CDF chart plus the paper comparison line.
    pub fn render(&self) -> String {
        let s = Cdf::new(self.sybil.clone());
        let n = Cdf::new(self.normal.clone());
        let mut out = String::from("Figure 3 — ratio of accepted incoming requests\n\n");
        out.push_str(&ascii::plot_cdfs(
            &[("Normal", &n), ("Sybil", &s)],
            70,
            14,
            false,
        ));
        out.push_str(&format!(
            "\nSybils accepting every incoming request: {:.0}% (paper ≈ 80%; \
             the shortfall is accounts banned with pending requests)\n",
            100.0 * self.sybils_accepting_all
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn sybils_accept_nearly_everything() {
        let ctx = Ctx::build(Scale::Tiny, 11);
        let fig = run(&ctx, 50);
        assert!(
            fig.sybils_accepting_all > 0.5,
            "sybils accepting all: {}",
            fig.sybils_accepting_all
        );
        // Normal spread: substantial mass below 0.9.
        let below = fig.normal.iter().filter(|&&x| x < 0.9).count();
        assert!(below * 4 >= fig.normal.len(), "normal should be spread out");
        assert!(fig.render().contains("Figure 3"));
    }
}
