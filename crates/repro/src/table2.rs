//! Table 2 — statistics of the five largest Sybil components.
//!
//! Paper columns: Sybils, Sybil edges, attack edges, audience (distinct
//! normal users adjacent to the component). Every large component has far
//! more attack edges than Sybil edges.

use crate::scenario::Ctx;
use osn_graph::metrics;
use serde::{Deserialize, Serialize};
use sybil_stats::table::Table;

/// One row of Table 2.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ComponentRow {
    /// Number of Sybils in the component.
    pub sybils: usize,
    /// Edges internal to the component (Sybil edges).
    pub sybil_edges: usize,
    /// Edges from the component to non-members (attack edges; edges to
    /// Sybils outside the component are a negligible sliver and counted
    /// here too, as in the paper's methodology).
    pub attack_edges: usize,
    /// Distinct non-member neighbors.
    pub audience: usize,
}

/// Result of the Table 2 experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2 {
    /// Up to five rows, largest component first.
    pub rows: Vec<ComponentRow>,
}

/// Run the experiment.
pub fn run(ctx: &Ctx) -> Table2 {
    let rows = ctx
        .sybil_components
        .iter()
        .take(5)
        .map(|c| {
            let stats = metrics::cut_stats(&ctx.out.graph, &c.nodes);
            ComponentRow {
                sybils: c.len(),
                sybil_edges: stats.internal_edges,
                attack_edges: stats.crossing_edges,
                audience: stats.audience,
            }
        })
        .collect();
    Table2 { rows }
}

impl Table2 {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = Table::new(["Sybils", "Sybil Edges", "Attack Edges", "Audience"]);
        for r in &self.rows {
            t.add_row([
                r.sybils.to_string(),
                r.sybil_edges.to_string(),
                r.attack_edges.to_string(),
                r.audience.to_string(),
            ]);
        }
        let mut out =
            String::from("Table 2 — five largest Sybil components (paper: attack ≫ Sybil edges)\n\n");
        out.push_str(&t.render());
        if let Some(r) = self.rows.first() {
            out.push_str(&format!(
                "\ngiant component: {:.1} attack edges per Sybil edge (paper: 73)\n",
                r.attack_edges as f64 / r.sybil_edges.max(1) as f64
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    #[test]
    fn attack_edges_dominate_every_large_component() {
        let ctx = Ctx::build(Scale::Small, 1);
        let t = run(&ctx);
        assert!(!t.rows.is_empty());
        for r in &t.rows {
            assert!(
                r.attack_edges > r.sybil_edges,
                "attack {} must exceed sybil {}",
                r.attack_edges,
                r.sybil_edges
            );
            assert!(r.audience <= r.attack_edges);
            assert!(r.audience > 0);
        }
        // Rows sorted by size.
        for w in t.rows.windows(2) {
            assert!(w[0].sybils >= w[1].sybils);
        }
        assert!(t.render().contains("Table 2"));
    }
}
