//! Property-based tests for the graph substrate.

use osn_graph::io;
use osn_graph::subgraph::InducedSubgraph;
use osn_graph::walks::{RouteStart, RouteTables};
use osn_graph::{generators, NodeId, TemporalGraph, Timestamp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn graph_from(n: usize, edges: &[(usize, usize)]) -> TemporalGraph {
    let mut g = TemporalGraph::with_nodes(n);
    for (i, &(a, b)) in edges.iter().enumerate() {
        let _ = g.add_edge(
            NodeId((a % n) as u32),
            NodeId((b % n) as u32),
            Timestamp(i as u64),
        );
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CSV round trip preserves the edge set and timestamps.
    #[test]
    fn io_roundtrip(
        n in 1usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..80)
    ) {
        let g = graph_from(n, &edges);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = io::read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for e in g.edges() {
            prop_assert!(g2.has_edge(e.a, e.b));
        }
        for (a, b) in g.edges().iter().zip(g2.edges()) {
            prop_assert_eq!(a.time, b.time);
        }
    }

    /// Induced subgraphs contain exactly the edges with both endpoints in
    /// the subset.
    #[test]
    fn induced_subgraph_edge_set(
        n in 2usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..80),
        mask in prop::collection::vec(any::<bool>(), 40)
    ) {
        let g = graph_from(n, &edges);
        let subset: Vec<NodeId> = (0..n)
            .filter(|&i| mask[i])
            .map(|i| NodeId(i as u32))
            .collect();
        let sub = InducedSubgraph::new(&g, &subset);
        let expected = g
            .edges()
            .iter()
            .filter(|e| sub.to_sub(e.a).is_some() && sub.to_sub(e.b).is_some())
            .count();
        prop_assert_eq!(sub.graph.num_edges(), expected);
        // Round-trip mapping.
        for node in sub.graph.nodes() {
            let orig = sub.to_original(node);
            prop_assert_eq!(sub.to_sub(orig), Some(node));
        }
    }

    /// Random routes follow edges and are reproducible; two routes that
    /// traverse the same directed edge coincide afterwards (the SybilGuard
    /// convergence property) on arbitrary graphs.
    #[test]
    fn route_convergence(seed in 0u64..500, n in 4usize..30, m in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::barabasi_albert(n, m, Timestamp::ZERO, &mut rng);
        let tables = RouteTables::new(&g, &mut rng);
        let len = 12;
        let start_a = RouteStart { node: NodeId(0), first_edge: 0 };
        let ra = tables.route(&g, start_a, len);
        prop_assert_eq!(&ra, &tables.route(&g, start_a, len));
        for w in ra.windows(2) {
            prop_assert!(g.has_edge(w[0], w[1]));
        }
        // Convergence: compare with a route from another node.
        let other = NodeId((n - 1) as u32);
        if g.degree(other) > 0 {
            let rb = tables.route(&g, RouteStart { node: other, first_edge: 0 }, len);
            let ea: Vec<(NodeId, NodeId)> = ra.windows(2).map(|w| (w[0], w[1])).collect();
            let eb: Vec<(NodeId, NodeId)> = rb.windows(2).map(|w| (w[0], w[1])).collect();
            'outer: for (i, x) in ea.iter().enumerate() {
                for (j, y) in eb.iter().enumerate() {
                    if x == y {
                        let k = (ea.len() - i).min(eb.len() - j);
                        for d in 0..k {
                            prop_assert_eq!(ea[i + d], eb[j + d]);
                        }
                        break 'outer;
                    }
                }
            }
        }
    }

    /// Watts–Strogatz at β=0 is the pure ring lattice: every node has
    /// exactly degree k.
    #[test]
    fn ws_beta_zero_is_lattice(n in 10usize..60, half_k in 1usize..3) {
        let k = half_k * 2;
        prop_assume!(n > k);
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::watts_strogatz(n, k, 0.0, Timestamp::ZERO, &mut rng);
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), k);
        }
    }

    /// The configuration model never exceeds requested degrees.
    #[test]
    fn configuration_model_degree_caps(
        degrees in prop::collection::vec(0usize..6, 2..60)
    ) {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::configuration_model(&degrees, Timestamp::ZERO, &mut rng);
        for (i, &d) in degrees.iter().enumerate() {
            prop_assert!(g.degree(NodeId(i as u32)) <= d);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Core numbers never exceed degrees, and k-cores are nested.
    #[test]
    fn kcore_nesting(
        n in 2usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..120)
    ) {
        let g = graph_from(n, &edges);
        let cores = osn_graph::kcore::core_numbers(&g);
        for v in g.nodes() {
            prop_assert!(cores[v.index()] as usize <= g.degree(v));
        }
        let k1 = osn_graph::kcore::k_core(&g, 1);
        let k2 = osn_graph::kcore::k_core(&g, 2);
        let set1: std::collections::HashSet<_> = k1.into_iter().collect();
        for v in k2 {
            prop_assert!(set1.contains(&v), "2-core must lie inside 1-core");
        }
    }

    /// Cascade reach is bounded by the union of seed components and always
    /// includes the seeds; hops never exceed node count.
    #[test]
    fn cascade_bounds(
        n in 2usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..100),
        seed_idx in 0usize..40,
        p in 0.0f64..1.0
    ) {
        let g = graph_from(n, &edges);
        let seed = NodeId((seed_idx % n) as u32);
        let mut rng = StdRng::seed_from_u64(9);
        let r = osn_graph::cascade::independent_cascade(&g, &[seed], p, &mut rng);
        prop_assert!(r.reach() >= 1);
        prop_assert!(r.activated[0] == seed);
        prop_assert!(r.depth() as usize <= n);
        // Reach can never exceed the seed's component size.
        let comp_size = osn_graph::bfs::bfs_order(&g, seed).len();
        prop_assert!(r.reach() <= comp_size);
        // Every activated node is connected to the seed.
        let dist = osn_graph::bfs::distances(&g, seed);
        for a in &r.activated {
            prop_assert!(dist[a.index()].is_some());
        }
    }

    /// Spectral gap, when defined, is in [0, 1].
    #[test]
    fn spectral_gap_bounds(seed in 0u64..200, n in 5usize..40, m in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::barabasi_albert(n, m, Timestamp::ZERO, &mut rng);
        let gap = osn_graph::spectral::spectral_gap(&g, 40, seed).unwrap();
        prop_assert!((0.0..=1.0).contains(&gap), "gap {}", gap);
    }
}
