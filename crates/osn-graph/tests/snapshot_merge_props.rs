//! Property tests for the incremental snapshot rotation:
//! [`CsrSnapshot::merge_delta`] must be element-identical (all four
//! columns) to the monolithic oracle [`CsrSnapshot::with_edges`] and to a
//! one-shot [`CsrSnapshot::freeze`] of the same edge stream, under any
//! randomized batching schedule.

use osn_graph::{CsrSnapshot, NodeId, TemporalGraph, Timestamp};
use proptest::prelude::*;

/// Build a deduplicated, time-ordered undirected edge stream over `n`
/// nodes from raw proptest pairs. Times are the stream index, so every
/// addition extends its endpoint rows in time order (the caller contract
/// of both `with_edges` and `merge_delta`).
fn edge_stream(n: usize, raw: &[(usize, usize)]) -> Vec<(NodeId, NodeId, Timestamp)> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for &(a, b) in raw {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if seen.insert(key) {
            out.push((
                NodeId(a as u32),
                NodeId(b as u32),
                Timestamp(out.len() as u64),
            ));
        }
    }
    out
}

/// Split `edges` into consecutive batches at the given cut fractions
/// (empty batches allowed — rotations with nothing to fold must be no-ops).
fn schedule<'a>(
    edges: &'a [(NodeId, NodeId, Timestamp)],
    cuts: &[usize],
) -> Vec<&'a [(NodeId, NodeId, Timestamp)]> {
    let mut points: Vec<usize> = cuts.iter().map(|&c| c % (edges.len() + 1)).collect();
    points.sort_unstable();
    let mut batches = Vec::new();
    let mut prev = 0;
    for p in points {
        batches.push(&edges[prev..p]);
        prev = p;
    }
    batches.push(&edges[prev..]);
    batches
}

fn assert_columns_equal(got: &CsrSnapshot, want: &CsrSnapshot) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.num_nodes(), want.num_nodes());
    prop_assert_eq!(got.num_edges(), want.num_edges());
    for v in got.nodes() {
        prop_assert_eq!(got.neighbors_sorted(v), want.neighbors_sorted(v), "sorted {:?}", v);
        prop_assert_eq!(got.times_sorted(v), want.times_sorted(v), "sorted_times {:?}", v);
        prop_assert_eq!(got.neighbors_chrono(v), want.neighbors_chrono(v), "chrono {:?}", v);
        prop_assert_eq!(got.times_chrono(v), want.times_chrono(v), "chrono_times {:?}", v);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any randomized rotation schedule of `merge_delta` reproduces the
    /// single-shot `with_edges` build column for column. Node counts span
    /// multiple 256-row blocks so block-boundary handling is exercised.
    #[test]
    fn merge_delta_schedule_matches_with_edges(
        n in 2usize..600,
        raw in prop::collection::vec((0usize..600, 0usize..600), 0..300),
        cuts in prop::collection::vec(0usize..301, 0..6),
    ) {
        let edges = edge_stream(n, &raw);
        let oracle = CsrSnapshot::empty(n).with_edges(&edges);
        let mut inc = CsrSnapshot::empty(n);
        for batch in schedule(&edges, &cuts) {
            inc.merge_delta(batch);
        }
        assert_columns_equal(&inc, &oracle)?;
    }

    /// The same schedule also reproduces `freeze` of a graph built from
    /// the identical stream — tying the incremental path to the original
    /// construction, not just to `with_edges`.
    #[test]
    fn merge_delta_schedule_matches_freeze(
        n in 2usize..600,
        raw in prop::collection::vec((0usize..600, 0usize..600), 0..300),
        cuts in prop::collection::vec(0usize..301, 0..6),
    ) {
        let edges = edge_stream(n, &raw);
        let mut g = TemporalGraph::with_nodes(n);
        for &(a, b, t) in &edges {
            g.add_edge(a, b, t).unwrap();
        }
        let frozen = CsrSnapshot::freeze(&g);
        let mut inc = CsrSnapshot::empty(n);
        for batch in schedule(&edges, &cuts) {
            inc.merge_delta(batch);
        }
        assert_columns_equal(&inc, &frozen)?;
    }

    /// Mixing the two rebuild paths mid-chain (rotate incrementally, then
    /// monolithically, then incrementally again) stays on the same values:
    /// the block layout carries no path-dependent state.
    #[test]
    fn mixed_rebuild_paths_agree(
        n in 2usize..600,
        raw in prop::collection::vec((0usize..600, 0usize..600), 0..300),
        cut in 0usize..301,
    ) {
        let edges = edge_stream(n, &raw);
        let oracle = CsrSnapshot::empty(n).with_edges(&edges);
        let split = cut % (edges.len() + 1);
        let mut mixed = CsrSnapshot::empty(n);
        mixed.merge_delta(&edges[..split]);
        mixed = mixed.with_edges(&edges[split..]);
        assert_columns_equal(&mixed, &oracle)?;
    }
}
