//! Property tests for the CSR snapshot and the parallel map: the frozen
//! view must agree with [`TemporalGraph`] on every query, and parallel
//! sweeps must be bit-identical to their serial counterparts.

use osn_graph::{clustering, par, CsrSnapshot, NeighborScratch, NodeId, TemporalGraph, Timestamp};
use proptest::prelude::*;

/// Random graph with edges inserted in nondecreasing time order — the
/// simulator's guarantee, which the temporal analyses assume.
fn graph_from(n: usize, edges: &[(usize, usize)]) -> TemporalGraph {
    let mut g = TemporalGraph::with_nodes(n);
    for (i, &(a, b)) in edges.iter().enumerate() {
        let _ = g.add_edge(
            NodeId((a % n) as u32),
            NodeId((b % n) as u32),
            Timestamp(i as u64),
        );
    }
    g
}

/// Run `body` with `RENREN_THREADS` pinned, restoring the prior value.
/// Env vars are process-global; every test in this binary that touches
/// them funnels through this one lock.
fn with_threads_env(value: &str, body: impl FnOnce()) {
    use std::sync::{Mutex, OnceLock};
    static ENV_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let _guard = ENV_LOCK.get_or_init(|| Mutex::new(())).lock().unwrap();
    let prior = std::env::var(par::THREADS_ENV).ok();
    std::env::set_var(par::THREADS_ENV, value);
    body();
    match prior {
        Some(v) => std::env::set_var(par::THREADS_ENV, v),
        None => std::env::remove_var(par::THREADS_ENV),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `has_edge` agrees between snapshot and graph on every node pair.
    #[test]
    fn snapshot_has_edge_matches_graph(
        n in 2usize..25,
        edges in prop::collection::vec((0usize..25, 0usize..25), 0..80)
    ) {
        let g = graph_from(n, &edges);
        let s = CsrSnapshot::freeze(&g);
        prop_assert_eq!(s.num_nodes(), g.num_nodes());
        prop_assert_eq!(s.num_edges(), g.num_edges());
        for a in g.nodes() {
            for b in g.nodes() {
                prop_assert_eq!(
                    s.has_edge(a, b),
                    g.has_edge(a, b),
                    "pair {:?}-{:?}", a, b
                );
            }
        }
    }

    /// Snapshot rows are permutations of the graph's adjacency: the sorted
    /// row ascends by id, the chronological row preserves insertion order.
    #[test]
    fn snapshot_neighbor_sets_match_graph(
        n in 2usize..25,
        edges in prop::collection::vec((0usize..25, 0usize..25), 0..80)
    ) {
        let g = graph_from(n, &edges);
        let s = CsrSnapshot::freeze(&g);
        for v in g.nodes() {
            prop_assert_eq!(s.degree(v), g.degree(v));
            let chrono: Vec<u32> = g.neighbors(v).iter().map(|nb| nb.node.0).collect();
            prop_assert_eq!(s.neighbors_chrono(v), &chrono[..]);
            let times: Vec<Timestamp> = g.neighbors(v).iter().map(|nb| nb.time).collect();
            prop_assert_eq!(s.times_chrono(v), &times[..]);
            let mut sorted = chrono.clone();
            sorted.sort_unstable();
            prop_assert_eq!(s.neighbors_sorted(v), &sorted[..]);
            prop_assert!(s.neighbors_sorted(v).windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// Mutual-friend counts from the sorted-adjacency merge equal the
    /// graph's hash-probe implementation.
    #[test]
    fn snapshot_mutual_friends_match_graph(
        n in 2usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..60)
    ) {
        let g = graph_from(n, &edges);
        let s = CsrSnapshot::freeze(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                if a != b {
                    prop_assert_eq!(
                        s.mutual_friends(a, b),
                        g.mutual_friends(a, b),
                        "pair {:?}-{:?}", a, b
                    );
                }
            }
        }
    }

    /// Every snapshot clustering kernel returns the exact bits of the
    /// corresponding `clustering`-module function.
    #[test]
    fn snapshot_clustering_matches_graph(
        n in 2usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..70),
        k in 0usize..8,
        cut in 0u64..70
    ) {
        let g = graph_from(n, &edges);
        let s = CsrSnapshot::freeze(&g);
        let mut scratch = NeighborScratch::new(s.num_nodes());
        for v in g.nodes() {
            prop_assert_eq!(
                s.local_clustering(v, &mut scratch),
                clustering::local_clustering(&g, v)
            );
            prop_assert_eq!(
                s.first_k_clustering(v, k, &mut scratch),
                clustering::first_k_clustering(&g, v, k)
            );
            prop_assert_eq!(
                s.clustering_before(v, Timestamp(cut), &mut scratch),
                clustering::clustering_before(&g, v, Timestamp(cut))
            );
        }
        prop_assert_eq!(s.average_clustering(), clustering::average_clustering(&g));
        prop_assert_eq!(s.global_clustering(), clustering::global_clustering(&g));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full-population sweeps produce the same bits at 1, 2, 3 and 7
    /// threads.
    #[test]
    fn parallel_sweeps_are_thread_count_invariant(
        n in 2usize..25,
        edges in prop::collection::vec((0usize..25, 0usize..25), 0..80),
        k in 1usize..6
    ) {
        let g = graph_from(n, &edges);
        let mut avg = Vec::new();
        let mut firstk = Vec::new();
        let mut degs = Vec::new();
        for threads in ["1", "2", "3", "7"] {
            with_threads_env(threads, || {
                avg.push(clustering::average_clustering(&g));
                firstk.push(clustering::first_k_clustering_all(&g, k));
                degs.push(osn_graph::degree::degree_sequence(&g));
            });
        }
        for i in 1..avg.len() {
            prop_assert_eq!(avg[i], avg[0]);
            prop_assert_eq!(&firstk[i], &firstk[0]);
            prop_assert_eq!(&degs[i], &degs[0]);
        }
    }

    /// `par::map_indexed` equals the serial loop for arbitrary lengths,
    /// including ones that do not divide evenly into chunks.
    #[test]
    fn map_indexed_matches_serial(len in 0usize..200, threads in 1usize..9) {
        with_threads_env(&threads.to_string(), || {
            let expected: Vec<u64> = (0..len).map(|i| (i as u64).wrapping_mul(0x9E3779B9)).collect();
            let got = par::map_indexed(len, |i| (i as u64).wrapping_mul(0x9E3779B9));
            assert_eq!(got, expected);
        });
    }
}
