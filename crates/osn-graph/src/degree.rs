//! Degree sequences and distribution helpers.
//!
//! Figs. 5 and 9 of the paper are degree CDFs: Fig. 5 contrasts each Sybil's
//! total degree (“All Edges”) with its degree counting only edges to other
//! Sybils (“Sybil Edges”); Fig. 9 repeats the comparison inside the largest
//! Sybil component. The helpers here compute plain and predicate-restricted
//! degree sequences; CDF construction itself lives in `sybil-stats`.

use crate::graph::{NodeId, TemporalGraph};
use crate::par;

/// Degree of every node, indexed by node id. Runs across
/// [`par::num_threads`] threads; output is identical to the serial loop.
pub fn degree_sequence(g: &TemporalGraph) -> Vec<usize> {
    par::map_indexed(g.num_nodes(), |i| g.degree(NodeId(i as u32)))
}

/// Degrees of the nodes in `nodes`, in the same order.
pub fn degrees_of(g: &TemporalGraph, nodes: &[NodeId]) -> Vec<usize> {
    par::map_slice(nodes, |&n| g.degree(n))
}

/// Degree of each node in `nodes` counting only neighbors satisfying
/// `count_neighbor` — e.g. the “Sybil edges” degree of Fig. 5 when the
/// predicate is "neighbor is a Sybil". The predicate must be `Sync`; it is
/// applied from worker threads, in a deterministic per-node order.
pub fn restricted_degrees<F>(g: &TemporalGraph, nodes: &[NodeId], count_neighbor: F) -> Vec<usize>
where
    F: Fn(NodeId) -> bool + Sync,
{
    par::map_slice(nodes, |&n| {
        g.neighbors(n)
            .iter()
            .filter(|nb| count_neighbor(nb.node))
            .count()
    })
}

/// Histogram of a degree sequence: `hist[d]` = number of nodes with degree
/// `d`. Length is `max_degree + 1` (empty input gives an empty vec).
pub fn degree_histogram(degrees: &[usize]) -> Vec<usize> {
    let max = match degrees.iter().max() {
        Some(&m) => m,
        None => return Vec::new(),
    };
    let mut hist = vec![0usize; max + 1];
    for &d in degrees {
        hist[d] += 1;
    }
    hist
}

/// Fraction of entries equal to `d`.
pub fn fraction_with_degree(degrees: &[usize], d: usize) -> f64 {
    if degrees.is_empty() {
        return 0.0;
    }
    degrees.iter().filter(|&&x| x == d).count() as f64 / degrees.len() as f64
}

/// Fraction of entries ≤ `d`.
pub fn fraction_with_degree_at_most(degrees: &[usize], d: usize) -> f64 {
    if degrees.is_empty() {
        return 0.0;
    }
    degrees.iter().filter(|&&x| x <= d).count() as f64 / degrees.len() as f64
}

/// Mean of a degree sequence.
pub fn mean_degree(degrees: &[usize]) -> f64 {
    if degrees.is_empty() {
        return 0.0;
    }
    degrees.iter().sum::<usize>() as f64 / degrees.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Timestamp;

    fn path_graph(n: usize) -> TemporalGraph {
        let mut g = TemporalGraph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(i as u32 - 1), NodeId(i as u32), Timestamp::ZERO)
                .unwrap();
        }
        g
    }

    #[test]
    fn path_degrees() {
        let g = path_graph(4);
        assert_eq!(degree_sequence(&g), vec![1, 2, 2, 1]);
        assert_eq!(mean_degree(&degree_sequence(&g)), 1.5);
    }

    #[test]
    fn degrees_of_subset() {
        let g = path_graph(4);
        assert_eq!(degrees_of(&g, &[NodeId(1), NodeId(3)]), vec![2, 1]);
    }

    #[test]
    fn restricted_degree_counts_matching_neighbors() {
        let g = path_graph(5);
        // Count only even-id neighbors.
        let nodes: Vec<NodeId> = g.nodes().collect();
        let r = restricted_degrees(&g, &nodes, |n| n.0 % 2 == 0);
        // node0: nb {1} -> 0; node1: nb {0,2} -> 2; node2: nb {1,3} -> 0;
        // node3: nb {2,4} -> 2; node4: nb {3} -> 0.
        assert_eq!(r, vec![0, 2, 0, 2, 0]);
    }

    #[test]
    fn histogram_and_fractions() {
        let degs = vec![0, 1, 1, 2, 5];
        assert_eq!(degree_histogram(&degs), vec![1, 2, 1, 0, 0, 1]);
        assert_eq!(fraction_with_degree(&degs, 1), 0.4);
        assert_eq!(fraction_with_degree_at_most(&degs, 2), 0.8);
        assert!(degree_histogram(&[]).is_empty());
        assert_eq!(fraction_with_degree(&[], 0), 0.0);
        assert_eq!(fraction_with_degree_at_most(&[], 0), 0.0);
        assert_eq!(mean_degree(&[]), 0.0);
    }
}
