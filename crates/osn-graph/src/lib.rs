//! # osn-graph — temporal social-graph substrate
//!
//! This crate implements the graph machinery that the IMC 2011 paper
//! *“Uncovering Social Network Sybils in the Wild”* (Yang et al.) relies on:
//! a timestamped, undirected friendship graph plus the algorithms used both
//! by the paper's measurement pipeline (degree distributions, connected
//! components, clustering coefficients, temporal edge ordering) and by the
//! graph-based Sybil defenses it evaluates against (random walks, random
//! routes, max-flow, conductance).
//!
//! Everything is deterministic given a seeded RNG, CPU-bound, and
//! synchronous; the workloads here are measurement-style batch analytics,
//! not I/O (see the design notes in `DESIGN.md` at the workspace root).
//!
//! ## Layout
//!
//! * [`graph`] — the [`TemporalGraph`] store: nodes, undirected edges with
//!   creation [`Timestamp`]s, constant-time membership tests.
//! * [`unionfind`] — disjoint-set forest used by component analyses.
//! * [`components`] — connected components of the whole graph or of induced
//!   subsets (e.g. the Sybil-only subgraph of the paper's §3.3).
//! * [`clustering`] — local clustering coefficients, including the paper's
//!   “first 50 friends by time” variant (Fig. 4).
//! * [`degree`] — degree sequences and distribution helpers (Figs. 5, 9).
//! * [`bfs`] — breadth-first traversal and shortest-path helpers.
//! * [`cascade`] — independent-cascade diffusion (the spam-reach model
//!   behind the paper's motivation).
//! * [`walks`] — random walks and SybilGuard/SybilLimit random *routes*.
//! * [`maxflow`] — Dinic max-flow used by the SumUp baseline.
//! * [`subgraph`] — induced subgraphs with node re-indexing.
//! * [`sampling`] — snowball sampling (the mechanism behind accidental
//!   Sybil edges, §3.4) and uniform sampling utilities.
//! * [`generators`] — synthetic graph generators (ER, BA, WS,
//!   configuration model) used for null models and defense calibration.
//! * [`kcore`] — k-core decomposition (how deeply Sybils embed).
//! * [`spectral`] — mixing-time diagnostics: spectral gap of the lazy
//!   walk and empirical escape probabilities (the fast-mixing assumption
//!   behind every §3.1 defense).
//! * [`metrics`] — conductance, edge cuts, mutual-friend counts,
//!   rich-club coefficients, degree assortativity.
//! * [`snapshot`] — immutable CSR snapshot ([`CsrSnapshot`]) with sorted
//!   adjacency for O(log d) membership, merge-based mutual friends, and
//!   scratch-marked clustering kernels.
//! * [`par`] — deterministic order-preserving parallel map used by the
//!   full-population sweeps (`RENREN_THREADS` overrides the width).
//! * [`paths`] — sampled shortest-path statistics.
//! * [`profile`] — one-call structural census ([`profile::GraphProfile`]).
//! * [`io`] — CSV edge-list import/export.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bfs;
pub mod cascade;
pub mod clustering;
pub mod components;
pub mod degree;
pub mod generators;
pub mod graph;
pub mod io;
pub mod kcore;
pub mod maxflow;
pub mod metrics;
pub mod par;
pub mod paths;
pub mod profile;
pub mod sampling;
pub mod snapshot;
pub mod spectral;
pub mod subgraph;
pub mod unionfind;
pub mod walks;

pub use graph::{EdgeId, EdgeRecord, GraphError, Neighbor, NodeId, TemporalGraph, Timestamp};
pub use snapshot::{CsrSnapshot, MergeScratch, NeighborScratch};
pub use unionfind::UnionFind;
