//! Induced subgraphs with node re-indexing.
//!
//! The defenses operate on the full graph, but several analyses (the Sybil
//! region of §3.3, the giant component of Figs. 8–9) work on an induced
//! subgraph. [`InducedSubgraph`] materializes one, preserving edge creation
//! times and keeping a bidirectional node mapping.

use crate::graph::{NodeId, TemporalGraph};
use std::collections::HashMap;

/// A subgraph induced by a node subset, re-indexed to dense ids, together
/// with the mapping back to the original graph.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The materialized subgraph; node `i` corresponds to
    /// `original_of[i]` in the parent graph.
    pub graph: TemporalGraph,
    /// Subgraph id → original id.
    pub original_of: Vec<NodeId>,
    /// Original id → subgraph id.
    pub sub_of: HashMap<NodeId, NodeId>,
}

impl InducedSubgraph {
    /// Build the subgraph of `g` induced by `nodes` (duplicates ignored).
    ///
    /// Edges are copied in the parent's global creation order, so per-node
    /// chronological adjacency order is preserved.
    pub fn new(g: &TemporalGraph, nodes: &[NodeId]) -> Self {
        let mut original_of: Vec<NodeId> = Vec::with_capacity(nodes.len());
        let mut sub_of: HashMap<NodeId, NodeId> = HashMap::with_capacity(nodes.len());
        for &n in nodes {
            if let std::collections::hash_map::Entry::Vacant(e) = sub_of.entry(n) {
                let id = NodeId(original_of.len() as u32);
                e.insert(id);
                original_of.push(n);
            }
        }
        let mut graph = TemporalGraph::with_nodes(original_of.len());
        for e in g.edges() {
            if let (Some(&a), Some(&b)) = (sub_of.get(&e.a), sub_of.get(&e.b)) {
                // add_edge only rejects self-loops and duplicates; an
                // induced subgraph skips those, it doesn't abort — the
                // parent excludes both anyway, so this arm is never hit.
                let _ = graph.add_edge(a, b, e.time);
            }
        }
        InducedSubgraph {
            graph,
            original_of,
            sub_of,
        }
    }

    /// Original node id of subgraph node `n`.
    pub fn to_original(&self, n: NodeId) -> NodeId {
        self.original_of[n.index()]
    }

    /// Subgraph node id of original node `n`, if included.
    pub fn to_sub(&self, n: NodeId) -> Option<NodeId> {
        self.sub_of.get(&n).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Timestamp;

    fn t(h: u64) -> Timestamp {
        Timestamp::from_hours(h)
    }

    fn sample_graph() -> TemporalGraph {
        let mut g = TemporalGraph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1), t(1)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), t(2)).unwrap();
        g.add_edge(NodeId(2), NodeId(3), t(3)).unwrap();
        g.add_edge(NodeId(3), NodeId(4), t(4)).unwrap();
        g.add_edge(NodeId(0), NodeId(4), t(5)).unwrap();
        g
    }

    #[test]
    fn induces_only_internal_edges() {
        let g = sample_graph();
        let s = InducedSubgraph::new(&g, &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(s.graph.num_nodes(), 3);
        assert_eq!(s.graph.num_edges(), 2); // 0-1 and 1-2
        let a = s.to_sub(NodeId(0)).unwrap();
        let b = s.to_sub(NodeId(1)).unwrap();
        assert!(s.graph.has_edge(a, b));
        assert_eq!(s.to_sub(NodeId(4)), None);
    }

    #[test]
    fn mapping_roundtrip() {
        let g = sample_graph();
        let nodes = [NodeId(3), NodeId(1), NodeId(4)];
        let s = InducedSubgraph::new(&g, &nodes);
        for &n in &nodes {
            let sub = s.to_sub(n).unwrap();
            assert_eq!(s.to_original(sub), n);
        }
    }

    #[test]
    fn duplicates_ignored() {
        let g = sample_graph();
        let s = InducedSubgraph::new(&g, &[NodeId(2), NodeId(2), NodeId(3)]);
        assert_eq!(s.graph.num_nodes(), 2);
        assert_eq!(s.graph.num_edges(), 1);
    }

    #[test]
    fn preserves_edge_times_and_order() {
        let g = sample_graph();
        let s = InducedSubgraph::new(&g, &[NodeId(0), NodeId(1), NodeId(4)]);
        // Internal edges: 0-1 (t1) then 0-4 (t5) — in that creation order.
        let zero = s.to_sub(NodeId(0)).unwrap();
        let nb = s.graph.neighbors(zero);
        assert_eq!(nb.len(), 2);
        assert!(nb[0].time < nb[1].time);
        assert_eq!(nb[0].time, t(1));
        assert_eq!(nb[1].time, t(5));
    }

    #[test]
    fn empty_subset() {
        let g = sample_graph();
        let s = InducedSubgraph::new(&g, &[]);
        assert_eq!(s.graph.num_nodes(), 0);
        assert_eq!(s.graph.num_edges(), 0);
    }
}
