//! k-core decomposition.
//!
//! The core number of a node is the largest `k` such that the node belongs
//! to a maximal subgraph of minimum degree `k`. Sybil-detection literature
//! uses coreness both as a spam feature and to characterize how deeply
//! fake accounts embed into the graph: the paper's integrated Sybils reach
//! far higher cores than an injected cluster's periphery would.

use crate::graph::{NodeId, TemporalGraph};

/// Core number of every node (Batagelj–Zaveršnik peeling, `O(n + m)`).
pub fn core_numbers(g: &TemporalGraph) -> Vec<u32> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = (0..n).map(|i| g.degree(NodeId(i as u32))).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Bucket sort nodes by degree.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin[d] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut vert = vec![0usize; n];
    for v in 0..n {
        pos[v] = bin[degree[v]];
        vert[pos[v]] = v;
        bin[degree[v]] += 1;
    }
    // Restore bin starts.
    for d in (1..bin.len()).rev() {
        bin[d] = bin[d - 1];
    }
    bin[0] = 0;
    // Peel.
    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = vert[i];
        core[v] = degree[v] as u32;
        for nb in g.neighbors(NodeId(v as u32)) {
            let u = nb.node.index();
            if degree[u] > degree[v] {
                // Move u one bucket down.
                let du = degree[u];
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw];
                if u != w {
                    pos[u] = pw;
                    vert[pu] = w;
                    pos[w] = pu;
                    vert[pw] = u;
                }
                bin[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    core
}

/// Nodes in the `k`-core (core number ≥ k).
pub fn k_core(g: &TemporalGraph, k: u32) -> Vec<NodeId> {
    core_numbers(g)
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c >= k)
        .map(|(i, _)| NodeId(i as u32))
        .collect()
}

/// Degeneracy: the largest k with a non-empty k-core.
pub fn degeneracy(g: &TemporalGraph) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Timestamp;

    fn t() -> Timestamp {
        Timestamp::ZERO
    }

    #[test]
    fn clique_core_is_size_minus_one() {
        let mut g = TemporalGraph::with_nodes(5);
        for i in 0..5u32 {
            for j in (i + 1)..5u32 {
                g.add_edge(NodeId(i), NodeId(j), t()).unwrap();
            }
        }
        assert_eq!(core_numbers(&g), vec![4; 5]);
        assert_eq!(degeneracy(&g), 4);
        assert_eq!(k_core(&g, 4).len(), 5);
        assert!(k_core(&g, 5).is_empty());
    }

    #[test]
    fn path_core_is_one() {
        let mut g = TemporalGraph::with_nodes(4);
        for i in 1..4u32 {
            g.add_edge(NodeId(i - 1), NodeId(i), t()).unwrap();
        }
        assert_eq!(core_numbers(&g), vec![1; 4]);
    }

    #[test]
    fn clique_with_pendant() {
        // Triangle 0-1-2 plus pendant 3 attached to 0.
        let mut g = TemporalGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), t()).unwrap();
        g.add_edge(NodeId(1), NodeId(2), t()).unwrap();
        g.add_edge(NodeId(0), NodeId(2), t()).unwrap();
        g.add_edge(NodeId(0), NodeId(3), t()).unwrap();
        assert_eq!(core_numbers(&g), vec![2, 2, 2, 1]);
        assert_eq!(k_core(&g, 2), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn isolated_nodes_are_zero_core() {
        let g = TemporalGraph::with_nodes(3);
        assert_eq!(core_numbers(&g), vec![0, 0, 0]);
        assert_eq!(degeneracy(&g), 0);
        assert!(core_numbers(&TemporalGraph::new()).is_empty());
    }

    #[test]
    fn core_at_most_degree() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let g = crate::generators::barabasi_albert(300, 3, t(), &mut rng);
        let cores = core_numbers(&g);
        for v in g.nodes() {
            assert!(cores[v.index()] as usize <= g.degree(v));
        }
        // BA(m=3) has a 3-core (every late node attaches 3 edges).
        assert!(degeneracy(&g) >= 3);
    }
}
