//! Independent-cascade diffusion.
//!
//! The paper's motivation is Sybils "spamming advertisements": Renren's
//! most popular activity is sharing blog entries, "forwarded across
//! multiple social hops much like retweets" (§2.1). The reach of a Sybil
//! campaign is therefore a diffusion process seeded at the Sybils'
//! friends. This module implements the standard independent-cascade model
//! over a [`TemporalGraph`]: each newly-activated node gets one chance to
//! activate each neighbor with probability `p`.

use crate::graph::{NodeId, TemporalGraph};
use rand::prelude::*;
use std::collections::VecDeque;

/// Outcome of one cascade.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CascadeResult {
    /// All activated nodes, in activation order (seeds first).
    pub activated: Vec<NodeId>,
    /// Hop distance from the seed set per activated node (parallel to
    /// `activated`; seeds are hop 0).
    pub hops: Vec<u32>,
}

impl CascadeResult {
    /// Number of activated nodes (including seeds).
    pub fn reach(&self) -> usize {
        self.activated.len()
    }

    /// Maximum hop distance reached.
    pub fn depth(&self) -> u32 {
        self.hops.iter().copied().max().unwrap_or(0)
    }
}

/// Run one independent cascade from `seeds` with forwarding probability
/// `p`. Duplicate seeds are ignored; out-of-range seeds panic.
pub fn independent_cascade<R: Rng + ?Sized>(
    g: &TemporalGraph,
    seeds: &[NodeId],
    p: f64,
    rng: &mut R,
) -> CascadeResult {
    let p = p.clamp(0.0, 1.0);
    let mut active = vec![false; g.num_nodes()];
    let mut result = CascadeResult {
        activated: Vec::new(),
        hops: Vec::new(),
    };
    let mut queue: VecDeque<(NodeId, u32)> = VecDeque::new();
    for &s in seeds {
        assert!(g.contains_node(s), "seed out of range");
        if !active[s.index()] {
            active[s.index()] = true;
            result.activated.push(s);
            result.hops.push(0);
            queue.push_back((s, 0));
        }
    }
    while let Some((u, hop)) = queue.pop_front() {
        for nb in g.neighbors(u) {
            if !active[nb.node.index()] && rng.random_range(0.0..1.0) < p {
                active[nb.node.index()] = true;
                result.activated.push(nb.node);
                result.hops.push(hop + 1);
                queue.push_back((nb.node, hop + 1));
            }
        }
    }
    result
}

/// Mean reach over `trials` cascades (reseeding the process each time).
pub fn expected_reach<R: Rng + ?Sized>(
    g: &TemporalGraph,
    seeds: &[NodeId],
    p: f64,
    trials: usize,
    rng: &mut R,
) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    (0..trials)
        .map(|_| independent_cascade(g, seeds, p, rng).reach())
        .sum::<usize>() as f64
        / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Timestamp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path(n: usize) -> TemporalGraph {
        let mut g = TemporalGraph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(i as u32 - 1), NodeId(i as u32), Timestamp::ZERO)
                .unwrap();
        }
        g
    }

    #[test]
    fn p_zero_reaches_only_seeds() {
        let g = path(5);
        let mut rng = StdRng::seed_from_u64(1);
        let r = independent_cascade(&g, &[NodeId(2)], 0.0, &mut rng);
        assert_eq!(r.activated, vec![NodeId(2)]);
        assert_eq!(r.reach(), 1);
        assert_eq!(r.depth(), 0);
    }

    #[test]
    fn p_one_floods_the_component() {
        let g = path(6);
        let mut rng = StdRng::seed_from_u64(2);
        let r = independent_cascade(&g, &[NodeId(0)], 1.0, &mut rng);
        assert_eq!(r.reach(), 6);
        assert_eq!(r.depth(), 5);
        // Hops equal BFS distance on p=1.
        for (n, h) in r.activated.iter().zip(&r.hops) {
            assert_eq!(*h, n.0);
        }
    }

    #[test]
    fn duplicate_seeds_counted_once() {
        let g = path(4);
        let mut rng = StdRng::seed_from_u64(3);
        let r = independent_cascade(&g, &[NodeId(1), NodeId(1)], 0.0, &mut rng);
        assert_eq!(r.reach(), 1);
    }

    #[test]
    fn reach_grows_with_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::barabasi_albert(500, 3, Timestamp::ZERO, &mut rng);
        let seeds = [NodeId(5)];
        let low = expected_reach(&g, &seeds, 0.02, 200, &mut rng);
        let high = expected_reach(&g, &seeds, 0.3, 200, &mut rng);
        assert!(
            high > 3.0 * low,
            "reach must grow with p: {low} -> {high}"
        );
    }

    #[test]
    #[should_panic(expected = "seed out of range")]
    fn bad_seed_panics() {
        let g = path(2);
        let mut rng = StdRng::seed_from_u64(5);
        independent_cascade(&g, &[NodeId(9)], 0.5, &mut rng);
    }

    #[test]
    fn zero_trials_reach_zero() {
        let g = path(3);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(expected_reach(&g, &[NodeId(0)], 0.5, 0, &mut rng), 0.0);
    }
}
