//! Cut and community metrics.
//!
//! The core assumption the paper tests is that Sybil regions are separated
//! from the honest region by a *small edge cut* (few attack edges relative
//! to internal Sybil edges). These helpers quantify exactly that: internal
//! vs. crossing edge counts, conductance, and the audience (distinct honest
//! neighbors) of a node set — the quantities of Table 2 and Fig. 7.

use crate::graph::{NodeId, TemporalGraph};
use std::collections::HashSet;

/// Edge statistics of a node set `S` within graph `g`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CutStats {
    /// Edges with both endpoints in `S` (the paper's "Sybil edges" when `S`
    /// is a Sybil component).
    pub internal_edges: usize,
    /// Edges with exactly one endpoint in `S` (the paper's "attack edges").
    pub crossing_edges: usize,
    /// Distinct outside endpoints of crossing edges (Table 2's "Audience").
    pub audience: usize,
}

/// Compute [`CutStats`] for the node set `set`.
pub fn cut_stats(g: &TemporalGraph, set: &[NodeId]) -> CutStats {
    let members: HashSet<NodeId> = set.iter().copied().collect();
    let mut ordered: Vec<NodeId> = members.iter().copied().collect();
    ordered.sort_unstable();
    let mut internal = 0usize;
    let mut crossing = 0usize;
    let mut audience: HashSet<NodeId> = HashSet::new();
    for &n in &ordered {
        for nb in g.neighbors(n) {
            if members.contains(&nb.node) {
                internal += 1; // counted from both sides; halve below
            } else {
                crossing += 1;
                audience.insert(nb.node);
            }
        }
    }
    CutStats {
        internal_edges: internal / 2,
        crossing_edges: crossing,
        audience: audience.len(),
    }
}

/// Conductance of `S`: `cut(S) / min(vol(S), vol(V \ S))`, in `[0, 1]`.
/// Lower conductance = better-separated community. Returns `None` when
/// either side has zero volume.
pub fn conductance(g: &TemporalGraph, set: &[NodeId]) -> Option<f64> {
    let members: HashSet<NodeId> = set.iter().copied().collect();
    let mut ordered: Vec<NodeId> = members.iter().copied().collect();
    ordered.sort_unstable();
    let mut vol_s = 0usize;
    let mut cut = 0usize;
    for &n in &ordered {
        vol_s += g.degree(n);
        for nb in g.neighbors(n) {
            if !members.contains(&nb.node) {
                cut += 1;
            }
        }
    }
    let vol_rest = g.volume().checked_sub(vol_s)?;
    let denom = vol_s.min(vol_rest);
    if denom == 0 {
        None
    } else {
        Some(cut as f64 / denom as f64)
    }
}

/// Number of edges crossing between `a_set` and `b_set` (assumed disjoint).
pub fn edges_between(g: &TemporalGraph, a_set: &[NodeId], b_set: &[NodeId]) -> usize {
    let b: HashSet<NodeId> = b_set.iter().copied().collect();
    let mut count = 0usize;
    for &n in a_set {
        for nb in g.neighbors(n) {
            if b.contains(&nb.node) {
                count += 1;
            }
        }
    }
    count
}

/// Newman modularity of a two-way partition given by `in_part`
/// (true = community 1). Diagnostic for injected-community null models.
pub fn two_way_modularity<F>(g: &TemporalGraph, in_part: F) -> f64
where
    F: Fn(NodeId) -> bool,
{
    let m = g.num_edges() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let mut internal = [0f64; 2];
    let mut vol = [0f64; 2];
    for e in g.edges() {
        let (pa, pb) = (in_part(e.a) as usize, in_part(e.b) as usize);
        if pa == pb {
            internal[pa] += 1.0;
        }
    }
    for n in g.nodes() {
        vol[in_part(n) as usize] += g.degree(n) as f64;
    }
    (0..2)
        .map(|c| internal[c] / m - (vol[c] / (2.0 * m)).powi(2))
        .sum()
}

/// Rich-club coefficient φ(k): the edge density among nodes of degree
/// > k. A φ(k) near 1 for large k means the popular core is a near-clique
/// > — the effect that inflates simulated Sybils' clustering relative to
/// > Renren scale (see EXPERIMENTS.md). `None` when fewer than two nodes
/// > exceed `k`.
pub fn rich_club_coefficient(g: &TemporalGraph, k: usize) -> Option<f64> {
    let rich: Vec<NodeId> = g.nodes().filter(|&n| g.degree(n) > k).collect();
    if rich.len() < 2 {
        return None;
    }
    let members: HashSet<NodeId> = rich.iter().copied().collect();
    let mut internal = 0usize;
    for &n in &rich {
        for nb in g.neighbors(n) {
            if members.contains(&nb.node) {
                internal += 1;
            }
        }
    }
    let pairs = rich.len() * (rich.len() - 1) / 2;
    Some((internal / 2) as f64 / pairs as f64)
}

/// Degree assortativity: the Pearson correlation of endpoint degrees over
/// all edges. Positive on social graphs (popular users befriend popular
/// users), negative on hub-and-spoke topologies. `None` with < 2 edges or
/// zero variance.
pub fn degree_assortativity(g: &TemporalGraph) -> Option<f64> {
    let m = g.num_edges();
    if m < 2 {
        return None;
    }
    // Treat each edge as two ordered pairs so the measure is symmetric.
    let mut sum_x = 0.0;
    let mut sum_xx = 0.0;
    let mut sum_xy = 0.0;
    let n = (2 * m) as f64;
    for e in g.edges() {
        let (da, db) = (g.degree(e.a) as f64, g.degree(e.b) as f64);
        sum_x += da + db;
        sum_xx += da * da + db * db;
        sum_xy += 2.0 * da * db;
    }
    let mean = sum_x / n;
    let var = sum_xx / n - mean * mean;
    if var <= 1e-12 {
        return None;
    }
    let cov = sum_xy / n - mean * mean;
    Some(cov / var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Timestamp;

    /// Two triangles joined by a single bridge edge 2-3.
    fn barbell() -> TemporalGraph {
        let mut g = TemporalGraph::with_nodes(6);
        let t = Timestamp::ZERO;
        g.add_edge(NodeId(0), NodeId(1), t).unwrap();
        g.add_edge(NodeId(1), NodeId(2), t).unwrap();
        g.add_edge(NodeId(0), NodeId(2), t).unwrap();
        g.add_edge(NodeId(3), NodeId(4), t).unwrap();
        g.add_edge(NodeId(4), NodeId(5), t).unwrap();
        g.add_edge(NodeId(3), NodeId(5), t).unwrap();
        g.add_edge(NodeId(2), NodeId(3), t).unwrap();
        g
    }

    #[test]
    fn cut_stats_of_half_barbell() {
        let g = barbell();
        let s = cut_stats(&g, &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(s.internal_edges, 3);
        assert_eq!(s.crossing_edges, 1);
        assert_eq!(s.audience, 1);
    }

    #[test]
    fn cut_stats_empty_set() {
        let g = barbell();
        assert_eq!(cut_stats(&g, &[]), CutStats::default());
    }

    #[test]
    fn conductance_of_good_community_is_low() {
        let g = barbell();
        let phi = conductance(&g, &[NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        // vol(S)=7, cut=1 -> 1/7.
        assert!((phi - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn conductance_none_for_trivial_sets() {
        let g = barbell();
        assert_eq!(conductance(&g, &[]), None);
        let all: Vec<NodeId> = g.nodes().collect();
        assert_eq!(conductance(&g, &all), None);
    }

    #[test]
    fn edges_between_counts_bridge() {
        let g = barbell();
        let a = [NodeId(0), NodeId(1), NodeId(2)];
        let b = [NodeId(3), NodeId(4), NodeId(5)];
        assert_eq!(edges_between(&g, &a, &b), 1);
        assert_eq!(edges_between(&g, &b, &a), 1);
    }

    #[test]
    fn modularity_positive_for_true_split() {
        let g = barbell();
        let q = two_way_modularity(&g, |n| n.0 <= 2);
        assert!(q > 0.3, "modularity {q}");
        // A random-ish split scores worse.
        let q_bad = two_way_modularity(&g, |n| n.0 % 2 == 0);
        assert!(q > q_bad);
    }

    #[test]
    fn modularity_empty_graph_zero() {
        let g = TemporalGraph::with_nodes(4);
        assert_eq!(two_way_modularity(&g, |n| n.0 < 2), 0.0);
    }

    #[test]
    fn rich_club_of_clique_plus_pendants() {
        // 4-clique (degrees >= 3) plus pendants on node 0.
        let mut g = TemporalGraph::with_nodes(7);
        let t = Timestamp::ZERO;
        for i in 0..4u32 {
            for j in (i + 1)..4u32 {
                g.add_edge(NodeId(i), NodeId(j), t).unwrap();
            }
        }
        g.add_edge(NodeId(0), NodeId(4), t).unwrap();
        g.add_edge(NodeId(0), NodeId(5), t).unwrap();
        g.add_edge(NodeId(0), NodeId(6), t).unwrap();
        // Nodes with degree > 2: the clique (deg 3,3,3 and 6). Fully linked.
        assert_eq!(rich_club_coefficient(&g, 2), Some(1.0));
        // Degree > 5: only node 0 -> undefined.
        assert_eq!(rich_club_coefficient(&g, 5), None);
    }

    #[test]
    fn assortativity_signs() {
        // Star: hub joins only leaves -> strongly disassortative.
        let mut star = TemporalGraph::with_nodes(6);
        for i in 1..6u32 {
            star.add_edge(NodeId(0), NodeId(i), Timestamp::ZERO).unwrap();
        }
        // All endpoint degree pairs are (5,1): zero variance on neither
        // side... combined variance exists; correlation is -1.
        let r = degree_assortativity(&star).unwrap();
        assert!(r < -0.99, "star assortativity {r}");
        // Regular ring: all degrees equal -> undefined (no variance).
        let mut ring = TemporalGraph::with_nodes(5);
        for i in 0..5u32 {
            ring.add_edge(NodeId(i), NodeId((i + 1) % 5), Timestamp::ZERO)
                .unwrap();
        }
        assert_eq!(degree_assortativity(&ring), None);
    }

    #[test]
    fn assortativity_none_for_tiny_graphs() {
        let mut g = TemporalGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), Timestamp::ZERO).unwrap();
        assert_eq!(degree_assortativity(&g), None);
    }
}
