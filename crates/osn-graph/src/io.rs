//! CSV edge-list import/export.
//!
//! Interchange format so simulated graphs can be inspected with external
//! tooling (or real edge lists replayed through the pipeline). Format:
//! a header line `src,dst,time_secs` followed by one edge per line.

use crate::graph::{NodeId, TemporalGraph, Timestamp};
use std::io::{self, BufRead, Write};

/// Write `g` as a CSV edge list.
pub fn write_edge_list<W: Write>(g: &TemporalGraph, mut w: W) -> io::Result<()> {
    writeln!(w, "src,dst,time_secs")?;
    for e in g.edges() {
        writeln!(w, "{},{},{}", e.a.0, e.b.0, e.time.as_secs())?;
    }
    Ok(())
}

/// Errors from [`read_edge_list`].
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line was malformed; carries the 1-based line number and content.
    Parse(usize, String),
    /// An edge was invalid (self-loop or duplicate); carries the 1-based
    /// line number and the structural error.
    BadEdge(usize, crate::graph::GraphError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io error: {e}"),
            ReadError::Parse(l, s) => write!(f, "parse error on line {l}: {s:?}"),
            ReadError::BadEdge(l, s) => write!(f, "invalid edge on line {l}: {s}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Read a CSV edge list (as written by [`write_edge_list`]); node count is
/// inferred as `max id + 1`. An optional header line is skipped.
pub fn read_edge_list<R: BufRead>(r: R) -> Result<TemporalGraph, ReadError> {
    let mut rows: Vec<(u32, u32, u64)> = Vec::new();
    let mut max_id = 0u32;
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || (i == 0 && trimmed.starts_with("src")) {
            continue;
        }
        let mut parts = trimmed.split(',');
        let parse = |s: Option<&str>| -> Option<u64> { s?.trim().parse().ok() };
        let (a, b, t) = match (
            parse(parts.next()),
            parse(parts.next()),
            parse(parts.next()),
        ) {
            (Some(a), Some(b), Some(t)) if a <= u32::MAX as u64 && b <= u32::MAX as u64 => {
                (a as u32, b as u32, t)
            }
            _ => return Err(ReadError::Parse(i + 1, line.clone())),
        };
        max_id = max_id.max(a).max(b);
        rows.push((a, b, t));
    }
    let mut g = TemporalGraph::with_nodes(if rows.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    for (i, (a, b, t)) in rows.into_iter().enumerate() {
        g.add_edge(NodeId(a), NodeId(b), Timestamp(t))
            .map_err(|e| ReadError::BadEdge(i + 2, e))?;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TemporalGraph {
        let mut g = TemporalGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), Timestamp(10)).unwrap();
        g.add_edge(NodeId(2), NodeId(3), Timestamp(20)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), Timestamp(30)).unwrap();
        g
    }

    #[test]
    fn roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g2.num_nodes(), 4);
        assert_eq!(g2.num_edges(), 3);
        for e in g.edges() {
            assert!(g2.has_edge(e.a, e.b));
        }
        // Times preserved.
        assert_eq!(g2.edges()[0].time, Timestamp(10));
    }

    #[test]
    fn header_is_optional() {
        let data = "0,1,5\n1,2,6\n";
        let g = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_nodes(), 3);
    }

    #[test]
    fn empty_input() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        let g2 = read_edge_list("src,dst,time_secs\n".as_bytes()).unwrap();
        assert_eq!(g2.num_nodes(), 0);
    }

    #[test]
    fn malformed_line_errors() {
        let err = read_edge_list("0,1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadError::Parse(1, _)));
        let err2 = read_edge_list("a,b,c\n".as_bytes()).unwrap_err();
        assert!(matches!(err2, ReadError::Parse(1, _)));
    }

    #[test]
    fn self_loop_errors() {
        let err = read_edge_list("3,3,0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadError::BadEdge(_, _)));
    }

    #[test]
    fn duplicate_errors() {
        let err = read_edge_list("0,1,0\n1,0,5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadError::BadEdge(_, _)));
    }

    #[test]
    fn whitespace_tolerated() {
        let g = read_edge_list(" 0 , 1 , 7 \n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges()[0].time, Timestamp(7));
    }
}
