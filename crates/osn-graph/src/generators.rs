//! Synthetic graph generators.
//!
//! The paper notes that graph-based defenses were only ever validated on
//! "real social graphs with Sybil communities artificially injected". These
//! generators build such null models: Erdős–Rényi, Barabási–Albert
//! (scale-free, like OSN degree distributions), Watts–Strogatz (high
//! clustering), and a configuration model for degree-preserving rewiring.

use crate::graph::{NodeId, TemporalGraph, Timestamp};
use rand::prelude::*;
use std::collections::HashSet;

/// Erdős–Rényi `G(n, p)`: every pair independently linked with probability
/// `p`. Uses geometric skipping, so sparse graphs cost `O(n + m)`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, t: Timestamp, rng: &mut R) -> TemporalGraph {
    let mut g = TemporalGraph::with_nodes(n);
    if n < 2 || p <= 0.0 {
        return g;
    }
    if p >= 1.0 {
        for i in 0..n {
            for j in (i + 1)..n {
                let _ = g.add_edge(NodeId(i as u32), NodeId(j as u32), t);
            }
        }
        return g;
    }
    // Iterate pair index k over the C(n,2) pairs with geometric jumps.
    let total = n as u64 * (n as u64 - 1) / 2;
    let log_q = (1.0 - p).ln();
    let mut k: u64 = 0;
    loop {
        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let skip = (u.ln() / log_q).floor() as u64;
        k = k.saturating_add(skip);
        if k >= total {
            break;
        }
        let (i, j) = pair_from_index(k, n as u64);
        let _ = g.add_edge(NodeId(i as u32), NodeId(j as u32), t);
        k += 1;
    }
    g
}

/// Map a linear index `k < C(n,2)` to the k-th pair `(i, j)`, `i < j`, in
/// row-major order.
fn pair_from_index(k: u64, n: u64) -> (u64, u64) {
    // Row i contains (n - 1 - i) pairs. Find i by walking rows; rows shrink,
    // so use the closed form via quadratic inversion.
    let kf = k as f64;
    let nf = n as f64;
    let mut i = (nf - 0.5 - ((nf - 0.5) * (nf - 0.5) - 2.0 * kf).max(0.0).sqrt()).floor() as u64;
    // Fix up floating error.
    loop {
        let row_start = i * (n - 1) - i * (i.saturating_sub(1)) / 2; // sum of previous rows
        let row_len = n - 1 - i;
        if k < row_start {
            i -= 1;
        } else if k >= row_start + row_len {
            i += 1;
        } else {
            let j = i + 1 + (k - row_start);
            return (i, j);
        }
    }
}

/// Barabási–Albert preferential attachment: start from an `m`-clique, then
/// each new node attaches to `m` existing nodes chosen proportionally to
/// degree (repeated-endpoint trick).
pub fn barabasi_albert<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    t: Timestamp,
    rng: &mut R,
) -> TemporalGraph {
    assert!(m >= 1, "BA requires m >= 1");
    assert!(n > m, "BA requires n > m");
    let mut g = TemporalGraph::with_nodes(n);
    // Endpoint multiset: each node appears once per incident edge.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    // Seed clique over nodes 0..=m.
    for i in 0..=m {
        for j in (i + 1)..=m {
            if g.add_edge(NodeId(i as u32), NodeId(j as u32), t).is_ok() {
                endpoints.push(i as u32);
                endpoints.push(j as u32);
            }
        }
    }
    for v in (m + 1)..n {
        let mut chosen: HashSet<u32> = HashSet::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            guard += 1;
            let u = endpoints[rng.random_range(0..endpoints.len())];
            if u as usize != v {
                chosen.insert(u);
            }
        }
        // Sort for determinism: HashSet iteration order is randomized per
        // process, and edge-insertion order feeds back into later draws.
        let mut picked: Vec<u32> = chosen.into_iter().collect();
        picked.sort_unstable();
        for u in picked {
            if g.add_edge(NodeId(v as u32), NodeId(u), t).is_ok() {
                endpoints.push(v as u32);
                endpoints.push(u);
            }
        }
    }
    g
}

/// Watts–Strogatz small-world: ring lattice with `k` nearest neighbors per
/// side... (each node linked to `k/2` on each side), each edge rewired with
/// probability `beta`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    t: Timestamp,
    rng: &mut R,
) -> TemporalGraph {
    assert!(k.is_multiple_of(2), "WS requires even k");
    assert!(n > k, "WS requires n > k");
    let mut g = TemporalGraph::with_nodes(n);
    for i in 0..n {
        for d in 1..=(k / 2) {
            let j = (i + d) % n;
            if rng.random_range(0.0..1.0) < beta {
                // Rewire: pick a random non-self, non-duplicate target.
                let mut guard = 0;
                loop {
                    guard += 1;
                    let r = rng.random_range(0..n);
                    if r != i
                        && !g.has_edge(NodeId(i as u32), NodeId(r as u32))
                        && g.add_edge(NodeId(i as u32), NodeId(r as u32), t).is_ok()
                    {
                        break;
                    }
                    if guard > 100 {
                        // Dense corner case: fall back to the lattice edge.
                        let _ = g.add_edge(NodeId(i as u32), NodeId(j as u32), t);
                        break;
                    }
                }
            } else {
                let _ = g.add_edge(NodeId(i as u32), NodeId(j as u32), t);
            }
        }
    }
    g
}

/// Configuration model: a simple graph with (approximately) the requested
/// degree sequence, via stub matching with self-loop/multi-edge rejection.
/// Leftover unmatchable stubs are dropped, so low-degree tails may lose a
/// few edges.
pub fn configuration_model<R: Rng + ?Sized>(
    degrees: &[usize],
    t: Timestamp,
    rng: &mut R,
) -> TemporalGraph {
    let n = degrees.len();
    let mut g = TemporalGraph::with_nodes(n);
    let mut stubs: Vec<u32> = Vec::with_capacity(degrees.iter().sum());
    for (i, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(i as u32, d));
    }
    stubs.shuffle(rng);
    // Greedy pairing with bounded retries for rejected pairs.
    let mut retries = 0usize;
    while stubs.len() >= 2 {
        let (Some(b), Some(a)) = (stubs.pop(), stubs.pop()) else {
            break; // len checked above; keeps the pairing panic-free
        };
        if a != b && g.add_edge(NodeId(a), NodeId(b), t).is_ok() {
            retries = 0;
            continue;
        }
        // Rejected: reinsert at random positions and reshuffle occasionally.
        stubs.push(a);
        stubs.push(b);
        stubs.shuffle(rng);
        retries += 1;
        if retries > 200 {
            break; // Remaining stubs are unmatchable (e.g. all same node).
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn er_edge_count_close_to_expectation() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 500;
        let p = 0.02;
        let g = erdos_renyi(n, p, Timestamp::ZERO, &mut rng);
        let expect = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expect).abs() < 4.0 * expect.sqrt() + 10.0,
            "edges {got} vs expected {expect}"
        );
    }

    #[test]
    fn er_degenerate_cases() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(erdos_renyi(10, 0.0, Timestamp::ZERO, &mut rng).num_edges(), 0);
        assert_eq!(erdos_renyi(0, 0.5, Timestamp::ZERO, &mut rng).num_nodes(), 0);
        let full = erdos_renyi(6, 1.0, Timestamp::ZERO, &mut rng);
        assert_eq!(full.num_edges(), 15);
    }

    #[test]
    fn pair_index_roundtrip() {
        let n = 7u64;
        let mut k = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(pair_from_index(k, n), (i, j), "k={k}");
                k += 1;
            }
        }
    }

    #[test]
    fn ba_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(300, 3, Timestamp::ZERO, &mut rng);
        assert_eq!(g.num_nodes(), 300);
        // Each post-seed node adds (up to) m edges; clique adds C(4,2)=6.
        assert!(g.num_edges() <= 6 + (300 - 4) * 3);
        assert!(g.num_edges() >= (300 - 4) * 2, "most nodes attach m edges");
        // Scale-free signature: max degree well above m.
        let max_deg = g.nodes().map(|n| g.degree(n)).max().unwrap();
        assert!(max_deg > 15, "max degree {max_deg}");
        // Connected (BA is connected by construction).
        let comps = crate::components::connected_components(&g);
        assert_eq!(comps.len(), 1);
    }

    #[test]
    fn ws_degree_and_clustering() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = watts_strogatz(200, 6, 0.05, Timestamp::ZERO, &mut rng);
        assert_eq!(g.num_nodes(), 200);
        // Edge count equals n * k / 2 when no rewire collisions drop edges.
        assert!(g.num_edges() as f64 >= 0.97 * (200.0 * 6.0 / 2.0));
        // Low-beta WS retains high clustering.
        let cc = crate::clustering::average_clustering(&g);
        assert!(cc > 0.3, "WS clustering {cc}");
    }

    #[test]
    fn configuration_model_matches_degrees_approximately() {
        let mut rng = StdRng::seed_from_u64(5);
        let degrees: Vec<usize> = (0..200).map(|i| 1 + (i % 5)).collect();
        let g = configuration_model(&degrees, Timestamp::ZERO, &mut rng);
        let want: usize = degrees.iter().sum::<usize>() / 2;
        let got = g.num_edges();
        assert!(
            got as f64 >= 0.95 * want as f64,
            "configuration model kept {got}/{want} edges"
        );
        // No node exceeds its requested degree.
        for (i, &d) in degrees.iter().enumerate() {
            assert!(g.degree(NodeId(i as u32)) <= d);
        }
    }

    #[test]
    #[should_panic(expected = "BA requires n > m")]
    fn ba_rejects_bad_params() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = barabasi_albert(3, 3, Timestamp::ZERO, &mut rng);
    }

    #[test]
    #[should_panic(expected = "WS requires even k")]
    fn ws_rejects_odd_k() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = watts_strogatz(10, 3, 0.1, Timestamp::ZERO, &mut rng);
    }
}
