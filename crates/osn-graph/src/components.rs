//! Connected components of the full graph or of induced node subsets.
//!
//! §3.3 of the paper builds the graph induced by Sybils with at least one
//! Sybil edge and finds 7,094 connected components, 98% of size < 10 and one
//! giant component of 63,541 Sybils. [`components_of_subset`] computes
//! exactly that decomposition given a membership predicate.

use crate::graph::{NodeId, TemporalGraph};
use crate::par;
use crate::unionfind::UnionFind;

/// A connected component: its member nodes (ascending id order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Component {
    /// Member nodes, sorted ascending.
    pub nodes: Vec<NodeId>,
}

impl Component {
    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the component has no nodes (never produced by this module).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Connected components of the whole graph, largest first.
///
/// Isolated nodes form singleton components.
pub fn connected_components(g: &TemporalGraph) -> Vec<Component> {
    components_of_subset(g, |_| true)
}

/// Connected components of the subgraph induced by `keep`, largest first.
///
/// Only edges with **both** endpoints satisfying `keep` connect components;
/// nodes failing `keep` are excluded entirely. Isolated kept nodes form
/// singleton components (callers analyzing “Sybils with ≥ 1 Sybil edge”
/// should filter on degree-in-subset first, or drop singletons afterwards).
///
/// The membership predicate (often the expensive part — e.g. an adjacency
/// scan per node) is evaluated for all nodes in parallel; the union-find
/// pass itself is sequential and unaffected by thread count.
pub fn components_of_subset<F>(g: &TemporalGraph, keep: F) -> Vec<Component>
where
    F: Fn(NodeId) -> bool + Sync,
{
    let n = g.num_nodes();
    let mut uf = UnionFind::new(n);
    let kept: Vec<bool> = par::map_indexed(n, |i| keep(NodeId(i as u32)));
    for e in g.edges() {
        if kept[e.a.index()] && kept[e.b.index()] {
            uf.union(e.a.index(), e.b.index());
        }
    }
    let mut by_root: std::collections::HashMap<usize, Vec<NodeId>> =
        std::collections::HashMap::new();
    for (i, &keep_i) in kept.iter().enumerate() {
        if keep_i {
            let r = uf.find(i);
            by_root.entry(r).or_default().push(NodeId(i as u32));
        }
    }
    let mut comps: Vec<Component> = by_root
        .into_values()
        .map(|mut nodes| {
            nodes.sort_unstable();
            Component { nodes }
        })
        .collect();
    comps.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.nodes.cmp(&b.nodes)));
    comps
}

/// Sizes of the given components (already largest-first).
pub fn component_sizes(comps: &[Component]) -> Vec<usize> {
    comps.iter().map(|c| c.len()).collect()
}

/// The giant (largest) component, if any.
pub fn giant_component(comps: &[Component]) -> Option<&Component> {
    comps.first()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Timestamp;

    fn graph_two_triangles_and_isolate() -> TemporalGraph {
        // Nodes 0-1-2 triangle, 3-4 edge, 5 isolated.
        let mut g = TemporalGraph::with_nodes(6);
        let t = Timestamp::ZERO;
        g.add_edge(NodeId(0), NodeId(1), t).unwrap();
        g.add_edge(NodeId(1), NodeId(2), t).unwrap();
        g.add_edge(NodeId(0), NodeId(2), t).unwrap();
        g.add_edge(NodeId(3), NodeId(4), t).unwrap();
        g
    }

    #[test]
    fn full_components_largest_first() {
        let g = graph_two_triangles_and_isolate();
        let comps = connected_components(&g);
        assert_eq!(component_sizes(&comps), vec![3, 2, 1]);
        assert_eq!(
            giant_component(&comps).unwrap().nodes,
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn subset_components_exclude_cross_edges() {
        let g = graph_two_triangles_and_isolate();
        // Keep only odd nodes: 1, 3, 5. No kept-kept edges.
        let comps = components_of_subset(&g, |n| n.0 % 2 == 1);
        assert_eq!(component_sizes(&comps), vec![1, 1, 1]);
    }

    #[test]
    fn subset_components_keep_internal_edges() {
        let g = graph_two_triangles_and_isolate();
        let comps = components_of_subset(&g, |n| n.0 <= 1); // nodes 0 and 1 plus their edge
        assert_eq!(component_sizes(&comps), vec![2]);
        assert_eq!(comps[0].nodes, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn empty_graph_no_components() {
        let g = TemporalGraph::new();
        assert!(connected_components(&g).is_empty());
    }

    #[test]
    fn singleton_components_are_reported() {
        let g = TemporalGraph::with_nodes(3);
        let comps = connected_components(&g);
        assert_eq!(component_sizes(&comps), vec![1, 1, 1]);
    }

    #[test]
    fn deterministic_ordering_for_ties() {
        let mut g = TemporalGraph::with_nodes(4);
        g.add_edge(NodeId(2), NodeId(3), Timestamp::ZERO).unwrap();
        g.add_edge(NodeId(0), NodeId(1), Timestamp::ZERO).unwrap();
        let comps = connected_components(&g);
        // Same size; tie broken by node ids ascending.
        assert_eq!(comps[0].nodes, vec![NodeId(0), NodeId(1)]);
        assert_eq!(comps[1].nodes, vec![NodeId(2), NodeId(3)]);
    }
}
