//! Breadth-first traversal, distances, and reachability.

use crate::graph::{NodeId, TemporalGraph};
use std::collections::VecDeque;

/// Nodes reachable from `start`, in BFS order (including `start`).
pub fn bfs_order(g: &TemporalGraph, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.num_nodes()];
    let mut order = Vec::new();
    let mut q = VecDeque::new();
    seen[start.index()] = true;
    q.push_back(start);
    while let Some(u) = q.pop_front() {
        order.push(u);
        for nb in g.neighbors(u) {
            if !seen[nb.node.index()] {
                seen[nb.node.index()] = true;
                q.push_back(nb.node);
            }
        }
    }
    order
}

/// Hop distance from `start` to every node; `None` for unreachable nodes.
pub fn distances(g: &TemporalGraph, start: NodeId) -> Vec<Option<u32>> {
    let mut dist: Vec<Option<u32>> = vec![None; g.num_nodes()];
    let mut q = VecDeque::new();
    dist[start.index()] = Some(0);
    q.push_back((start, 0u32));
    while let Some((u, du)) = q.pop_front() {
        for nb in g.neighbors(u) {
            if dist[nb.node.index()].is_none() {
                dist[nb.node.index()] = Some(du + 1);
                q.push_back((nb.node, du + 1));
            }
        }
    }
    dist
}

/// Shortest-path hop distance between two nodes, if connected.
pub fn shortest_path_len(g: &TemporalGraph, a: NodeId, b: NodeId) -> Option<u32> {
    if a == b {
        return Some(0);
    }
    let mut dist: Vec<Option<u32>> = vec![None; g.num_nodes()];
    let mut q = VecDeque::new();
    dist[a.index()] = Some(0);
    q.push_back((a, 0u32));
    while let Some((u, du)) = q.pop_front() {
        for nb in g.neighbors(u) {
            if dist[nb.node.index()].is_none() {
                if nb.node == b {
                    return Some(du + 1);
                }
                dist[nb.node.index()] = Some(du + 1);
                q.push_back((nb.node, du + 1));
            }
        }
    }
    None
}

/// Nodes within `radius` hops of `start` (including `start`).
pub fn ball(g: &TemporalGraph, start: NodeId, radius: u32) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut dist: Vec<Option<u32>> = vec![None; g.num_nodes()];
    let mut q = VecDeque::new();
    dist[start.index()] = Some(0);
    q.push_back((start, 0u32));
    while let Some((u, du)) = q.pop_front() {
        out.push(u);
        if du == radius {
            continue;
        }
        for nb in g.neighbors(u) {
            if dist[nb.node.index()].is_none() {
                dist[nb.node.index()] = Some(du + 1);
                q.push_back((nb.node, du + 1));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Timestamp;

    fn path_graph(n: usize) -> TemporalGraph {
        let mut g = TemporalGraph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(i as u32 - 1), NodeId(i as u32), Timestamp::ZERO)
                .unwrap();
        }
        g
    }

    #[test]
    fn bfs_visits_component_in_order() {
        let g = path_graph(4);
        assert_eq!(
            bfs_order(&g, NodeId(0)),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(
            bfs_order(&g, NodeId(2)),
            vec![NodeId(2), NodeId(1), NodeId(3), NodeId(0)]
        );
    }

    #[test]
    fn distances_on_path() {
        let g = path_graph(4);
        assert_eq!(
            distances(&g, NodeId(0)),
            vec![Some(0), Some(1), Some(2), Some(3)]
        );
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = path_graph(3);
        g.add_node(); // isolated node 3
        assert_eq!(distances(&g, NodeId(0))[3], None);
        assert_eq!(shortest_path_len(&g, NodeId(0), NodeId(3)), None);
    }

    #[test]
    fn shortest_path_cases() {
        let g = path_graph(5);
        assert_eq!(shortest_path_len(&g, NodeId(0), NodeId(0)), Some(0));
        assert_eq!(shortest_path_len(&g, NodeId(0), NodeId(4)), Some(4));
        assert_eq!(shortest_path_len(&g, NodeId(3), NodeId(1)), Some(2));
    }

    #[test]
    fn ball_respects_radius() {
        let g = path_graph(6);
        let mut b = ball(&g, NodeId(2), 1);
        b.sort_unstable();
        assert_eq!(b, vec![NodeId(1), NodeId(2), NodeId(3)]);
        let mut b2 = ball(&g, NodeId(0), 2);
        b2.sort_unstable();
        assert_eq!(b2, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(ball(&g, NodeId(0), 0), vec![NodeId(0)]);
    }
}
