//! Immutable CSR (compressed sparse row) snapshot of a [`TemporalGraph`].
//!
//! The mutable graph keeps per-node `Vec<Neighbor>` adjacency plus a global
//! hash set for membership tests. That layout is right for incremental
//! simulation but wrong for the measurement sweeps (§3 of the paper), which
//! are read-only and dominated by neighborhood intersection: clustering
//! coefficients probe every neighbor pair through the hash set, costing
//! O(deg²) hashed lookups per node with poor locality.
//!
//! [`CsrSnapshot::freeze`] lays the adjacency out in two flat views:
//!
//! * **id-sorted** rows (`sorted`, with creation times alongside in
//!   `sorted_times`) giving O(log deg) [`has_edge`](CsrSnapshot::has_edge)
//!   by binary search and O(deg a + deg b) merge intersection for
//!   [`mutual_friends`](CsrSnapshot::mutual_friends);
//! * **chronological** rows (`chrono`/`chrono_times`, preserving the
//!   temporal graph's edge-creation order) so the paper's "first *k*
//!   friends by time" analyses keep their semantics.
//!
//! # Chunked column storage
//!
//! The four columns are not monolithic `Vec`s: rows are grouped into
//! fixed-size **blocks** of [`BLOCK_ROWS`] consecutive nodes, each block
//! holding its own relative offsets plus column arenas. Any single row is
//! contiguous inside one block, so every accessor still returns a plain
//! slice — but an incremental rebuild ([`CsrSnapshot::merge_delta`]) only
//! re-materializes the blocks that contain grown rows and leaves every
//! other block's storage untouched. That turns a streaming engine's
//! snapshot rotation from an O(V + E) full copy into O(delta +
//! grown-blocks) work, and bounds rotation's transient memory to one
//! block instead of a second full CSR. [`CsrSnapshot::with_edges`] keeps
//! the original monolithic rebuild as the independently-coded oracle.
//!
//! Triangle-style kernels use an epoch-stamped scratch array
//! ([`NeighborScratch`]) instead of pairwise probes: marking a node's
//! friend set costs O(deg) and each membership probe is one array read, so
//! a clustering coefficient costs O(Σ deg(friend)) instead of O(deg²) hash
//! probes. Every kernel returns bit-identical values to the corresponding
//! `clustering`-module function on the source graph.

use crate::graph::{NodeId, TemporalGraph, Timestamp};

/// Rows per column block. A power of two so the block lookup is a shift;
/// small enough that an incremental rotation touching a handful of rows
/// re-materializes kilobytes, not the whole graph.
const BLOCK_ROWS: usize = 256;

/// One block of [`BLOCK_ROWS`] consecutive rows: relative offsets plus the
/// four column arenas. Rows are contiguous within their block, so row
/// accessors can hand out slices.
#[derive(Clone, Debug, Default)]
struct RowBlock {
    /// Relative row boundaries: local row `l`'s entries live at
    /// `offsets[l]..offsets[l + 1]` in all four arenas. Length
    /// `rows_in_block + 1`; first entry always 0.
    offsets: Vec<u32>,
    /// Neighbor ids per row, sorted ascending by id.
    sorted: Vec<u32>,
    /// Edge-creation times aligned with `sorted`.
    sorted_times: Vec<Timestamp>,
    /// Neighbor ids per row in edge-creation (chronological) order.
    chrono: Vec<u32>,
    /// Edge-creation times aligned with `chrono`.
    chrono_times: Vec<Timestamp>,
}

impl RowBlock {
    fn empty(rows: usize) -> Self {
        RowBlock {
            offsets: vec![0; rows + 1],
            ..RowBlock::default()
        }
    }

    /// Number of rows in this block.
    fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total entries stored (half-edges) across the block's rows.
    fn len(&self) -> usize {
        self.offsets[self.offsets.len() - 1] as usize
    }

    /// Local range of local row `l`.
    #[inline]
    fn row(&self, l: usize) -> std::ops::Range<usize> {
        debug_assert!(l + 1 < self.offsets.len());
        self.offsets[l] as usize..self.offsets[l + 1] as usize
    }
}

/// Frozen read-only CSR view of a [`TemporalGraph`], stored as chunked
/// column blocks (see the module docs).
#[derive(Clone, Debug)]
pub struct CsrSnapshot {
    num_nodes: usize,
    num_edges: usize,
    blocks: Vec<RowBlock>,
}

/// Reusable epoch-stamped mark array for neighborhood kernels.
///
/// `marks[v] == epoch` means "v is in the current friend set"; bumping the
/// epoch clears the set in O(1). One scratch per thread is enough for any
/// number of kernel calls.
#[derive(Clone, Debug, Default)]
pub struct NeighborScratch {
    marks: Vec<u32>,
    epoch: u32,
}

impl NeighborScratch {
    /// Scratch sized for a snapshot with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        NeighborScratch {
            marks: vec![0; num_nodes],
            epoch: 0,
        }
    }

    /// Start a new (empty) friend set, resizing if the snapshot grew.
    pub fn begin(&mut self, num_nodes: usize) {
        if self.marks.len() < num_nodes {
            self.marks.resize(num_nodes, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale marks could collide with the new epoch.
            self.marks.fill(0);
            self.epoch = 1;
        }
    }

    /// Add `v` to the current friend set.
    #[inline]
    pub fn mark(&mut self, v: u32) {
        self.marks[v as usize] = self.epoch;
    }

    /// Is `v` in the current friend set?
    #[inline]
    pub fn is_marked(&self, v: u32) -> bool {
        self.marks[v as usize] == self.epoch
    }
}

/// Reusable transient buffers for [`CsrSnapshot::merge_delta_with`]: the
/// unfolded half-edge array, the counting-sort bookkeeping, and the
/// per-block staging area. A rotation's working set is proportional to
/// the delta being folded; holding one `MergeScratch` across rotations
/// keeps those pages faulted in instead of re-allocating (and
/// first-touching) them on every fold.
#[derive(Clone, Debug, Default)]
pub struct MergeScratch {
    /// Additions unfolded to half-edges, `(row, neighbor, time)`.
    half: Vec<(u32, u32, Timestamp)>,
    /// Counting-sort block boundaries (`blocks + 1` entries).
    starts: Vec<u32>,
    /// Counting-sort write cursors (one per block).
    cursor: Vec<u32>,
    /// Half-edges grouped by owning block.
    grouped: Vec<(u32, u32, Timestamp)>,
    /// One block's additions, row-sorted, handed to the rebuild.
    block: Vec<(u32, u32, Timestamp)>,
    /// One row's additions sorted by neighbor id, recycled across every
    /// row of every rebuilt block instead of allocating per row.
    tail: Vec<(u32, Timestamp)>,
}

impl CsrSnapshot {
    /// Assemble the block layout from monolithic columns — the tail of the
    /// one-shot builders ([`freeze`](Self::freeze),
    /// [`with_edges`](Self::with_edges)), which construct flat arrays and
    /// chop them into blocks here.
    fn from_monolithic(
        offsets: Vec<u32>,
        sorted: Vec<u32>,
        sorted_times: Vec<Timestamp>,
        chrono: Vec<u32>,
        chrono_times: Vec<Timestamp>,
        num_edges: usize,
    ) -> Self {
        let n = offsets.len() - 1;
        let mut blocks = Vec::with_capacity(n.div_ceil(BLOCK_ROWS));
        for b0 in (0..n).step_by(BLOCK_ROWS) {
            let rows = BLOCK_ROWS.min(n - b0);
            let base = offsets[b0];
            let (lo, hi) = (base as usize, offsets[b0 + rows] as usize);
            blocks.push(RowBlock {
                offsets: offsets[b0..=b0 + rows].iter().map(|&o| o - base).collect(),
                sorted: sorted[lo..hi].to_vec(),
                sorted_times: sorted_times[lo..hi].to_vec(),
                chrono: chrono[lo..hi].to_vec(),
                chrono_times: chrono_times[lo..hi].to_vec(),
            });
        }
        CsrSnapshot {
            num_nodes: n,
            num_edges,
            blocks,
        }
    }

    /// Freeze `g` into CSR form. O(V + E log E) for the per-row id sort.
    pub fn freeze(g: &TemporalGraph) -> Self {
        let n = g.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let half_edges = 2 * g.num_edges();
        let mut sorted = Vec::with_capacity(half_edges);
        let mut sorted_times = Vec::with_capacity(half_edges);
        let mut chrono = Vec::with_capacity(half_edges);
        let mut chrono_times = Vec::with_capacity(half_edges);
        let mut row: Vec<(u32, Timestamp)> = Vec::new();

        offsets.push(0);
        for v in g.nodes() {
            let adj = g.neighbors(v);
            for nb in adj {
                chrono.push(nb.node.0);
                chrono_times.push(nb.time);
            }
            row.clear();
            row.extend(adj.iter().map(|nb| (nb.node.0, nb.time)));
            row.sort_unstable_by_key(|&(id, _)| id);
            for &(id, time) in &row {
                sorted.push(id);
                sorted_times.push(time);
            }
            offsets.push(sorted.len() as u32);
        }

        Self::from_monolithic(
            offsets,
            sorted,
            sorted_times,
            chrono,
            chrono_times,
            g.num_edges(),
        )
    }

    /// Edge-free snapshot over `num_nodes` nodes — the seed of a streaming
    /// engine's rotating snapshot chain (see [`Self::merge_delta`]).
    pub fn empty(num_nodes: usize) -> Self {
        let mut blocks = Vec::with_capacity(num_nodes.div_ceil(BLOCK_ROWS));
        for b0 in (0..num_nodes).step_by(BLOCK_ROWS) {
            blocks.push(RowBlock::empty(BLOCK_ROWS.min(num_nodes - b0)));
        }
        CsrSnapshot {
            num_nodes,
            num_edges: 0,
            blocks,
        }
    }

    /// Fold a buffered edge delta into a **new** snapshot — the original
    /// monolithic rebuild, kept as the independently-coded oracle for
    /// [`Self::merge_delta`] (the proptest suite holds the two
    /// element-identical across arbitrary rotation schedules). O(V + E +
    /// D log D) for D additions — every row is copied, grown rows
    /// re-merge.
    ///
    /// Caller contract (debug-asserted): endpoints are in range and
    /// distinct, no addition duplicates an existing edge or another
    /// addition, and each addition's time is ≥ the last chronological time
    /// of both endpoint rows (the stream is time-ordered).
    pub fn with_edges(&self, additions: &[(NodeId, NodeId, Timestamp)]) -> Self {
        if additions.is_empty() {
            return self.clone();
        }
        let n = self.num_nodes();
        let mut add_deg = vec![0u32; n];
        for &(a, b, _) in additions {
            debug_assert!(a.index() < n && b.index() < n && a != b);
            debug_assert!(!self.has_edge(a, b), "addition duplicates snapshot edge");
            add_deg[a.index()] += 1;
            add_deg[b.index()] += 1;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for v in 0..n {
            let old = self.degree(NodeId(v as u32)) as u32;
            offsets.push(offsets[v] + old + add_deg[v]);
        }
        let total = offsets[n] as usize;

        // Chronological rows: old row copied, additions appended in stream
        // order via per-node write cursors.
        let mut chrono = vec![0u32; total];
        let mut chrono_times = vec![Timestamp::ZERO; total];
        let mut cursor = vec![0u32; n];
        for v in 0..n {
            let node = NodeId(v as u32);
            let dst = offsets[v] as usize;
            let len = self.degree(node);
            chrono[dst..dst + len].copy_from_slice(self.neighbors_chrono(node));
            chrono_times[dst..dst + len].copy_from_slice(self.times_chrono(node));
            cursor[v] = (dst + len) as u32;
        }
        for &(a, b, t) in additions {
            for (x, y) in [(a, b), (b, a)] {
                let c = cursor[x.index()] as usize;
                debug_assert!(
                    c == offsets[x.index()] as usize || chrono_times[c - 1] <= t,
                    "additions must extend each row in time order"
                );
                chrono[c] = y.0;
                chrono_times[c] = t;
                cursor[x.index()] += 1;
            }
        }

        // Sorted rows: untouched rows copy straight over; grown rows merge
        // the old sorted row with the (sorted) appended tail.
        let mut sorted = vec![0u32; total];
        let mut sorted_times = vec![Timestamp::ZERO; total];
        let mut tail: Vec<(u32, Timestamp)> = Vec::new();
        for v in 0..n {
            let node = NodeId(v as u32);
            let dst = offsets[v] as usize;
            let old_ids = self.neighbors_sorted(node);
            let old_times = self.times_sorted(node);
            if add_deg[v] == 0 {
                sorted[dst..dst + old_ids.len()].copy_from_slice(old_ids);
                sorted_times[dst..dst + old_times.len()].copy_from_slice(old_times);
                continue;
            }
            let tail_start = dst + old_ids.len();
            let row_end = offsets[v + 1] as usize;
            tail.clear();
            tail.extend(
                chrono[tail_start..row_end]
                    .iter()
                    .copied()
                    .zip(chrono_times[tail_start..row_end].iter().copied()),
            );
            tail.sort_unstable_by_key(|&(id, _)| id);
            debug_assert!(
                tail.windows(2).all(|w| w[0].0 != w[1].0),
                "additions must not repeat an edge"
            );
            let (mut i, mut j, mut w) = (0, 0, dst);
            while i < old_ids.len() || j < tail.len() {
                let take_old = j >= tail.len() || (i < old_ids.len() && old_ids[i] < tail[j].0);
                if take_old {
                    sorted[w] = old_ids[i];
                    sorted_times[w] = old_times[i];
                    i += 1;
                } else {
                    sorted[w] = tail[j].0;
                    sorted_times[w] = tail[j].1;
                    j += 1;
                }
                w += 1;
            }
        }

        Self::from_monolithic(
            offsets,
            sorted,
            sorted_times,
            chrono,
            chrono_times,
            self.num_edges + additions.len(),
        )
    }

    /// Fold a buffered edge delta into the snapshot **in place** — the
    /// streaming engine's rotation path. Only blocks containing a grown
    /// row are re-materialized; every other block's storage is reused
    /// untouched, so a rotation costs O(delta + grown-block bytes) instead
    /// of the full O(V + E) copy [`Self::with_edges`] pays, and its
    /// transient allocation is one block, not a second CSR.
    ///
    /// Same caller contract as [`Self::with_edges`] (debug-asserted):
    /// in-range distinct endpoints, no duplicate edges, and additions
    /// extend each endpoint row in time order. Element-for-element, the
    /// result is identical to `*self = self.with_edges(additions)`.
    pub fn merge_delta(&mut self, additions: &[(NodeId, NodeId, Timestamp)]) {
        self.merge_delta_with(additions, &mut MergeScratch::default());
    }

    /// [`Self::merge_delta`] with caller-owned transient buffers. A
    /// rotation's working arrays are proportional to the delta; a caller
    /// that rotates repeatedly (the serving engine's mirror) reuses one
    /// [`MergeScratch`] so each fold runs in already-faulted pages
    /// instead of paying first-touch cost on hundreds of megabytes of
    /// fresh allocation per rotation.
    pub fn merge_delta_with(
        &mut self,
        additions: &[(NodeId, NodeId, Timestamp)],
        ms: &mut MergeScratch,
    ) {
        if additions.is_empty() {
            return;
        }
        let n = self.num_nodes;
        // Unfold to half-edges; grouping by owning row uses two stable
        // counting sorts (by block, then by row within each touched
        // block) — O(delta + touched blocks) and sequential, where a
        // comparison sort's O(delta log delta) scattered passes dominated
        // rotation cost at million-edge deltas. Stability preserves
        // stream order within a row, which is what the chronological
        // column appends in.
        ms.half.clear();
        ms.half.reserve(2 * additions.len());
        for &(a, b, t) in additions {
            debug_assert!(a.index() < n && b.index() < n && a != b);
            debug_assert!(!self.has_edge(a, b), "addition duplicates snapshot edge");
            ms.half.push((a.0, b.0, t));
            ms.half.push((b.0, a.0, t));
        }
        let nblocks = self.blocks.len();
        ms.starts.clear();
        ms.starts.resize(nblocks + 1, 0);
        for &(v, _, _) in &ms.half {
            ms.starts[v as usize / BLOCK_ROWS + 1] += 1;
        }
        for b in 0..nblocks {
            ms.starts[b + 1] += ms.starts[b];
        }
        ms.cursor.clear();
        ms.cursor.extend_from_slice(&ms.starts[..nblocks]);
        ms.grouped.clear();
        ms.grouped
            .resize(ms.half.len(), (0u32, 0u32, Timestamp::ZERO));
        for &(v, nbr, t) in &ms.half {
            let b = v as usize / BLOCK_ROWS;
            ms.grouped[ms.cursor[b] as usize] = (v, nbr, t);
            ms.cursor[b] += 1;
        }

        for b in 0..nblocks {
            let (lo, hi) = (ms.starts[b] as usize, ms.starts[b + 1] as usize);
            if lo == hi {
                continue;
            }
            let adds = &ms.grouped[lo..hi];
            let mut row_starts = [0u32; BLOCK_ROWS + 1];
            for &(v, _, _) in adds {
                row_starts[v as usize % BLOCK_ROWS + 1] += 1;
            }
            for l in 0..BLOCK_ROWS {
                row_starts[l + 1] += row_starts[l];
            }
            ms.block.clear();
            ms.block.resize(adds.len(), (0, 0, Timestamp::ZERO));
            for &(v, nbr, t) in adds {
                let l = v as usize % BLOCK_ROWS;
                ms.block[row_starts[l] as usize] = (v, nbr, t);
                row_starts[l] += 1;
            }
            self.rebuild_block(b, &ms.block, &mut ms.tail);
        }
        self.num_edges += additions.len();
    }

    /// Re-materialize one block, merging `adds` (half-edges sorted by row,
    /// stream-ordered within a row, all rows inside this block) into its
    /// columns. `tail` is caller-owned row scratch (see [`MergeScratch`]),
    /// cleared per row here.
    fn rebuild_block(
        &mut self,
        blk: usize,
        adds: &[(u32, u32, Timestamp)],
        tail: &mut Vec<(u32, Timestamp)>,
    ) {
        let old = &self.blocks[blk];
        let rows = old.rows();
        let b0 = blk * BLOCK_ROWS;
        let new_len = old.len() + adds.len();
        let mut nb = RowBlock {
            offsets: Vec::with_capacity(rows + 1),
            sorted: Vec::with_capacity(new_len),
            sorted_times: Vec::with_capacity(new_len),
            chrono: Vec::with_capacity(new_len),
            chrono_times: Vec::with_capacity(new_len),
        };
        nb.offsets.push(0);
        let mut a = 0usize;
        for l in 0..rows {
            let v = (b0 + l) as u32;
            let r = old.row(l);
            let row_start = nb.chrono.len();
            nb.chrono.extend_from_slice(&old.chrono[r.clone()]);
            nb.chrono_times.extend_from_slice(&old.chrono_times[r.clone()]);
            let a0 = a;
            while a < adds.len() && adds[a].0 == v {
                let (_, nbr, t) = adds[a];
                debug_assert!(
                    nb.chrono_times.len() == row_start
                        || nb.chrono_times[nb.chrono_times.len() - 1] <= t,
                    "additions must extend each row in time order"
                );
                nb.chrono.push(nbr);
                nb.chrono_times.push(t);
                a += 1;
            }
            if a == a0 {
                // Row unchanged: copy its sorted view straight over.
                nb.sorted.extend_from_slice(&old.sorted[r.clone()]);
                nb.sorted_times.extend_from_slice(&old.sorted_times[r]);
            } else {
                tail.clear();
                tail.extend(adds[a0..a].iter().map(|&(_, nbr, t)| (nbr, t)));
                tail.sort_unstable_by_key(|&(id, _)| id);
                debug_assert!(
                    tail.windows(2).all(|w| w[0].0 != w[1].0),
                    "additions must not repeat an edge"
                );
                let (old_ids, old_times) = (&old.sorted[r.clone()], &old.sorted_times[r]);
                let (mut i, mut j) = (0, 0);
                while i < old_ids.len() || j < tail.len() {
                    let take_old =
                        j >= tail.len() || (i < old_ids.len() && old_ids[i] < tail[j].0);
                    if take_old {
                        nb.sorted.push(old_ids[i]);
                        nb.sorted_times.push(old_times[i]);
                        i += 1;
                    } else {
                        nb.sorted.push(tail[j].0);
                        nb.sorted_times.push(tail[j].1);
                        j += 1;
                    }
                }
            }
            nb.offsets.push(nb.sorted.len() as u32);
        }
        debug_assert!(a == adds.len(), "every addition lands in its block");
        self.blocks[blk] = nb;
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Block and block-local row range of node `n` — every row accessor
    /// funnels through here.
    #[inline]
    fn locate(&self, n: NodeId) -> (&RowBlock, std::ops::Range<usize>) {
        debug_assert!(n.index() < self.num_nodes);
        let blk = &self.blocks[n.index() / BLOCK_ROWS];
        (blk, blk.row(n.index() % BLOCK_ROWS))
    }

    /// Degree of `n`.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        let (_, r) = self.locate(n);
        r.end - r.start
    }

    /// Neighbor ids of `n`, ascending by id.
    #[inline]
    pub fn neighbors_sorted(&self, n: NodeId) -> &[u32] {
        let (b, r) = self.locate(n);
        &b.sorted[r]
    }

    /// Creation times aligned with [`neighbors_sorted`](Self::neighbors_sorted).
    #[inline]
    pub fn times_sorted(&self, n: NodeId) -> &[Timestamp] {
        let (b, r) = self.locate(n);
        &b.sorted_times[r]
    }

    /// Neighbor ids of `n` in edge-creation order (the temporal graph's
    /// adjacency order).
    #[inline]
    pub fn neighbors_chrono(&self, n: NodeId) -> &[u32] {
        let (b, r) = self.locate(n);
        &b.chrono[r]
    }

    /// Creation times aligned with [`neighbors_chrono`](Self::neighbors_chrono).
    #[inline]
    pub fn times_chrono(&self, n: NodeId) -> &[Timestamp] {
        let (b, r) = self.locate(n);
        &b.chrono_times[r]
    }

    /// The first `k` friends of `n` in chronological order.
    #[inline]
    pub fn first_k_friends(&self, n: NodeId, k: usize) -> &[u32] {
        let row = self.neighbors_chrono(n);
        &row[..row.len().min(k)]
    }

    /// Membership test for the undirected edge `a — b`: binary search in
    /// the lower-degree endpoint's sorted row, O(log min(deg a, deg b)).
    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        if a == b || a.index() >= self.num_nodes() || b.index() >= self.num_nodes() {
            return false;
        }
        let (probe_row, target) = if self.degree(a) <= self.degree(b) {
            (self.neighbors_sorted(a), b.0)
        } else {
            (self.neighbors_sorted(b), a.0)
        };
        probe_row.binary_search(&target).is_ok()
    }

    /// Count of mutual friends of `a` and `b` by merge intersection of the
    /// two sorted rows, O(deg a + deg b) with no hashing.
    pub fn mutual_friends(&self, a: NodeId, b: NodeId) -> usize {
        let (mut i, ra) = (0, self.neighbors_sorted(a));
        let (mut j, rb) = (0, self.neighbors_sorted(b));
        let mut common = 0;
        while i < ra.len() && j < rb.len() {
            match ra[i].cmp(&rb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // A shared endpoint is not a mutual *friend*.
                    if ra[i] != a.0 && ra[i] != b.0 {
                        common += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        common
    }

    /// Count edges among the marked friend set: every friend's row is
    /// scanned once and each friend-to-friend edge is seen from both ends.
    ///
    /// Public so streaming consumers (the serving engine's clustering
    /// feature path) can combine it with a delta probe over edges not yet
    /// folded into the snapshot: mark the set with
    /// [`NeighborScratch::begin`]/[`NeighborScratch::mark`], call this, then
    /// count delta edges whose both endpoints are
    /// [`NeighborScratch::is_marked`]. Requires `friends` to be
    /// duplicate-free, or links are over-counted.
    pub fn links_among_marked(&self, friends: &[u32], scratch: &NeighborScratch) -> usize {
        let mut twice_links = 0usize;
        for &u in friends {
            twice_links += self
                .neighbors_sorted(NodeId(u))
                .iter()
                .filter(|&&v| scratch.is_marked(v))
                .count();
        }
        twice_links / 2
    }

    /// Clustering coefficient over an explicit friend set.
    fn clustering_of(&self, friends: &[u32], scratch: &mut NeighborScratch) -> f64 {
        let k = friends.len();
        if k < 2 {
            return 0.0;
        }
        scratch.begin(self.num_nodes());
        for &u in friends {
            scratch.mark(u);
        }
        let links = self.links_among_marked(friends, scratch);
        links as f64 / (k * (k - 1) / 2) as f64
    }

    /// Local clustering coefficient of `n` over its whole neighborhood.
    /// Bit-identical to [`clustering::local_clustering`] on the source graph.
    pub fn local_clustering(&self, n: NodeId, scratch: &mut NeighborScratch) -> f64 {
        // Sorted vs chronological order does not matter: the link count and
        // pair count are order-free.
        self.clustering_of(self.neighbors_sorted(n), scratch)
    }

    /// The paper's Fig. 4 metric: clustering over the first `k` friends of
    /// `n` in chronological order. Bit-identical to
    /// [`clustering::first_k_clustering`].
    pub fn first_k_clustering(&self, n: NodeId, k: usize, scratch: &mut NeighborScratch) -> f64 {
        self.clustering_of(self.first_k_friends(n, k), scratch)
    }

    /// Clustering over friends acquired strictly before `t` (chronological
    /// prefix). Bit-identical to [`clustering::clustering_before`] for
    /// graphs whose per-node adjacency is in time order (the simulator's
    /// guarantee).
    pub fn clustering_before(
        &self,
        n: NodeId,
        t: Timestamp,
        scratch: &mut NeighborScratch,
    ) -> f64 {
        let times = self.times_chrono(n);
        let cut = times.partition_point(|&time| time < t);
        self.clustering_of(&self.neighbors_chrono(n)[..cut], scratch)
    }

    /// Mean local clustering over nodes with degree ≥ 2, matching
    /// [`clustering::average_clustering`] bit for bit (same iteration
    /// order, same summation order).
    pub fn average_clustering(&self) -> f64 {
        let mut scratch = NeighborScratch::new(self.num_nodes());
        let mut sum = 0.0;
        let mut count = 0usize;
        for n in self.nodes() {
            if self.degree(n) >= 2 {
                sum += self.local_clustering(n, &mut scratch);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Global clustering coefficient (transitivity), matching
    /// [`clustering::global_clustering`].
    pub fn global_clustering(&self) -> f64 {
        let mut scratch = NeighborScratch::new(self.num_nodes());
        let mut closed = 0u64;
        let mut wedges = 0u64;
        for n in self.nodes() {
            let d = self.degree(n) as u64;
            if d < 2 {
                continue;
            }
            wedges += d * (d - 1) / 2;
            let friends = self.neighbors_sorted(n);
            scratch.begin(self.num_nodes());
            for &u in friends {
                scratch.mark(u);
            }
            closed += self.links_among_marked(friends, &scratch) as u64;
        }
        if wedges == 0 {
            0.0
        } else {
            closed as f64 / wedges as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering;
    use crate::graph::Timestamp;

    fn t(h: u64) -> Timestamp {
        Timestamp::from_hours(h)
    }

    /// Node 0 with friends 1, 2, 3 (in that time order); 1-2 linked.
    fn wedge_graph() -> TemporalGraph {
        let mut g = TemporalGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), t(1)).unwrap();
        g.add_edge(NodeId(0), NodeId(2), t(2)).unwrap();
        g.add_edge(NodeId(0), NodeId(3), t(3)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), t(4)).unwrap();
        g
    }

    #[test]
    fn freeze_preserves_shape() {
        let g = wedge_graph();
        let s = CsrSnapshot::freeze(&g);
        assert_eq!(s.num_nodes(), 4);
        assert_eq!(s.num_edges(), 4);
        for n in g.nodes() {
            assert_eq!(s.degree(n), g.degree(n));
        }
    }

    #[test]
    fn sorted_and_chrono_views_carry_the_same_timed_edges() {
        let g = wedge_graph();
        let s = CsrSnapshot::freeze(&g);
        for n in g.nodes() {
            let mut sorted_view: Vec<(u32, Timestamp)> = s
                .neighbors_sorted(n)
                .iter()
                .copied()
                .zip(s.times_sorted(n).iter().copied())
                .collect();
            let mut chrono_view: Vec<(u32, Timestamp)> = s
                .neighbors_chrono(n)
                .iter()
                .copied()
                .zip(s.times_chrono(n).iter().copied())
                .collect();
            sorted_view.sort_unstable();
            chrono_view.sort_unstable();
            assert_eq!(sorted_view, chrono_view, "node {n:?}");
        }
    }

    #[test]
    fn sorted_rows_are_sorted_and_chrono_rows_match_adjacency() {
        let g = wedge_graph();
        let s = CsrSnapshot::freeze(&g);
        for n in g.nodes() {
            let row = s.neighbors_sorted(n);
            assert!(row.windows(2).all(|w| w[0] < w[1]));
            let chrono: Vec<u32> = s.neighbors_chrono(n).to_vec();
            let adj: Vec<u32> = g.neighbors(n).iter().map(|nb| nb.node.0).collect();
            assert_eq!(chrono, adj);
            let times: Vec<Timestamp> = g.neighbors(n).iter().map(|nb| nb.time).collect();
            assert_eq!(s.times_chrono(n), &times[..]);
        }
    }

    #[test]
    fn has_edge_matches_graph() {
        let g = wedge_graph();
        let s = CsrSnapshot::freeze(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(s.has_edge(a, b), g.has_edge(a, b), "{a:?}-{b:?}");
            }
        }
        assert!(!s.has_edge(NodeId(0), NodeId(99)));
    }

    #[test]
    fn mutual_friends_matches_graph() {
        let mut g = TemporalGraph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1), t(0)).unwrap();
        g.add_edge(NodeId(0), NodeId(2), t(1)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), t(2)).unwrap();
        g.add_edge(NodeId(0), NodeId(3), t(3)).unwrap();
        g.add_edge(NodeId(1), NodeId(3), t(4)).unwrap();
        let s = CsrSnapshot::freeze(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                if a != b {
                    assert_eq!(s.mutual_friends(a, b), g.mutual_friends(a, b), "{a:?},{b:?}");
                }
            }
        }
    }

    #[test]
    fn clustering_kernels_match_reference() {
        let g = wedge_graph();
        let s = CsrSnapshot::freeze(&g);
        let mut scratch = NeighborScratch::new(s.num_nodes());
        for n in g.nodes() {
            assert_eq!(
                s.local_clustering(n, &mut scratch),
                clustering::local_clustering(&g, n),
                "local at {n:?}"
            );
            for k in 0..5 {
                assert_eq!(
                    s.first_k_clustering(n, k, &mut scratch),
                    clustering::first_k_clustering(&g, n, k),
                    "first_{k} at {n:?}"
                );
            }
            for h in 0..6 {
                assert_eq!(
                    s.clustering_before(n, t(h), &mut scratch),
                    clustering::clustering_before(&g, n, t(h)),
                    "before t({h}) at {n:?}"
                );
            }
        }
        assert_eq!(s.average_clustering(), clustering::average_clustering(&g));
        assert_eq!(s.global_clustering(), clustering::global_clustering(&g));
    }

    #[test]
    fn scratch_epoch_wraparound_is_safe() {
        let g = wedge_graph();
        let s = CsrSnapshot::freeze(&g);
        let mut scratch = NeighborScratch::new(s.num_nodes());
        scratch.epoch = u32::MAX - 1;
        let expected = clustering::local_clustering(&g, NodeId(0));
        for _ in 0..4 {
            assert_eq!(s.local_clustering(NodeId(0), &mut scratch), expected);
        }
    }

    /// Rotating an empty snapshot through edge deltas must reproduce the
    /// one-shot freeze of the full graph, view for view.
    #[test]
    fn with_edges_chain_matches_freeze() {
        let edges: Vec<(NodeId, NodeId, Timestamp)> = vec![
            (NodeId(0), NodeId(1), t(1)),
            (NodeId(0), NodeId(2), t(2)),
            (NodeId(3), NodeId(4), t(2)),
            (NodeId(1), NodeId(2), t(3)),
            (NodeId(0), NodeId(3), t(4)),
            (NodeId(2), NodeId(4), t(5)),
            (NodeId(1), NodeId(4), t(6)),
        ];
        let mut g = TemporalGraph::with_nodes(5);
        for &(a, b, at) in &edges {
            g.add_edge(a, b, at).unwrap();
        }
        let full = CsrSnapshot::freeze(&g);

        // Rotate in uneven batches, including an empty one.
        let mut s = CsrSnapshot::empty(5);
        for batch in [&edges[0..3], &edges[3..3], &edges[3..6], &edges[6..7]] {
            s = s.with_edges(batch);
        }
        assert_eq!(s.num_nodes(), full.num_nodes());
        assert_eq!(s.num_edges(), full.num_edges());
        for n in s.nodes() {
            assert_eq!(s.neighbors_sorted(n), full.neighbors_sorted(n), "{n:?}");
            assert_eq!(s.times_sorted(n), full.times_sorted(n), "{n:?}");
            assert_eq!(s.neighbors_chrono(n), full.neighbors_chrono(n), "{n:?}");
            assert_eq!(s.times_chrono(n), full.times_chrono(n), "{n:?}");
        }
        let mut scratch = NeighborScratch::new(5);
        for n in s.nodes() {
            assert_eq!(
                s.local_clustering(n, &mut scratch),
                full.local_clustering(n, &mut scratch)
            );
        }
    }

    /// The in-place incremental rotation must agree with the monolithic
    /// oracle on every column, including across a block boundary (node
    /// ids straddling `BLOCK_ROWS`).
    #[test]
    fn merge_delta_chain_matches_with_edges() {
        let far = (BLOCK_ROWS + 3) as u32; // second block
        let edges: Vec<(NodeId, NodeId, Timestamp)> = vec![
            (NodeId(0), NodeId(1), t(1)),
            (NodeId(0), NodeId(far), t(2)),
            (NodeId(1), NodeId(2), t(3)),
            (NodeId(far), NodeId(far + 1), t(4)),
            (NodeId(1), NodeId(far), t(5)),
            (NodeId(2), NodeId(far + 1), t(6)),
        ];
        let n = BLOCK_ROWS + 8;
        let oracle = CsrSnapshot::empty(n).with_edges(&edges);

        let mut s = CsrSnapshot::empty(n);
        for batch in [&edges[0..2], &edges[2..2], &edges[2..5], &edges[5..6]] {
            s.merge_delta(batch);
        }
        assert_eq!(s.num_edges(), oracle.num_edges());
        for v in s.nodes() {
            assert_eq!(s.neighbors_sorted(v), oracle.neighbors_sorted(v), "{v:?}");
            assert_eq!(s.times_sorted(v), oracle.times_sorted(v), "{v:?}");
            assert_eq!(s.neighbors_chrono(v), oracle.neighbors_chrono(v), "{v:?}");
            assert_eq!(s.times_chrono(v), oracle.times_chrono(v), "{v:?}");
        }
    }

    #[test]
    fn links_among_marked_is_usable_with_a_delta_probe() {
        // Snapshot holds 0-1, 0-2; the delta holds 1-2 (the closing link).
        let mut g = TemporalGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), t(1)).unwrap();
        g.add_edge(NodeId(0), NodeId(2), t(2)).unwrap();
        let s = CsrSnapshot::freeze(&g);
        let delta = [(NodeId(1), NodeId(2))];
        let friends = [1u32, 2u32];
        let mut scratch = NeighborScratch::new(3);
        scratch.begin(s.num_nodes());
        for &f in &friends {
            scratch.mark(f);
        }
        let base = s.links_among_marked(&friends, &scratch);
        assert_eq!(base, 0);
        // Each delta edge is seen from both marked endpoints, so halve.
        let twice: usize = delta
            .iter()
            .flat_map(|&(a, b)| [(a, b), (b, a)])
            .filter(|&(a, b)| scratch.is_marked(a.0) && scratch.is_marked(b.0))
            .count();
        assert_eq!(base + twice / 2, 1);
    }

    #[test]
    fn empty_and_isolated_graphs() {
        let s = CsrSnapshot::freeze(&TemporalGraph::new());
        assert_eq!(s.num_nodes(), 0);
        assert_eq!(s.average_clustering(), 0.0);
        let s = CsrSnapshot::freeze(&TemporalGraph::with_nodes(3));
        assert_eq!(s.num_edges(), 0);
        assert!(!s.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(s.mutual_friends(NodeId(0), NodeId(1)), 0);
    }
}
