//! Immutable CSR (compressed sparse row) snapshot of a [`TemporalGraph`].
//!
//! The mutable graph keeps per-node `Vec<Neighbor>` adjacency plus a global
//! hash set for membership tests. That layout is right for incremental
//! simulation but wrong for the measurement sweeps (§3 of the paper), which
//! are read-only and dominated by neighborhood intersection: clustering
//! coefficients probe every neighbor pair through the hash set, costing
//! O(deg²) hashed lookups per node with poor locality.
//!
//! [`CsrSnapshot::freeze`] lays the adjacency out in two flat arrays:
//!
//! * **id-sorted** rows (`sorted`, with creation times alongside in
//!   `sorted_times`) giving O(log deg) [`has_edge`](CsrSnapshot::has_edge)
//!   by binary search and O(deg a + deg b) merge intersection for
//!   [`mutual_friends`](CsrSnapshot::mutual_friends);
//! * **chronological** rows (`chrono`/`chrono_times`, preserving the
//!   temporal graph's edge-creation order) so the paper's "first *k*
//!   friends by time" analyses keep their semantics.
//!
//! Triangle-style kernels use an epoch-stamped scratch array
//! ([`NeighborScratch`]) instead of pairwise probes: marking a node's
//! friend set costs O(deg) and each membership probe is one array read, so
//! a clustering coefficient costs O(Σ deg(friend)) instead of O(deg²) hash
//! probes. Every kernel returns bit-identical values to the corresponding
//! `clustering`-module function on the source graph.

use crate::graph::{NodeId, TemporalGraph, Timestamp};

/// Frozen read-only CSR view of a [`TemporalGraph`].
#[derive(Clone, Debug)]
pub struct CsrSnapshot {
    /// Row boundaries: node `n`'s neighbors live at `offsets[n]..offsets[n+1]`
    /// in all four flat arrays. Length `num_nodes + 1`.
    offsets: Vec<u32>,
    /// Neighbor ids per row, sorted ascending by id.
    sorted: Vec<u32>,
    /// Edge-creation times aligned with `sorted`.
    sorted_times: Vec<Timestamp>,
    /// Neighbor ids per row in edge-creation (chronological) order.
    chrono: Vec<u32>,
    /// Edge-creation times aligned with `chrono`.
    chrono_times: Vec<Timestamp>,
    num_edges: usize,
}

/// Reusable epoch-stamped mark array for neighborhood kernels.
///
/// `marks[v] == epoch` means "v is in the current friend set"; bumping the
/// epoch clears the set in O(1). One scratch per thread is enough for any
/// number of kernel calls.
#[derive(Clone, Debug, Default)]
pub struct NeighborScratch {
    marks: Vec<u32>,
    epoch: u32,
}

impl NeighborScratch {
    /// Scratch sized for a snapshot with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        NeighborScratch {
            marks: vec![0; num_nodes],
            epoch: 0,
        }
    }

    /// Start a new (empty) friend set, resizing if the snapshot grew.
    pub fn begin(&mut self, num_nodes: usize) {
        if self.marks.len() < num_nodes {
            self.marks.resize(num_nodes, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale marks could collide with the new epoch.
            self.marks.fill(0);
            self.epoch = 1;
        }
    }

    /// Add `v` to the current friend set.
    #[inline]
    pub fn mark(&mut self, v: u32) {
        self.marks[v as usize] = self.epoch;
    }

    /// Is `v` in the current friend set?
    #[inline]
    pub fn is_marked(&self, v: u32) -> bool {
        self.marks[v as usize] == self.epoch
    }
}

impl CsrSnapshot {
    /// Freeze `g` into CSR form. O(V + E log E) for the per-row id sort.
    pub fn freeze(g: &TemporalGraph) -> Self {
        let n = g.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let half_edges = 2 * g.num_edges();
        let mut sorted = Vec::with_capacity(half_edges);
        let mut sorted_times = Vec::with_capacity(half_edges);
        let mut chrono = Vec::with_capacity(half_edges);
        let mut chrono_times = Vec::with_capacity(half_edges);
        let mut row: Vec<(u32, Timestamp)> = Vec::new();

        offsets.push(0);
        for v in g.nodes() {
            let adj = g.neighbors(v);
            for nb in adj {
                chrono.push(nb.node.0);
                chrono_times.push(nb.time);
            }
            row.clear();
            row.extend(adj.iter().map(|nb| (nb.node.0, nb.time)));
            row.sort_unstable_by_key(|&(id, _)| id);
            for &(id, time) in &row {
                sorted.push(id);
                sorted_times.push(time);
            }
            offsets.push(sorted.len() as u32);
        }

        CsrSnapshot {
            offsets,
            sorted,
            sorted_times,
            chrono,
            chrono_times,
            num_edges: g.num_edges(),
        }
    }

    /// Edge-free snapshot over `num_nodes` nodes — the seed of a streaming
    /// engine's rotating snapshot chain (see [`Self::with_edges`]).
    pub fn empty(num_nodes: usize) -> Self {
        CsrSnapshot {
            offsets: vec![0; num_nodes + 1],
            sorted: Vec::new(),
            sorted_times: Vec::new(),
            chrono: Vec::new(),
            chrono_times: Vec::new(),
            num_edges: 0,
        }
    }

    /// Fold a buffered edge delta into a new snapshot (epoch rotation).
    ///
    /// A streaming consumer accumulates accepted friendships in a flat
    /// delta buffer and periodically rotates: `snapshot = snapshot
    /// .with_edges(&delta)` then clears the buffer, keeping kernel calls on
    /// the fast CSR path while amortizing rebuild cost. O(V + E + D log D)
    /// for D additions — old rows are copied, only rows that grew re-merge.
    ///
    /// Caller contract (debug-asserted): endpoints are in range and
    /// distinct, no addition duplicates an existing edge or another
    /// addition, and each addition's time is ≥ the last chronological time
    /// of both endpoint rows (the stream is time-ordered).
    pub fn with_edges(&self, additions: &[(NodeId, NodeId, Timestamp)]) -> Self {
        if additions.is_empty() {
            return self.clone();
        }
        let n = self.num_nodes();
        let mut add_deg = vec![0u32; n];
        for &(a, b, _) in additions {
            debug_assert!(a.index() < n && b.index() < n && a != b);
            debug_assert!(!self.has_edge(a, b), "addition duplicates snapshot edge");
            add_deg[a.index()] += 1;
            add_deg[b.index()] += 1;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for v in 0..n {
            let old = self.degree(NodeId(v as u32)) as u32;
            offsets.push(offsets[v] + old + add_deg[v]);
        }
        let total = offsets[n] as usize;

        // Chronological rows: old row copied, additions appended in stream
        // order via per-node write cursors.
        let mut chrono = vec![0u32; total];
        let mut chrono_times = vec![Timestamp::ZERO; total];
        let mut cursor = vec![0u32; n];
        for v in 0..n {
            let node = NodeId(v as u32);
            let dst = offsets[v] as usize;
            let len = self.degree(node);
            chrono[dst..dst + len].copy_from_slice(self.neighbors_chrono(node));
            chrono_times[dst..dst + len].copy_from_slice(self.times_chrono(node));
            cursor[v] = (dst + len) as u32;
        }
        for &(a, b, t) in additions {
            for (x, y) in [(a, b), (b, a)] {
                let c = cursor[x.index()] as usize;
                debug_assert!(
                    c == offsets[x.index()] as usize || chrono_times[c - 1] <= t,
                    "additions must extend each row in time order"
                );
                chrono[c] = y.0;
                chrono_times[c] = t;
                cursor[x.index()] += 1;
            }
        }

        // Sorted rows: untouched rows copy straight over; grown rows merge
        // the old sorted row with the (sorted) appended tail.
        let mut sorted = vec![0u32; total];
        let mut sorted_times = vec![Timestamp::ZERO; total];
        let mut tail: Vec<(u32, Timestamp)> = Vec::new();
        for v in 0..n {
            let node = NodeId(v as u32);
            let dst = offsets[v] as usize;
            let old_ids = self.neighbors_sorted(node);
            let old_times = self.times_sorted(node);
            if add_deg[v] == 0 {
                sorted[dst..dst + old_ids.len()].copy_from_slice(old_ids);
                sorted_times[dst..dst + old_times.len()].copy_from_slice(old_times);
                continue;
            }
            let tail_start = dst + old_ids.len();
            let row_end = offsets[v + 1] as usize;
            tail.clear();
            tail.extend(
                chrono[tail_start..row_end]
                    .iter()
                    .copied()
                    .zip(chrono_times[tail_start..row_end].iter().copied()),
            );
            tail.sort_unstable_by_key(|&(id, _)| id);
            debug_assert!(
                tail.windows(2).all(|w| w[0].0 != w[1].0),
                "additions must not repeat an edge"
            );
            let (mut i, mut j, mut w) = (0, 0, dst);
            while i < old_ids.len() || j < tail.len() {
                let take_old = j >= tail.len() || (i < old_ids.len() && old_ids[i] < tail[j].0);
                if take_old {
                    sorted[w] = old_ids[i];
                    sorted_times[w] = old_times[i];
                    i += 1;
                } else {
                    sorted[w] = tail[j].0;
                    sorted_times[w] = tail[j].1;
                    j += 1;
                }
                w += 1;
            }
        }

        CsrSnapshot {
            offsets,
            sorted,
            sorted_times,
            chrono,
            chrono_times,
            num_edges: self.num_edges + additions.len(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    #[inline]
    fn row(&self, n: NodeId) -> std::ops::Range<usize> {
        // CSR invariant: offsets has num_nodes + 1 entries, so n+1 is in
        // bounds for every valid node id.
        debug_assert!(n.index() + 1 < self.offsets.len());
        self.offsets[n.index()] as usize..self.offsets[n.index() + 1] as usize
    }

    /// Degree of `n`.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        let r = self.row(n);
        r.end - r.start
    }

    /// Neighbor ids of `n`, ascending by id.
    #[inline]
    pub fn neighbors_sorted(&self, n: NodeId) -> &[u32] {
        &self.sorted[self.row(n)]
    }

    /// Creation times aligned with [`neighbors_sorted`](Self::neighbors_sorted).
    #[inline]
    pub fn times_sorted(&self, n: NodeId) -> &[Timestamp] {
        &self.sorted_times[self.row(n)]
    }

    /// Neighbor ids of `n` in edge-creation order (the temporal graph's
    /// adjacency order).
    #[inline]
    pub fn neighbors_chrono(&self, n: NodeId) -> &[u32] {
        &self.chrono[self.row(n)]
    }

    /// Creation times aligned with [`neighbors_chrono`](Self::neighbors_chrono).
    #[inline]
    pub fn times_chrono(&self, n: NodeId) -> &[Timestamp] {
        &self.chrono_times[self.row(n)]
    }

    /// The first `k` friends of `n` in chronological order.
    #[inline]
    pub fn first_k_friends(&self, n: NodeId, k: usize) -> &[u32] {
        let row = self.neighbors_chrono(n);
        &row[..row.len().min(k)]
    }

    /// Membership test for the undirected edge `a — b`: binary search in
    /// the lower-degree endpoint's sorted row, O(log min(deg a, deg b)).
    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        if a == b || a.index() >= self.num_nodes() || b.index() >= self.num_nodes() {
            return false;
        }
        let (probe_row, target) = if self.degree(a) <= self.degree(b) {
            (self.neighbors_sorted(a), b.0)
        } else {
            (self.neighbors_sorted(b), a.0)
        };
        probe_row.binary_search(&target).is_ok()
    }

    /// Count of mutual friends of `a` and `b` by merge intersection of the
    /// two sorted rows, O(deg a + deg b) with no hashing.
    pub fn mutual_friends(&self, a: NodeId, b: NodeId) -> usize {
        let (mut i, ra) = (0, self.neighbors_sorted(a));
        let (mut j, rb) = (0, self.neighbors_sorted(b));
        let mut common = 0;
        while i < ra.len() && j < rb.len() {
            match ra[i].cmp(&rb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // A shared endpoint is not a mutual *friend*.
                    if ra[i] != a.0 && ra[i] != b.0 {
                        common += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        common
    }

    /// Count edges among the marked friend set: every friend's row is
    /// scanned once and each friend-to-friend edge is seen from both ends.
    ///
    /// Public so streaming consumers (the serving engine's clustering
    /// feature path) can combine it with a delta probe over edges not yet
    /// folded into the snapshot: mark the set with
    /// [`NeighborScratch::begin`]/[`NeighborScratch::mark`], call this, then
    /// count delta edges whose both endpoints are
    /// [`NeighborScratch::is_marked`]. Requires `friends` to be
    /// duplicate-free, or links are over-counted.
    pub fn links_among_marked(&self, friends: &[u32], scratch: &NeighborScratch) -> usize {
        let mut twice_links = 0usize;
        for &u in friends {
            twice_links += self.row(NodeId(u))
                .filter(|&slot| scratch.is_marked(self.sorted[slot]))
                .count();
        }
        twice_links / 2
    }

    /// Clustering coefficient over an explicit friend set.
    fn clustering_of(&self, friends: &[u32], scratch: &mut NeighborScratch) -> f64 {
        let k = friends.len();
        if k < 2 {
            return 0.0;
        }
        scratch.begin(self.num_nodes());
        for &u in friends {
            scratch.mark(u);
        }
        let links = self.links_among_marked(friends, scratch);
        links as f64 / (k * (k - 1) / 2) as f64
    }

    /// Local clustering coefficient of `n` over its whole neighborhood.
    /// Bit-identical to [`clustering::local_clustering`] on the source graph.
    pub fn local_clustering(&self, n: NodeId, scratch: &mut NeighborScratch) -> f64 {
        // Sorted vs chronological order does not matter: the link count and
        // pair count are order-free.
        let row = self.row(n);
        let friends = &self.sorted[row];
        let k = friends.len();
        if k < 2 {
            return 0.0;
        }
        scratch.begin(self.num_nodes());
        for &u in friends {
            scratch.mark(u);
        }
        let links = self.links_among_marked(friends, scratch);
        links as f64 / (k * (k - 1) / 2) as f64
    }

    /// The paper's Fig. 4 metric: clustering over the first `k` friends of
    /// `n` in chronological order. Bit-identical to
    /// [`clustering::first_k_clustering`].
    pub fn first_k_clustering(&self, n: NodeId, k: usize, scratch: &mut NeighborScratch) -> f64 {
        let row = self.row(n);
        let friends = &self.chrono[row.start..row.start + (row.end - row.start).min(k)];
        self.clustering_of_slice(friends, scratch)
    }

    /// Clustering over friends acquired strictly before `t` (chronological
    /// prefix). Bit-identical to [`clustering::clustering_before`] for
    /// graphs whose per-node adjacency is in time order (the simulator's
    /// guarantee).
    pub fn clustering_before(
        &self,
        n: NodeId,
        t: Timestamp,
        scratch: &mut NeighborScratch,
    ) -> f64 {
        let row = self.row(n);
        let times = &self.chrono_times[row.clone()];
        let cut = times.partition_point(|&time| time < t);
        let friends = &self.chrono[row.clone()][..cut];
        self.clustering_of_slice(friends, scratch)
    }

    #[inline]
    fn clustering_of_slice(&self, friends: &[u32], scratch: &mut NeighborScratch) -> f64 {
        self.clustering_of(friends, scratch)
    }

    /// Mean local clustering over nodes with degree ≥ 2, matching
    /// [`clustering::average_clustering`] bit for bit (same iteration
    /// order, same summation order).
    pub fn average_clustering(&self) -> f64 {
        let mut scratch = NeighborScratch::new(self.num_nodes());
        let mut sum = 0.0;
        let mut count = 0usize;
        for n in self.nodes() {
            if self.degree(n) >= 2 {
                sum += self.local_clustering(n, &mut scratch);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Global clustering coefficient (transitivity), matching
    /// [`clustering::global_clustering`].
    pub fn global_clustering(&self) -> f64 {
        let mut scratch = NeighborScratch::new(self.num_nodes());
        let mut closed = 0u64;
        let mut wedges = 0u64;
        for n in self.nodes() {
            let d = self.degree(n) as u64;
            if d < 2 {
                continue;
            }
            wedges += d * (d - 1) / 2;
            let friends = self.neighbors_sorted(n);
            scratch.begin(self.num_nodes());
            for &u in friends {
                scratch.mark(u);
            }
            closed += self.links_among_marked(friends, &scratch) as u64;
        }
        if wedges == 0 {
            0.0
        } else {
            closed as f64 / wedges as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering;
    use crate::graph::Timestamp;

    fn t(h: u64) -> Timestamp {
        Timestamp::from_hours(h)
    }

    /// Node 0 with friends 1, 2, 3 (in that time order); 1-2 linked.
    fn wedge_graph() -> TemporalGraph {
        let mut g = TemporalGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), t(1)).unwrap();
        g.add_edge(NodeId(0), NodeId(2), t(2)).unwrap();
        g.add_edge(NodeId(0), NodeId(3), t(3)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), t(4)).unwrap();
        g
    }

    #[test]
    fn freeze_preserves_shape() {
        let g = wedge_graph();
        let s = CsrSnapshot::freeze(&g);
        assert_eq!(s.num_nodes(), 4);
        assert_eq!(s.num_edges(), 4);
        for n in g.nodes() {
            assert_eq!(s.degree(n), g.degree(n));
        }
    }

    #[test]
    fn sorted_and_chrono_views_carry_the_same_timed_edges() {
        let g = wedge_graph();
        let s = CsrSnapshot::freeze(&g);
        for n in g.nodes() {
            let mut sorted_view: Vec<(u32, Timestamp)> = s
                .neighbors_sorted(n)
                .iter()
                .copied()
                .zip(s.times_sorted(n).iter().copied())
                .collect();
            let mut chrono_view: Vec<(u32, Timestamp)> = s
                .neighbors_chrono(n)
                .iter()
                .copied()
                .zip(s.times_chrono(n).iter().copied())
                .collect();
            sorted_view.sort_unstable();
            chrono_view.sort_unstable();
            assert_eq!(sorted_view, chrono_view, "node {n:?}");
        }
    }

    #[test]
    fn sorted_rows_are_sorted_and_chrono_rows_match_adjacency() {
        let g = wedge_graph();
        let s = CsrSnapshot::freeze(&g);
        for n in g.nodes() {
            let row = s.neighbors_sorted(n);
            assert!(row.windows(2).all(|w| w[0] < w[1]));
            let chrono: Vec<u32> = s.neighbors_chrono(n).to_vec();
            let adj: Vec<u32> = g.neighbors(n).iter().map(|nb| nb.node.0).collect();
            assert_eq!(chrono, adj);
            let times: Vec<Timestamp> = g.neighbors(n).iter().map(|nb| nb.time).collect();
            assert_eq!(s.times_chrono(n), &times[..]);
        }
    }

    #[test]
    fn has_edge_matches_graph() {
        let g = wedge_graph();
        let s = CsrSnapshot::freeze(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(s.has_edge(a, b), g.has_edge(a, b), "{a:?}-{b:?}");
            }
        }
        assert!(!s.has_edge(NodeId(0), NodeId(99)));
    }

    #[test]
    fn mutual_friends_matches_graph() {
        let mut g = TemporalGraph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1), t(0)).unwrap();
        g.add_edge(NodeId(0), NodeId(2), t(1)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), t(2)).unwrap();
        g.add_edge(NodeId(0), NodeId(3), t(3)).unwrap();
        g.add_edge(NodeId(1), NodeId(3), t(4)).unwrap();
        let s = CsrSnapshot::freeze(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                if a != b {
                    assert_eq!(s.mutual_friends(a, b), g.mutual_friends(a, b), "{a:?},{b:?}");
                }
            }
        }
    }

    #[test]
    fn clustering_kernels_match_reference() {
        let g = wedge_graph();
        let s = CsrSnapshot::freeze(&g);
        let mut scratch = NeighborScratch::new(s.num_nodes());
        for n in g.nodes() {
            assert_eq!(
                s.local_clustering(n, &mut scratch),
                clustering::local_clustering(&g, n),
                "local at {n:?}"
            );
            for k in 0..5 {
                assert_eq!(
                    s.first_k_clustering(n, k, &mut scratch),
                    clustering::first_k_clustering(&g, n, k),
                    "first_{k} at {n:?}"
                );
            }
            for h in 0..6 {
                assert_eq!(
                    s.clustering_before(n, t(h), &mut scratch),
                    clustering::clustering_before(&g, n, t(h)),
                    "before t({h}) at {n:?}"
                );
            }
        }
        assert_eq!(s.average_clustering(), clustering::average_clustering(&g));
        assert_eq!(s.global_clustering(), clustering::global_clustering(&g));
    }

    #[test]
    fn scratch_epoch_wraparound_is_safe() {
        let g = wedge_graph();
        let s = CsrSnapshot::freeze(&g);
        let mut scratch = NeighborScratch::new(s.num_nodes());
        scratch.epoch = u32::MAX - 1;
        let expected = clustering::local_clustering(&g, NodeId(0));
        for _ in 0..4 {
            assert_eq!(s.local_clustering(NodeId(0), &mut scratch), expected);
        }
    }

    /// Rotating an empty snapshot through edge deltas must reproduce the
    /// one-shot freeze of the full graph, view for view.
    #[test]
    fn with_edges_chain_matches_freeze() {
        let edges: Vec<(NodeId, NodeId, Timestamp)> = vec![
            (NodeId(0), NodeId(1), t(1)),
            (NodeId(0), NodeId(2), t(2)),
            (NodeId(3), NodeId(4), t(2)),
            (NodeId(1), NodeId(2), t(3)),
            (NodeId(0), NodeId(3), t(4)),
            (NodeId(2), NodeId(4), t(5)),
            (NodeId(1), NodeId(4), t(6)),
        ];
        let mut g = TemporalGraph::with_nodes(5);
        for &(a, b, at) in &edges {
            g.add_edge(a, b, at).unwrap();
        }
        let full = CsrSnapshot::freeze(&g);

        // Rotate in uneven batches, including an empty one.
        let mut s = CsrSnapshot::empty(5);
        for batch in [&edges[0..3], &edges[3..3], &edges[3..6], &edges[6..7]] {
            s = s.with_edges(batch);
        }
        assert_eq!(s.num_nodes(), full.num_nodes());
        assert_eq!(s.num_edges(), full.num_edges());
        for n in s.nodes() {
            assert_eq!(s.neighbors_sorted(n), full.neighbors_sorted(n), "{n:?}");
            assert_eq!(s.times_sorted(n), full.times_sorted(n), "{n:?}");
            assert_eq!(s.neighbors_chrono(n), full.neighbors_chrono(n), "{n:?}");
            assert_eq!(s.times_chrono(n), full.times_chrono(n), "{n:?}");
        }
        let mut scratch = NeighborScratch::new(5);
        for n in s.nodes() {
            assert_eq!(
                s.local_clustering(n, &mut scratch),
                full.local_clustering(n, &mut scratch)
            );
        }
    }

    #[test]
    fn links_among_marked_is_usable_with_a_delta_probe() {
        // Snapshot holds 0-1, 0-2; the delta holds 1-2 (the closing link).
        let mut g = TemporalGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), t(1)).unwrap();
        g.add_edge(NodeId(0), NodeId(2), t(2)).unwrap();
        let s = CsrSnapshot::freeze(&g);
        let delta = [(NodeId(1), NodeId(2))];
        let friends = [1u32, 2u32];
        let mut scratch = NeighborScratch::new(3);
        scratch.begin(s.num_nodes());
        for &f in &friends {
            scratch.mark(f);
        }
        let base = s.links_among_marked(&friends, &scratch);
        assert_eq!(base, 0);
        // Each delta edge is seen from both marked endpoints, so halve.
        let twice: usize = delta
            .iter()
            .flat_map(|&(a, b)| [(a, b), (b, a)])
            .filter(|&(a, b)| scratch.is_marked(a.0) && scratch.is_marked(b.0))
            .count();
        assert_eq!(base + twice / 2, 1);
    }

    #[test]
    fn empty_and_isolated_graphs() {
        let s = CsrSnapshot::freeze(&TemporalGraph::new());
        assert_eq!(s.num_nodes(), 0);
        assert_eq!(s.average_clustering(), 0.0);
        let s = CsrSnapshot::freeze(&TemporalGraph::with_nodes(3));
        assert_eq!(s.num_edges(), 0);
        assert!(!s.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(s.mutual_friends(NodeId(0), NodeId(1)), 0);
    }
}
