//! Dinic max-flow on an explicit arc list.
//!
//! SumUp (Tran et al., NSDI '09) collects votes via approximate max-flow
//! from voters to a collector over the social graph with adaptive link
//! capacities. This module provides the exact max-flow primitive it (and
//! min-cut diagnostics) builds on.

/// A flow network over dense node indices with integer capacities.
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    // Arcs stored pairwise: arc 2k is forward, 2k+1 its residual reverse.
    to: Vec<u32>,
    cap: Vec<i64>,
    head: Vec<Vec<u32>>, // per node: indices into `to`/`cap`
}

impl FlowNetwork {
    /// Create a network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.head.len()
    }

    /// Add a directed arc `u → v` with capacity `c` (and a zero-capacity
    /// residual arc). Panics on out-of-range nodes or negative capacity.
    pub fn add_arc(&mut self, u: usize, v: usize, c: i64) {
        assert!(u < self.head.len() && v < self.head.len(), "arc endpoint out of range");
        assert!(c >= 0, "negative capacity");
        let id = self.to.len() as u32;
        self.to.push(v as u32);
        self.cap.push(c);
        self.to.push(u as u32);
        self.cap.push(0);
        self.head[u].push(id);
        self.head[v].push(id + 1);
    }

    /// Add an undirected edge as two opposing arcs of capacity `c` each.
    pub fn add_undirected(&mut self, u: usize, v: usize, c: i64) {
        self.add_arc(u, v, c);
        self.add_arc(v, u, c);
    }

    /// Maximum flow from `s` to `t` (Dinic's algorithm). Consumes residual
    /// capacities in place; call on a clone to preserve the network.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        assert!(s < self.head.len() && t < self.head.len());
        if s == t {
            return 0;
        }
        let n = self.head.len();
        let mut flow = 0i64;
        let mut level = vec![-1i32; n];
        let mut it = vec![0usize; n];
        loop {
            // BFS to build level graph.
            for l in level.iter_mut() {
                *l = -1;
            }
            level[s] = 0;
            let mut q = std::collections::VecDeque::new();
            q.push_back(s);
            while let Some(u) = q.pop_front() {
                for &a in &self.head[u] {
                    let v = self.to[a as usize] as usize;
                    if self.cap[a as usize] > 0 && level[v] < 0 {
                        level[v] = level[u] + 1;
                        q.push_back(v);
                    }
                }
            }
            if level[t] < 0 {
                return flow;
            }
            for i in it.iter_mut() {
                *i = 0;
            }
            // DFS blocking flow.
            loop {
                let pushed = self.dfs(s, t, i64::MAX, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
    }

    fn dfs(&mut self, u: usize, t: usize, limit: i64, level: &[i32], it: &mut [usize]) -> i64 {
        if u == t {
            return limit;
        }
        while it[u] < self.head[u].len() {
            let a = self.head[u][it[u]] as usize;
            let v = self.to[a] as usize;
            if self.cap[a] > 0 && level[v] == level[u] + 1 {
                let pushed = self.dfs(v, t, limit.min(self.cap[a]), level, it);
                if pushed > 0 {
                    self.cap[a] -= pushed;
                    self.cap[a ^ 1] += pushed;
                    return pushed;
                }
            }
            it[u] += 1;
        }
        0
    }

    /// Arc ids leaving `u` (forward and residual arcs alike).
    pub fn arcs_from(&self, u: usize) -> &[u32] {
        &self.head[u]
    }

    /// Head (destination) node of arc `a`.
    pub fn arc_to(&self, a: u32) -> usize {
        self.to[a as usize] as usize
    }

    /// Residual capacity of arc `a`.
    pub fn arc_cap(&self, a: u32) -> i64 {
        self.cap[a as usize]
    }

    /// Tail (origin) node of arc `a` — the head of its paired reverse arc.
    pub fn arc_from_endpoint(&self, a: usize) -> usize {
        self.to[a ^ 1] as usize
    }

    /// Push one unit of flow along arc `a`, updating the residual pair.
    /// Panics if the arc has no remaining capacity.
    pub fn push_unit(&mut self, a: usize) {
        assert!(self.cap[a] > 0, "push on saturated arc");
        self.cap[a] -= 1;
        self.cap[a ^ 1] += 1;
    }

    /// Nodes on the source side of the min cut after [`Self::max_flow`] has
    /// saturated the network.
    pub fn min_cut_side(&self, s: usize) -> Vec<bool> {
        let mut side = vec![false; self.head.len()];
        let mut q = std::collections::VecDeque::new();
        side[s] = true;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &a in &self.head[u] {
                let v = self.to[a as usize] as usize;
                if self.cap[a as usize] > 0 && !side[v] {
                    side[v] = true;
                    q.push_back(v);
                }
            }
        }
        side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_arc() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 5);
        assert_eq!(net.max_flow(0, 1), 5);
    }

    #[test]
    fn series_takes_min() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 7);
        net.add_arc(1, 2, 3);
        assert_eq!(net.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_adds() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 2);
        net.add_arc(1, 3, 2);
        net.add_arc(0, 2, 3);
        net.add_arc(2, 3, 3);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn classic_clrs_network() {
        // CLRS figure 26.1 network, max flow 23.
        let mut net = FlowNetwork::new(6);
        net.add_arc(0, 1, 16);
        net.add_arc(0, 2, 13);
        net.add_arc(1, 2, 10);
        net.add_arc(2, 1, 4);
        net.add_arc(1, 3, 12);
        net.add_arc(3, 2, 9);
        net.add_arc(2, 4, 14);
        net.add_arc(4, 3, 7);
        net.add_arc(3, 5, 20);
        net.add_arc(4, 5, 4);
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn disconnected_zero_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 10);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn same_source_sink() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 1);
        assert_eq!(net.max_flow(0, 0), 0);
    }

    #[test]
    fn undirected_edge_flows_both_ways() {
        let mut net = FlowNetwork::new(3);
        net.add_undirected(0, 1, 4);
        net.add_undirected(1, 2, 4);
        assert_eq!(net.clone_flow(0, 2), 4);
        // And the reverse direction on a fresh network.
        let mut net2 = FlowNetwork::new(3);
        net2.add_undirected(0, 1, 4);
        net2.add_undirected(1, 2, 4);
        assert_eq!(net2.max_flow(2, 0), 4);
    }

    impl FlowNetwork {
        fn clone_flow(&self, s: usize, t: usize) -> i64 {
            self.clone().max_flow(s, t)
        }
    }

    #[test]
    fn min_cut_separates_bottleneck() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 100);
        net.add_arc(1, 2, 1); // bottleneck
        net.add_arc(2, 3, 100);
        assert_eq!(net.max_flow(0, 3), 1);
        let side = net.min_cut_side(0);
        assert_eq!(side, vec![true, true, false, false]);
    }
}
