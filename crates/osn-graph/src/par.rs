//! Deterministic parallel map over index ranges.
//!
//! The analytics sweeps (clustering over every node, feature extraction for
//! every account, per-suspect defense verdicts, CV folds) are all shaped
//! like `(0..len).map(f).collect()` with a pure `f`. This module runs that
//! shape across threads while keeping the output **bit-identical** to the
//! serial loop: the index range is split into contiguous chunks, each
//! worker computes its chunk in index order, and the collector reassembles
//! chunks by position. No reduction reassociation, no work stealing — so
//! floating-point results cannot differ from the serial path.
//!
//! Thread count comes from the `RENREN_THREADS` environment variable when
//! set (any value ≥ 1), otherwise from `std::thread::available_parallelism`.
//! With one thread (or one-element inputs) everything runs inline on the
//! calling thread with zero spawn/channel overhead.

use std::thread;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "RENREN_THREADS";

/// The number of worker threads parallel maps will use: the
/// `RENREN_THREADS` override when set and ≥ 1, else available parallelism.
pub fn num_threads() -> usize {
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// `(0..len).map(f).collect()`, computed on [`num_threads`] threads with
/// output order (and every output bit) identical to the serial loop.
pub fn map_indexed<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_indexed_with(len, || (), move |(), i| f(i))
}

/// Like [`map_indexed`], with a per-worker scratch state built by `init`
/// (e.g. a [`NeighborScratch`](crate::snapshot::NeighborScratch) or an
/// RNG-free reusable buffer). `init` runs once per worker chunk; `f` must
/// produce output independent of the scratch's history for determinism to
/// hold — scratch is for *allocations*, not for values.
pub fn map_indexed_with<S, T, I, F>(len: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = num_threads().min(len);
    if threads <= 1 {
        let mut scratch = init();
        return (0..len).map(|i| f(&mut scratch, i)).collect();
    }

    let chunk = len.div_ceil(threads);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, Vec<T>)>();
    thread::scope(|scope| {
        for (ci, start) in (0..len).step_by(chunk).enumerate() {
            let end = (start + chunk).min(len);
            let tx = tx.clone();
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut scratch = init();
                let vals: Vec<T> = (start..end).map(|i| f(&mut scratch, i)).collect();
                // The receiver outlives the scope; a send can only fail if
                // the collector below was dropped, which cannot happen.
                let _ = tx.send((ci, vals));
            });
        }
    });
    drop(tx);

    let chunks_total = len.div_ceil(chunk);
    let mut parts: Vec<Option<Vec<T>>> = std::iter::repeat_with(|| None)
        .take(chunks_total)
        .collect();
    for (ci, vals) in rx.iter() {
        parts[ci] = Some(vals);
    }
    let mut out = Vec::with_capacity(len);
    for part in parts {
        out.extend(part.expect("worker chunk missing"));
    }
    out
}

/// `items.into_iter().map(f).collect()` across threads: each item is
/// *moved* into exactly one worker and mapped there, with the output
/// reassembled in input order. This is the primitive for stateful shard
/// workers — each shard's (large, owned) state travels to a worker thread
/// for the duration of one epoch and comes back transformed, with no
/// sharing and no locks. Output position `i` always holds `f(items[i])`,
/// so results are bit-identical at every thread count.
pub fn map_owned<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let len = items.len();
    let threads = num_threads().min(len);
    if threads <= 1 {
        return items.into_iter().map(&f).collect();
    }

    let chunk = len.div_ceil(threads);
    // Split into contiguous per-worker chunks up front; ownership of each
    // chunk moves into its worker thread.
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let part: Vec<T> = it.by_ref().take(chunk).collect();
        if part.is_empty() {
            break;
        }
        chunks.push(part);
    }

    let chunks_total = chunks.len();
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, Vec<U>)>();
    thread::scope(|scope| {
        for (ci, part) in chunks.into_iter().enumerate() {
            let tx = tx.clone();
            let f = &f;
            scope.spawn(move || {
                let vals: Vec<U> = part.into_iter().map(f).collect();
                // The receiver outlives the scope; a send can only fail if
                // the collector below was dropped, which cannot happen.
                let _ = tx.send((ci, vals));
            });
        }
    });
    drop(tx);

    let mut parts: Vec<Option<Vec<U>>> = std::iter::repeat_with(|| None)
        .take(chunks_total)
        .collect();
    for (ci, vals) in rx.iter() {
        parts[ci] = Some(vals);
    }
    let mut out = Vec::with_capacity(len);
    for part in parts {
        out.extend(part.expect("worker chunk missing"));
    }
    out
}

/// `items.iter().map(f).collect()` across threads, order-preserving.
pub fn map_slice<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    map_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run `body` with `RENREN_THREADS` pinned, restoring the prior value.
    /// Env vars are process-global, so tests touching them share one lock.
    fn with_threads_env(value: Option<&str>, body: impl FnOnce()) {
        use std::sync::{Mutex, OnceLock};
        static ENV_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let _guard = ENV_LOCK.get_or_init(|| Mutex::new(())).lock().unwrap();
        let prior = std::env::var(THREADS_ENV).ok();
        match value {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
        body();
        match prior {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
    }

    #[test]
    fn matches_serial_map_exactly() {
        for &threads in &["1", "2", "3", "8"] {
            with_threads_env(Some(threads), || {
                let expected: Vec<f64> = (0..103).map(|i| (i as f64).sqrt().sin()).collect();
                let got = map_indexed(103, |i| (i as f64).sqrt().sin());
                assert_eq!(got, expected, "threads={threads}");
            });
        }
    }

    #[test]
    fn handles_short_and_empty_inputs() {
        with_threads_env(Some("4"), || {
            assert_eq!(map_indexed(0, |i| i), Vec::<usize>::new());
            assert_eq!(map_indexed(1, |i| i * 7), vec![0]);
            assert_eq!(map_indexed(3, |i| i), vec![0, 1, 2]);
        });
    }

    #[test]
    fn scratch_is_per_worker() {
        with_threads_env(Some("4"), || {
            // Each worker's scratch counts its own calls; outputs stay
            // index-determined regardless of which worker computed them.
            let got = map_indexed_with(
                20,
                || 0usize,
                |calls, i| {
                    *calls += 1;
                    i * 2
                },
            );
            assert_eq!(got, (0..20).map(|i| i * 2).collect::<Vec<_>>());
        });
    }

    #[test]
    fn env_override_controls_thread_count() {
        with_threads_env(Some("3"), || assert_eq!(num_threads(), 3));
        with_threads_env(Some("not-a-number"), || {
            assert!(num_threads() >= 1);
        });
        with_threads_env(Some("0"), || assert!(num_threads() >= 1));
    }

    #[test]
    fn map_owned_moves_items_and_preserves_order() {
        for &threads in &["1", "2", "8"] {
            with_threads_env(Some(threads), || {
                // Non-Clone, non-Copy items prove real moves.
                let items: Vec<Box<usize>> = (0..23).map(Box::new).collect();
                let got = map_owned(items, |b| *b * 3);
                assert_eq!(got, (0..23).map(|i| i * 3).collect::<Vec<_>>(), "threads={threads}");
            });
        }
        with_threads_env(Some("4"), || {
            assert_eq!(map_owned(Vec::<u8>::new(), |b| b), Vec::<u8>::new());
        });
    }

    #[test]
    fn map_slice_preserves_order() {
        with_threads_env(Some("2"), || {
            let items: Vec<String> = (0..9).map(|i| format!("s{i}")).collect();
            let got = map_slice(&items, |s| s.len());
            assert_eq!(got, vec![2; 9]);
        });
    }
}
