//! The [`TemporalGraph`] store: an undirected friendship graph whose edges
//! carry creation timestamps.
//!
//! The paper's entire topological analysis (§3) runs over edge-creation
//! metadata: which edges exist, between whom, and *when* each was formed.
//! This store keeps per-node adjacency in **edge-creation order** (so that
//! “first 50 friends” and Fig. 8's edge-order matrix are cheap) and a global
//! packed edge set for O(1) membership tests (so that clustering
//! coefficients and mutual-friend counts are cheap).

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Identifier of a node (account) in the graph. Dense, starting at zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a usize, for indexing adjacency vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of an edge, equal to its position in global creation order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge index as a usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Simulation time, in seconds since the simulation epoch.
///
/// The paper reports behavior over 1-hour and 400-hour windows; seconds give
/// enough resolution for request-level logs while staying integral (and thus
/// exactly reproducible).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Zero time: the simulation epoch.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Build a timestamp from whole hours.
    #[inline]
    pub fn from_hours(h: u64) -> Self {
        Timestamp(h * 3600)
    }

    /// Build a timestamp from whole days.
    #[inline]
    pub fn from_days(d: u64) -> Self {
        Timestamp(d * 86_400)
    }

    /// Build a timestamp from fractional hours (rounded down to seconds).
    #[inline]
    pub fn from_hours_f64(h: f64) -> Self {
        Timestamp((h * 3600.0).max(0.0) as u64)
    }

    /// This time expressed in fractional hours.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// This time expressed in whole seconds.
    #[inline]
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Saturating addition of a duration in seconds.
    #[inline]
    pub fn plus_secs(self, s: u64) -> Self {
        Timestamp(self.0.saturating_add(s))
    }

    /// Saturating subtraction, clamping at the epoch.
    #[inline]
    pub fn minus_secs(self, s: u64) -> Self {
        Timestamp(self.0.saturating_sub(s))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}h", self.as_hours())
    }
}

/// One end of an adjacency entry: the neighbor, when the friendship formed,
/// and which global edge produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The node on the other side of the edge.
    pub node: NodeId,
    /// When this friendship was established.
    pub time: Timestamp,
    /// The global edge this entry belongs to.
    pub edge: EdgeId,
}

/// A full undirected edge record in global creation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeRecord {
    /// Lower endpoint (by insertion argument order, not by id).
    pub a: NodeId,
    /// Higher endpoint.
    pub b: NodeId,
    /// Creation time.
    pub time: Timestamp,
}

impl EdgeRecord {
    /// The endpoint opposite `n`, or `None` if `n` is not an endpoint.
    pub fn other(&self, n: NodeId) -> Option<NodeId> {
        if self.a == n {
            Some(self.b)
        } else if self.b == n {
            Some(self.a)
        } else {
            None
        }
    }
}

/// Errors returned when mutating a [`TemporalGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// A referenced node id is out of range.
    UnknownNode(NodeId),
    /// Both endpoints of an edge were the same node.
    SelfLoop(NodeId),
    /// The edge already exists.
    DuplicateEdge(NodeId, NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::SelfLoop(n) => write!(f, "self loop on node {n}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a}-{b}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[inline]
fn pack(a: NodeId, b: NodeId) -> u64 {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    ((lo as u64) << 32) | hi as u64
}

/// Undirected friendship graph with edge-creation timestamps.
///
/// Nodes are dense indices `0..n`. Adjacency lists are kept in the order the
/// edges were inserted, which the simulator guarantees is chronological; the
/// paper's “first *k* friends (sorted by time)” analyses read adjacency
/// prefixes directly.
///
/// ```
/// use osn_graph::{TemporalGraph, NodeId, Timestamp};
///
/// let mut g = TemporalGraph::with_nodes(3);
/// g.add_edge(NodeId(0), NodeId(1), Timestamp::from_hours(1)).unwrap();
/// g.add_edge(NodeId(0), NodeId(2), Timestamp::from_hours(5)).unwrap();
/// assert!(g.has_edge(NodeId(1), NodeId(0)));
/// assert_eq!(g.degree(NodeId(0)), 2);
/// // Adjacency is chronological: the paper's "first k friends by time".
/// assert_eq!(g.first_k_friends(NodeId(0), 1)[0].node, NodeId(1));
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TemporalGraph {
    adj: Vec<Vec<Neighbor>>,
    edges: Vec<EdgeRecord>,
    #[serde(skip)]
    edge_set: HashSet<u64>,
}

impl TemporalGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        TemporalGraph {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
            edge_set: HashSet::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Append one node and return its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.adj.len() as u32);
        self.adj.push(Vec::new());
        id
    }

    /// Append `n` nodes and return the id of the first.
    pub fn add_nodes(&mut self, n: usize) -> NodeId {
        let first = NodeId(self.adj.len() as u32);
        self.adj.resize_with(self.adj.len() + n, Vec::new);
        first
    }

    /// True if `n` is a valid node id.
    #[inline]
    pub(crate) fn contains_node(&self, n: NodeId) -> bool {
        n.index() < self.adj.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len() as u32).map(NodeId)
    }

    /// Insert an undirected edge `a — b` created at `time`.
    ///
    /// Fails on unknown endpoints, self-loops and duplicates. Callers are
    /// expected to insert edges in nondecreasing time order; this is not
    /// enforced (imported datasets may be unordered) but temporal analyses
    /// assume it per node.
    pub fn add_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        time: Timestamp,
    ) -> Result<EdgeId, GraphError> {
        if !self.contains_node(a) {
            return Err(GraphError::UnknownNode(a));
        }
        if !self.contains_node(b) {
            return Err(GraphError::UnknownNode(b));
        }
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        if !self.edge_set.insert(pack(a, b)) {
            return Err(GraphError::DuplicateEdge(a, b));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeRecord { a, b, time });
        self.adj[a.index()].push(Neighbor {
            node: b,
            time,
            edge: id,
        });
        self.adj[b.index()].push(Neighbor {
            node: a,
            time,
            edge: id,
        });
        Ok(id)
    }

    /// O(1) membership test for the undirected edge `a — b`.
    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.edge_set.contains(&pack(a, b))
    }

    /// Adjacency list of `n`, in edge-creation order.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[Neighbor] {
        &self.adj[n.index()]
    }

    /// Degree of `n`.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.index()].len()
    }

    /// The first `k` friends of `n` in chronological order (the paper's
    /// Fig. 4 computes clustering over exactly this prefix with k = 50).
    pub fn first_k_friends(&self, n: NodeId, k: usize) -> &[Neighbor] {
        let a = &self.adj[n.index()];
        &a[..a.len().min(k)]
    }

    /// Neighbors of `n` whose friendship existed strictly before `t`.
    pub fn neighbors_before(&self, n: NodeId, t: Timestamp) -> impl Iterator<Item = &Neighbor> {
        self.adj[n.index()].iter().filter(move |nb| nb.time < t)
    }

    /// All edges in global creation order.
    #[inline]
    pub fn edges(&self) -> &[EdgeRecord] {
        &self.edges
    }

    /// Look up one edge record.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &EdgeRecord {
        &self.edges[e.index()]
    }

    /// Rebuild the packed edge set (needed after deserialization, which
    /// skips the derived set).
    pub fn rebuild_index(&mut self) {
        self.edge_set = self.edges.iter().map(|e| pack(e.a, e.b)).collect();
    }

    /// Count of mutual friends between `a` and `b`.
    ///
    /// Scans the smaller adjacency list with a single packed edge-set probe
    /// per neighbor, so it is `O(min(deg a, deg b))`. A neighbor equal to
    /// the other endpoint packs to the `a`—`b` edge itself (or a self-loop
    /// when the pair is not linked), neither of which is a mutual friend,
    /// so no separate endpoint guard is needed beyond the one probe. For
    /// bulk all-pairs counting, [`CsrSnapshot::mutual_friends`]
    /// (crate::snapshot::CsrSnapshot::mutual_friends) replaces hashing
    /// with a sorted-adjacency merge.
    pub fn mutual_friends(&self, a: NodeId, b: NodeId) -> usize {
        let (small, other) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.adj[small.index()]
            .iter()
            .filter(|nb| self.edge_set.contains(&pack(nb.node, other)))
            .count()
    }

    /// Sum of degrees (`2 * num_edges`), the `vol(V)` of conductance math.
    pub fn volume(&self) -> usize {
        2 * self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(h: u64) -> Timestamp {
        Timestamp::from_hours(h)
    }

    #[test]
    fn empty_graph() {
        let g = TemporalGraph::new();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.nodes().next().is_none());
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = TemporalGraph::with_nodes(3);
        assert_eq!(g.num_nodes(), 3);
        let e = g.add_edge(NodeId(0), NodeId(1), t(1)).unwrap();
        assert_eq!(e, EdgeId(0));
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(2)), 0);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = TemporalGraph::with_nodes(2);
        assert_eq!(
            g.add_edge(NodeId(1), NodeId(1), t(0)),
            Err(GraphError::SelfLoop(NodeId(1)))
        );
    }

    #[test]
    fn rejects_duplicate_both_orientations() {
        let mut g = TemporalGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), t(0)).unwrap();
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(1), t(1)),
            Err(GraphError::DuplicateEdge(_, _))
        ));
        assert!(matches!(
            g.add_edge(NodeId(1), NodeId(0), t(1)),
            Err(GraphError::DuplicateEdge(_, _))
        ));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn rejects_unknown_node() {
        let mut g = TemporalGraph::with_nodes(1);
        assert_eq!(
            g.add_edge(NodeId(0), NodeId(5), t(0)),
            Err(GraphError::UnknownNode(NodeId(5)))
        );
    }

    #[test]
    fn adjacency_preserves_insertion_order() {
        let mut g = TemporalGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(2), t(5)).unwrap();
        g.add_edge(NodeId(0), NodeId(1), t(7)).unwrap();
        g.add_edge(NodeId(0), NodeId(3), t(9)).unwrap();
        let order: Vec<u32> = g.neighbors(NodeId(0)).iter().map(|n| n.node.0).collect();
        assert_eq!(order, vec![2, 1, 3]);
        assert_eq!(g.first_k_friends(NodeId(0), 2).len(), 2);
        assert_eq!(g.first_k_friends(NodeId(0), 10).len(), 3);
    }

    #[test]
    fn neighbors_before_filters_by_time() {
        let mut g = TemporalGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), t(1)).unwrap();
        g.add_edge(NodeId(0), NodeId(2), t(3)).unwrap();
        let before: Vec<u32> = g
            .neighbors_before(NodeId(0), t(3))
            .map(|n| n.node.0)
            .collect();
        assert_eq!(before, vec![1]);
    }

    #[test]
    fn mutual_friends_counts_triangles() {
        let mut g = TemporalGraph::with_nodes(5);
        // 0-1, 0-2, 1-2 triangle; 3 friends with 0 and 1 as well.
        g.add_edge(NodeId(0), NodeId(1), t(0)).unwrap();
        g.add_edge(NodeId(0), NodeId(2), t(1)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), t(2)).unwrap();
        g.add_edge(NodeId(0), NodeId(3), t(3)).unwrap();
        g.add_edge(NodeId(1), NodeId(3), t(4)).unwrap();
        assert_eq!(g.mutual_friends(NodeId(0), NodeId(1)), 2); // 2 and 3
        assert_eq!(g.mutual_friends(NodeId(0), NodeId(4)), 0);
        assert_eq!(g.mutual_friends(NodeId(2), NodeId(3)), 2); // 0 and 1
    }

    #[test]
    fn edge_record_other() {
        let r = EdgeRecord {
            a: NodeId(3),
            b: NodeId(7),
            time: t(0),
        };
        assert_eq!(r.other(NodeId(3)), Some(NodeId(7)));
        assert_eq!(r.other(NodeId(7)), Some(NodeId(3)));
        assert_eq!(r.other(NodeId(1)), None);
    }

    #[test]
    fn timestamp_conversions() {
        assert_eq!(Timestamp::from_hours(2).as_secs(), 7200);
        assert_eq!(Timestamp::from_days(1).as_hours(), 24.0);
        assert_eq!(Timestamp::from_hours_f64(0.5).as_secs(), 1800);
        assert_eq!(Timestamp(100).plus_secs(20).0, 120);
        assert_eq!(Timestamp(100).minus_secs(200), Timestamp::ZERO);
    }

    #[test]
    fn rebuild_index_restores_membership() {
        let mut g = TemporalGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), t(0)).unwrap();
        let mut g2 = g.clone();
        g2.edge_set.clear();
        assert!(!g2.has_edge(NodeId(0), NodeId(1)));
        g2.rebuild_index();
        assert!(g2.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn volume_is_twice_edges() {
        let mut g = TemporalGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), t(0)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), t(0)).unwrap();
        assert_eq!(g.volume(), 4);
    }
}
