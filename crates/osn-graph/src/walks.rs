//! Random walks and random *routes*.
//!
//! SybilGuard and SybilLimit are built on *random routes*: each node fixes a
//! random one-to-one mapping (a permutation) between its incident edges, so
//! that a route entering through edge `e` always leaves through `π(e)`.
//! Routes are thus deterministic given the tables, and two routes that ever
//! traverse the same directed edge converge forever after — the property
//! both protocols exploit. Plain uniform random walks are also provided for
//! SybilInfer and general diagnostics.

use crate::graph::{NodeId, TemporalGraph};
use rand::prelude::*;

/// A plain uniform random walk of `len` steps starting at `start`.
///
/// Returns the visited nodes including the start (`len + 1` entries), or
/// just `[start]` if the start is isolated (walks cannot leave an isolated
/// node; they stall and are truncated).
pub fn random_walk<R: Rng + ?Sized>(
    g: &TemporalGraph,
    start: NodeId,
    len: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut path = Vec::with_capacity(len + 1);
    path.push(start);
    let mut cur = start;
    for _ in 0..len {
        let nb = g.neighbors(cur);
        if nb.is_empty() {
            break;
        }
        cur = nb[rng.random_range(0..nb.len())].node;
        path.push(cur);
    }
    path
}

/// The stationary-distribution-respecting walk endpoint sampler: performs a
/// walk of `len` steps and returns the final node.
pub fn walk_endpoint<R: Rng + ?Sized>(
    g: &TemporalGraph,
    start: NodeId,
    len: usize,
    rng: &mut R,
) -> NodeId {
    random_walk(g, start, len, rng).last().copied().unwrap_or(start)
}

/// Per-node random routing tables for SybilGuard/SybilLimit random routes.
///
/// `perm[v][i] = j` means a route entering node `v` through the edge at
/// adjacency position `i` leaves through the edge at position `j`. Each
/// `perm[v]` is a uniform random permutation drawn at construction time.
#[derive(Clone, Debug)]
pub struct RouteTables {
    perm: Vec<Vec<u32>>,
    /// For every edge id: position of the edge within `a`'s and `b`'s
    /// adjacency lists, enabling O(1) reverse-position lookup during routing.
    edge_pos: Vec<(u32, u32)>,
}

/// A directed step used to seed a route: the node we start from and the
/// adjacency position of the first edge to take.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteStart {
    /// Starting node.
    pub node: NodeId,
    /// Index into `node`'s adjacency list for the first hop.
    pub first_edge: usize,
}

impl RouteTables {
    /// Draw fresh random routing tables for `g`.
    pub fn new<R: Rng + ?Sized>(g: &TemporalGraph, rng: &mut R) -> Self {
        let mut perm = Vec::with_capacity(g.num_nodes());
        for n in g.nodes() {
            let d = g.degree(n);
            let mut p: Vec<u32> = (0..d as u32).collect();
            p.shuffle(rng);
            perm.push(p);
        }
        let mut edge_pos = vec![(u32::MAX, u32::MAX); g.num_edges()];
        for n in g.nodes() {
            for (i, nb) in g.neighbors(n).iter().enumerate() {
                let e = nb.edge.index();
                let rec = g.edge(nb.edge);
                if rec.a == n {
                    edge_pos[e].0 = i as u32;
                } else {
                    edge_pos[e].1 = i as u32;
                }
            }
        }
        RouteTables { perm, edge_pos }
    }

    /// Position of edge `e` in the adjacency list of endpoint `n`.
    fn pos_at(&self, g: &TemporalGraph, e: crate::graph::EdgeId, n: NodeId) -> usize {
        let rec = g.edge(e);
        let (pa, pb) = self.edge_pos[e.index()];
        if rec.a == n {
            pa as usize
        } else {
            debug_assert_eq!(rec.b, n);
            pb as usize
        }
    }

    /// Walk a random route of `len` hops from `start`.
    ///
    /// Returns the node sequence (start first, ≤ `len + 1` entries; shorter
    /// only if the start is isolated). Routes are fully deterministic: the
    /// same `start` always produces the same route for fixed tables.
    pub fn route(&self, g: &TemporalGraph, start: RouteStart, len: usize) -> Vec<NodeId> {
        let mut path = Vec::with_capacity(len + 1);
        path.push(start.node);
        let nb = g.neighbors(start.node);
        if nb.is_empty() || len == 0 {
            return path;
        }
        debug_assert!(start.first_edge < nb.len());
        let mut edge = nb[start.first_edge].edge;
        let mut cur = nb[start.first_edge].node;
        path.push(cur);
        for _ in 1..len {
            let in_pos = self.pos_at(g, edge, cur);
            let out_pos = self.perm[cur.index()][in_pos] as usize;
            let next = g.neighbors(cur)[out_pos];
            edge = next.edge;
            cur = next.node;
            path.push(cur);
        }
        path
    }

    /// The directed edge (`tail` of the route) traversed on the final hop of
    /// a route, as `(from, to)` — SybilLimit intersects on these tails.
    pub fn route_tail(
        &self,
        g: &TemporalGraph,
        start: RouteStart,
        len: usize,
    ) -> Option<(NodeId, NodeId)> {
        let p = self.route(g, start, len);
        if p.len() < 2 {
            None
        } else {
            Some((p[p.len() - 2], p[p.len() - 1]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Timestamp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cycle_graph(n: usize) -> TemporalGraph {
        let mut g = TemporalGraph::with_nodes(n);
        for i in 0..n {
            g.add_edge(
                NodeId(i as u32),
                NodeId(((i + 1) % n) as u32),
                Timestamp::ZERO,
            )
            .unwrap();
        }
        g
    }

    #[test]
    fn walk_length_and_adjacency() {
        let g = cycle_graph(6);
        let mut rng = StdRng::seed_from_u64(7);
        let path = random_walk(&g, NodeId(0), 20, &mut rng);
        assert_eq!(path.len(), 21);
        for w in path.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "walk must follow edges");
        }
    }

    #[test]
    fn walk_on_isolated_node_stalls() {
        let g = TemporalGraph::with_nodes(1);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(random_walk(&g, NodeId(0), 5, &mut rng), vec![NodeId(0)]);
        assert_eq!(walk_endpoint(&g, NodeId(0), 5, &mut rng), NodeId(0));
    }

    #[test]
    fn routes_are_deterministic() {
        let g = cycle_graph(8);
        let mut rng = StdRng::seed_from_u64(3);
        let rt = RouteTables::new(&g, &mut rng);
        let s = RouteStart {
            node: NodeId(0),
            first_edge: 0,
        };
        let r1 = rt.route(&g, s, 10);
        let r2 = rt.route(&g, s, 10);
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), 11);
        for w in r1.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn routes_entering_same_directed_edge_converge() {
        // Back-to-back property: once two routes traverse the same directed
        // edge they coincide ever after.
        let g = cycle_graph(10);
        let mut rng = StdRng::seed_from_u64(11);
        let rt = RouteTables::new(&g, &mut rng);
        let len = 12;
        let ra = rt.route(
            &g,
            RouteStart {
                node: NodeId(0),
                first_edge: 0,
            },
            len,
        );
        let rb = rt.route(
            &g,
            RouteStart {
                node: NodeId(0),
                first_edge: 1,
            },
            len,
        );
        // Find the first shared directed edge, then require suffix equality.
        let dir_edges = |p: &[NodeId]| -> Vec<(NodeId, NodeId)> {
            p.windows(2).map(|w| (w[0], w[1])).collect()
        };
        let ea = dir_edges(&ra);
        let eb = dir_edges(&rb);
        for (i, sa) in ea.iter().enumerate() {
            if let Some(j) = eb.iter().position(|sb| sb == sa) {
                let rest = (len - 1 - i.max(j)).min(ea.len() - 1 - i).min(eb.len() - 1 - j);
                for k in 0..rest {
                    assert_eq!(ea[i + k], eb[j + k], "routes must converge after shared edge");
                }
                return;
            }
        }
        // On a small cycle, sharing is essentially guaranteed; if not, the
        // test is vacuous but should not fail.
    }

    #[test]
    fn route_tail_returns_last_hop() {
        let g = cycle_graph(5);
        let mut rng = StdRng::seed_from_u64(5);
        let rt = RouteTables::new(&g, &mut rng);
        let s = RouteStart {
            node: NodeId(2),
            first_edge: 0,
        };
        let p = rt.route(&g, s, 4);
        let tail = rt.route_tail(&g, s, 4).unwrap();
        assert_eq!(tail, (p[p.len() - 2], p[p.len() - 1]));
    }

    #[test]
    fn route_zero_length() {
        let g = cycle_graph(4);
        let mut rng = StdRng::seed_from_u64(9);
        let rt = RouteTables::new(&g, &mut rng);
        let p = rt.route(
            &g,
            RouteStart {
                node: NodeId(1),
                first_edge: 0,
            },
            0,
        );
        assert_eq!(p, vec![NodeId(1)]);
        assert!(rt
            .route_tail(
                &g,
                RouteStart {
                    node: NodeId(1),
                    first_edge: 0
                },
                0
            )
            .is_none());
    }
}
