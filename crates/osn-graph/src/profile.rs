//! One-call graph census.
//!
//! Bundles the structural measurements a reviewer would ask for into one
//! report: size, degree distribution summary, clustering, assortativity,
//! rich-club density, core structure, components, mixing, and sampled
//! path lengths. Used by the `graph_census` example and handy when
//! validating that a simulated network looks like a real OSN.

use crate::graph::{NodeId, TemporalGraph};
use crate::{clustering, components, kcore, metrics, paths, spectral};
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// A structural profile of one graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphProfile {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Median degree.
    pub median_degree: usize,
    /// 99th-percentile degree.
    pub p99_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean local clustering coefficient (degree ≥ 2 nodes).
    pub avg_clustering: f64,
    /// Global clustering (transitivity).
    pub global_clustering: f64,
    /// Degree assortativity (None if undefined).
    pub assortativity: Option<f64>,
    /// Rich-club density among nodes above the 99th degree percentile.
    pub rich_club_p99: Option<f64>,
    /// Degeneracy (max non-empty k-core).
    pub degeneracy: u32,
    /// Number of connected components.
    pub num_components: usize,
    /// Fraction of nodes in the largest component.
    pub giant_fraction: f64,
    /// Spectral gap of the lazy walk (None on edgeless graphs).
    pub spectral_gap: Option<f64>,
    /// Mean sampled hop distance.
    pub mean_distance: f64,
    /// Observed diameter lower bound.
    pub diameter_lower_bound: u32,
}

impl GraphProfile {
    /// Compute the census. `bfs_sources` BFS samples drive the path
    /// statistics; the whole call is `O(sources·(n+m) + n·d² )`-ish, a few
    /// seconds on a 10⁵-node graph.
    pub fn compute<R: Rng + ?Sized>(
        g: &TemporalGraph,
        bfs_sources: usize,
        rng: &mut R,
    ) -> GraphProfile {
        let mut degrees: Vec<usize> = (0..g.num_nodes() as u32)
            .map(|i| g.degree(NodeId(i)))
            .collect();
        degrees.sort_unstable();
        let quant = |q: f64| -> usize {
            if degrees.is_empty() {
                0
            } else {
                degrees[((degrees.len() as f64 - 1.0) * q) as usize]
            }
        };
        let comps = components::connected_components(g);
        let giant = comps.first().map_or(0, |c| c.len());
        let path = paths::sample_path_stats(g, bfs_sources, rng);
        GraphProfile {
            nodes: g.num_nodes(),
            edges: g.num_edges(),
            mean_degree: if g.num_nodes() == 0 {
                0.0
            } else {
                2.0 * g.num_edges() as f64 / g.num_nodes() as f64
            },
            median_degree: quant(0.5),
            p99_degree: quant(0.99),
            max_degree: degrees.last().copied().unwrap_or(0),
            avg_clustering: clustering::average_clustering(g),
            global_clustering: clustering::global_clustering(g),
            assortativity: metrics::degree_assortativity(g),
            rich_club_p99: metrics::rich_club_coefficient(g, quant(0.99)),
            degeneracy: kcore::degeneracy(g),
            num_components: comps.len(),
            giant_fraction: if g.num_nodes() == 0 {
                0.0
            } else {
                giant as f64 / g.num_nodes() as f64
            },
            spectral_gap: spectral::spectral_gap(g, 60, 0xCE05),
            mean_distance: path.map_or(0.0, |p| p.mean_distance),
            diameter_lower_bound: path.map_or(0, |p| p.diameter_lower_bound),
        }
    }

    /// Render as an aligned key/value block.
    pub fn render(&self) -> String {
        let opt = |o: Option<f64>| o.map_or("n/a".to_string(), |v| format!("{v:.4}"));
        format!(
            "nodes                {}\n\
             edges                {}\n\
             degree mean/median   {:.1} / {}\n\
             degree p99/max       {} / {}\n\
             avg clustering       {:.4}\n\
             transitivity         {:.4}\n\
             assortativity        {}\n\
             rich-club (p99)      {}\n\
             degeneracy (k-core)  {}\n\
             components           {} (giant {:.1}%)\n\
             spectral gap         {}\n\
             mean distance        {:.2} (diameter ≥ {})\n",
            self.nodes,
            self.edges,
            self.mean_degree,
            self.median_degree,
            self.p99_degree,
            self.max_degree,
            self.avg_clustering,
            self.global_clustering,
            opt(self.assortativity),
            opt(self.rich_club_p99),
            self.degeneracy,
            self.num_components,
            100.0 * self.giant_fraction,
            opt(self.spectral_gap),
            self.mean_distance,
            self.diameter_lower_bound,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Timestamp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn census_of_ba_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::barabasi_albert(1000, 4, Timestamp::ZERO, &mut rng);
        let p = GraphProfile::compute(&g, 10, &mut rng);
        assert_eq!(p.nodes, 1000);
        assert!(p.mean_degree > 7.0 && p.mean_degree < 9.0);
        assert!(p.max_degree >= p.p99_degree);
        assert!(p.p99_degree >= p.median_degree);
        assert_eq!(p.num_components, 1);
        assert_eq!(p.giant_fraction, 1.0);
        assert!(p.degeneracy >= 3);
        assert!(p.mean_distance > 1.0 && p.mean_distance < 7.0);
        assert!(p.spectral_gap.unwrap() > 0.0);
        let text = p.render();
        assert!(text.contains("nodes"));
        assert!(text.contains("giant 100.0%"));
    }

    #[test]
    fn census_of_empty_graph() {
        let g = TemporalGraph::new();
        let mut rng = StdRng::seed_from_u64(2);
        let p = GraphProfile::compute(&g, 5, &mut rng);
        assert_eq!(p.nodes, 0);
        assert_eq!(p.mean_degree, 0.0);
        assert_eq!(p.num_components, 0);
        assert_eq!(p.spectral_gap, None);
        assert!(p.render().contains("n/a"));
    }
}
