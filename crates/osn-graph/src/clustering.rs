//! Clustering coefficients.
//!
//! Fig. 4 of the paper plots the CDF of the clustering coefficient computed
//! over each user's **first 50 friends sorted by friendship time** — a
//! real-time-friendly variant that only needs invitation data. Normal users
//! average ≈ 0.0386 and Sybils ≈ 0.0006 because Sybils befriend strangers
//! with no mutual ties.

use crate::graph::{Neighbor, NodeId, TemporalGraph, Timestamp};
use crate::par;

/// Local clustering coefficient of `n` over its entire neighborhood:
/// `edges-among-neighbors / C(deg, 2)`. Zero when `deg < 2`.
pub fn local_clustering(g: &TemporalGraph, n: NodeId) -> f64 {
    clustering_over(g, g.neighbors(n))
}

/// The paper's Fig. 4 metric: clustering coefficient over the first `k`
/// friends of `n` in chronological order. Zero when fewer than 2 friends.
pub fn first_k_clustering(g: &TemporalGraph, n: NodeId, k: usize) -> f64 {
    clustering_over(g, g.first_k_friends(n, k))
}

/// Clustering coefficient over the friends of `n` acquired strictly before
/// `t` — what a streaming detector can know mid-simulation. Like the other
/// temporal analyses, this reads the friends-before-`t` set as a prefix of
/// the chronologically ordered adjacency list.
pub fn clustering_before(g: &TemporalGraph, n: NodeId, t: Timestamp) -> f64 {
    let adj = g.neighbors(n);
    let cut = adj.partition_point(|nb| nb.time < t);
    clustering_over(g, &adj[..cut])
}

/// Pairwise-probe clustering over a borrowed friend slice — no
/// intermediate collection. For bulk sweeps prefer the
/// [`CsrSnapshot`](crate::snapshot::CsrSnapshot) kernels, which replace
/// the O(k²) membership probes with O(Σ deg) scratch marking.
fn clustering_over(g: &TemporalGraph, fs: &[Neighbor]) -> f64 {
    let k = fs.len();
    if k < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            if g.has_edge(fs[i].node, fs[j].node) {
                links += 1;
            }
        }
    }
    links as f64 / (k * (k - 1) / 2) as f64
}

/// Mean local clustering coefficient over all nodes with degree ≥ 2
/// (the usual "average clustering" summary).
///
/// Runs the per-node kernels through [`par::map_indexed_with`]; the sum
/// itself stays in node order, so the result is bit-identical at any
/// thread count.
pub fn average_clustering(g: &TemporalGraph) -> f64 {
    let snap = crate::snapshot::CsrSnapshot::freeze(g);
    let per_node = par::map_indexed_with(
        g.num_nodes(),
        || crate::snapshot::NeighborScratch::new(snap.num_nodes()),
        |scratch, i| {
            let n = NodeId(i as u32);
            (snap.degree(n) >= 2).then(|| snap.local_clustering(n, scratch))
        },
    );
    let mut sum = 0.0;
    let mut count = 0usize;
    for cc in per_node.into_iter().flatten() {
        sum += cc;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// First-`k` clustering ([`first_k_clustering`]) for every node, computed
/// over a shared snapshot on [`par::num_threads`] threads. Output order
/// and bits match the serial per-node loop.
pub fn first_k_clustering_all(g: &TemporalGraph, k: usize) -> Vec<f64> {
    let snap = crate::snapshot::CsrSnapshot::freeze(g);
    par::map_indexed_with(
        g.num_nodes(),
        || crate::snapshot::NeighborScratch::new(snap.num_nodes()),
        |scratch, i| snap.first_k_clustering(NodeId(i as u32), k, scratch),
    )
}

/// Global clustering coefficient (transitivity): `3 × triangles / wedges`.
pub fn global_clustering(g: &TemporalGraph) -> f64 {
    let mut closed = 0u64; // ordered wedge centers whose endpoints are linked
    let mut wedges = 0u64;
    for n in g.nodes() {
        let nb = g.neighbors(n);
        let d = nb.len() as u64;
        if d < 2 {
            continue;
        }
        wedges += d * (d - 1) / 2;
        for i in 0..nb.len() {
            for j in (i + 1)..nb.len() {
                if g.has_edge(nb[i].node, nb[j].node) {
                    closed += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        closed as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(h: u64) -> Timestamp {
        Timestamp::from_hours(h)
    }

    /// Node 0 with friends 1, 2, 3 (in that time order); 1-2 linked.
    fn wedge_graph() -> TemporalGraph {
        let mut g = TemporalGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), t(1)).unwrap();
        g.add_edge(NodeId(0), NodeId(2), t(2)).unwrap();
        g.add_edge(NodeId(0), NodeId(3), t(3)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), t(4)).unwrap();
        g
    }

    #[test]
    fn local_clustering_counts_neighbor_links() {
        let g = wedge_graph();
        // Neighbors of 0: {1,2,3}; one link (1-2) out of 3 possible pairs.
        assert!((local_clustering(&g, NodeId(0)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degree_below_two_is_zero() {
        let g = wedge_graph();
        assert_eq!(local_clustering(&g, NodeId(3)), 0.0);
        let empty = TemporalGraph::with_nodes(1);
        assert_eq!(local_clustering(&empty, NodeId(0)), 0.0);
    }

    #[test]
    fn triangle_is_fully_clustered() {
        let mut g = TemporalGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), t(0)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), t(0)).unwrap();
        g.add_edge(NodeId(0), NodeId(2), t(0)).unwrap();
        for n in g.nodes() {
            assert_eq!(local_clustering(&g, n), 1.0);
        }
        assert_eq!(average_clustering(&g), 1.0);
        assert_eq!(global_clustering(&g), 1.0);
    }

    #[test]
    fn first_k_restricts_to_time_prefix() {
        let g = wedge_graph();
        // First 2 friends of 0 are {1, 2}, which are linked -> cc = 1.
        assert_eq!(first_k_clustering(&g, NodeId(0), 2), 1.0);
        // First 3 friends -> 1/3 as in local.
        assert!((first_k_clustering(&g, NodeId(0), 3) - 1.0 / 3.0).abs() < 1e-12);
        // k = 1 -> 0.
        assert_eq!(first_k_clustering(&g, NodeId(0), 1), 0.0);
    }

    #[test]
    fn clustering_before_uses_only_old_edges() {
        let g = wedge_graph();
        // Before t=3, friends of 0 are {1, 2}; the 1-2 link exists in the
        // final graph, so cc = 1.0 over that prefix.
        assert_eq!(clustering_before(&g, NodeId(0), t(3)), 1.0);
        // Before t=2 only one friend -> 0.
        assert_eq!(clustering_before(&g, NodeId(0), t(2)), 0.0);
    }

    #[test]
    fn star_graph_zero_clustering() {
        let mut g = TemporalGraph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(NodeId(0), NodeId(i), t(i as u64)).unwrap();
        }
        assert_eq!(local_clustering(&g, NodeId(0)), 0.0);
        assert_eq!(global_clustering(&g), 0.0);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn global_clustering_of_wedge_graph() {
        let g = wedge_graph();
        // Wedges: center 0 has C(3,2)=3 (one closed), centers 1,2 have 1 each
        // (both closed: neighbors {0,2} and {0,1} are linked via 0-2? no —
        // check: neighbors of 1 are {0, 2}; 0-2 IS an edge -> closed.
        // neighbors of 2 are {0, 1}; 0-1 IS an edge -> closed.)
        // closed = 1 + 1 + 1 = 3, wedges = 3 + 1 + 1 = 5.
        assert!((global_clustering(&g) - 3.0 / 5.0).abs() < 1e-12);
    }
}
