//! Snowball sampling and node-sampling utilities.
//!
//! §3.4 of the paper attributes accidental Sybil-edge creation to the
//! snowball sampling that commercial Sybil tools use to find *popular*
//! friending targets: crawl outward from seeds, preferentially keeping
//! high-degree profiles. Because successful Sybils themselves become
//! popular, the tools occasionally select other Sybils — and Sybils accept
//! every request — producing Sybil edges no attacker intended.

use crate::graph::{NodeId, TemporalGraph};
use rand::prelude::*;
use std::collections::HashSet;

/// Configuration for popularity-biased snowball sampling.
#[derive(Clone, Copy, Debug)]
pub struct SnowballConfig {
    /// How many nodes to return.
    pub targets: usize,
    /// Neighbors examined per expanded node (fan-out per wave).
    pub fanout: usize,
    /// Popularity bias exponent β: a candidate of degree `d` is retained
    /// with weight `d^β`. β = 0 is unbiased; the commercial tools the paper
    /// surveys are strongly biased (β ≈ 1–2).
    pub degree_bias: f64,
    /// Minimum degree for a node to count as a "popular" target at all.
    pub min_degree: usize,
    /// Degree at which the popularity weight saturates (everything at or
    /// above this degree is "maximally popular"). Defaults to
    /// `3 × min_degree`; prevents a handful of mega-hubs from crushing the
    /// weight of everything else as the graph's degree tail grows.
    pub saturation_degree: Option<usize>,
}

impl Default for SnowballConfig {
    fn default() -> Self {
        SnowballConfig {
            targets: 100,
            fanout: 20,
            degree_bias: 1.0,
            min_degree: 1,
            saturation_degree: None,
        }
    }
}

/// Popularity-biased snowball sample starting from `seeds`.
///
/// Breadth-style expansion: repeatedly pop a frontier node, examine up to
/// `fanout` random neighbors, and accept each neighbor as a *target* with
/// probability proportional to `deg^β` (normalized against the current
/// maximum degree seen). Accepted targets are also enqueued, so the crawl
/// drifts toward the popular core — exactly the bias that makes tools
/// rediscover successful Sybils. Seeds themselves are never returned.
pub fn snowball_sample<R: Rng + ?Sized>(
    g: &TemporalGraph,
    seeds: &[NodeId],
    cfg: &SnowballConfig,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(cfg.targets);
    let mut visited: HashSet<NodeId> = seeds.iter().copied().collect();
    let mut frontier: Vec<NodeId> = seeds.to_vec();
    let saturation = cfg
        .saturation_degree
        .unwrap_or(cfg.min_degree.saturating_mul(3))
        .max(1);
    let mut idx = 0usize;
    while out.len() < cfg.targets && idx < frontier.len() {
        // Pop in FIFO order but with random tie-breaking inside each wave by
        // shuffling newly discovered nodes before appending.
        let u = frontier[idx];
        idx += 1;
        let nbs = g.neighbors(u);
        if nbs.is_empty() {
            continue;
        }
        let mut wave: Vec<NodeId> = Vec::new();
        for _ in 0..cfg.fanout.min(nbs.len()) {
            let v = nbs[rng.random_range(0..nbs.len())].node;
            if visited.contains(&v) {
                continue;
            }
            visited.insert(v);
            let d = g.degree(v);
            if d < cfg.min_degree {
                continue;
            }
            let weight = if cfg.degree_bias == 0.0 {
                1.0
            } else {
                (d.min(saturation) as f64 / saturation as f64).powf(cfg.degree_bias)
            };
            if rng.random_range(0.0..1.0) < weight {
                out.push(v);
                if out.len() >= cfg.targets {
                    break;
                }
            }
            wave.push(v);
        }
        wave.shuffle(rng);
        frontier.extend(wave);
    }
    out
}

/// `k` nodes sampled uniformly without replacement.
pub fn uniform_sample<R: Rng + ?Sized>(g: &TemporalGraph, k: usize, rng: &mut R) -> Vec<NodeId> {
    let mut all: Vec<NodeId> = g.nodes().collect();
    all.shuffle(rng);
    all.truncate(k);
    all
}

/// One node sampled with probability proportional to degree (the stationary
/// distribution of a random walk); `None` on an edgeless graph.
pub fn degree_weighted_sample<R: Rng + ?Sized>(g: &TemporalGraph, rng: &mut R) -> Option<NodeId> {
    if g.num_edges() == 0 {
        return None;
    }
    // Pick a uniform edge endpoint: that is exactly degree-proportional.
    let e = g.edges()[rng.random_range(0..g.num_edges())];
    Some(if rng.random_bool(0.5) { e.a } else { e.b })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Timestamp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn snowball_returns_requested_count_when_possible() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::barabasi_albert(500, 4, Timestamp::ZERO, &mut rng);
        let cfg = SnowballConfig {
            targets: 50,
            fanout: 10,
            degree_bias: 1.0,
            min_degree: 1,
            saturation_degree: None,
        };
        let sample = snowball_sample(&g, &[NodeId(0)], &cfg, &mut rng);
        assert!(sample.len() <= 50);
        assert!(sample.len() > 10, "BA graph should yield plenty of targets");
        // No duplicates, no seed.
        let set: HashSet<_> = sample.iter().collect();
        assert_eq!(set.len(), sample.len());
        assert!(!sample.contains(&NodeId(0)));
    }

    #[test]
    fn snowball_bias_prefers_high_degree() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::barabasi_albert(2000, 3, Timestamp::ZERO, &mut rng);
        let seeds = uniform_sample(&g, 5, &mut rng);
        // Saturate well above the BA minimum degree (m = 3) so the weight
        // `(d/saturation)^β` actually discriminates; with the default
        // saturation of 3·min_degree every node would get weight 1.0 and
        // the comparison below would be pure crawl noise.
        let biased = snowball_sample(
            &g,
            &seeds,
            &SnowballConfig {
                targets: 200,
                fanout: 15,
                degree_bias: 2.0,
                min_degree: 1,
                saturation_degree: Some(50),
            },
            &mut rng,
        );
        let unbiased = snowball_sample(
            &g,
            &seeds,
            &SnowballConfig {
                targets: 200,
                fanout: 15,
                degree_bias: 0.0,
                min_degree: 1,
                saturation_degree: None,
            },
            &mut rng,
        );
        let mean = |v: &[NodeId]| {
            v.iter().map(|&n| g.degree(n)).sum::<usize>() as f64 / v.len().max(1) as f64
        };
        assert!(
            mean(&biased) > mean(&unbiased),
            "degree bias must raise mean target degree: {} vs {}",
            mean(&biased),
            mean(&unbiased)
        );
    }

    #[test]
    fn snowball_respects_min_degree() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::barabasi_albert(500, 2, Timestamp::ZERO, &mut rng);
        let sample = snowball_sample(
            &g,
            &[NodeId(10)],
            &SnowballConfig {
                targets: 100,
                fanout: 20,
                degree_bias: 0.0,
                min_degree: 5,
                saturation_degree: None,
            },
            &mut rng,
        );
        for n in sample {
            assert!(g.degree(n) >= 5);
        }
    }

    #[test]
    fn snowball_on_empty_neighborhood() {
        let g = TemporalGraph::with_nodes(3);
        let mut rng = StdRng::seed_from_u64(4);
        let sample = snowball_sample(&g, &[NodeId(0)], &SnowballConfig::default(), &mut rng);
        assert!(sample.is_empty());
    }

    #[test]
    fn uniform_sample_size_and_uniqueness() {
        let g = TemporalGraph::with_nodes(100);
        let mut rng = StdRng::seed_from_u64(5);
        let s = uniform_sample(&g, 10, &mut rng);
        assert_eq!(s.len(), 10);
        let set: HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 10);
        // Asking for more than n clamps to n.
        assert_eq!(uniform_sample(&g, 1000, &mut rng).len(), 100);
    }

    #[test]
    fn degree_weighted_prefers_hub() {
        let mut g = TemporalGraph::with_nodes(11);
        for i in 1..=10 {
            g.add_edge(NodeId(0), NodeId(i), Timestamp::ZERO).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(6);
        let mut hub = 0;
        let trials = 2000;
        for _ in 0..trials {
            if degree_weighted_sample(&g, &mut rng) == Some(NodeId(0)) {
                hub += 1;
            }
        }
        // Hub holds 10 of 20 endpoint slots -> expect ~50%.
        let frac = hub as f64 / trials as f64;
        assert!((0.4..0.6).contains(&frac), "hub fraction {frac}");
    }

    #[test]
    fn degree_weighted_none_on_edgeless() {
        let g = TemporalGraph::with_nodes(5);
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(degree_weighted_sample(&g, &mut rng), None);
    }
}
