//! Disjoint-set forest (union–find) with union by size and path halving.
//!
//! Used to extract the connected Sybil components of §3.3 without
//! materializing induced subgraphs.

/// Disjoint-set forest over dense indices `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x as usize
    }

    /// Merge the sets containing `a` and `b`; returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_components(), 4);
        assert_eq!(uf.len(), 4);
        assert!(!uf.is_empty());
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.size_of(i), 1);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already connected
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.size_of(2), 3);
        assert_eq!(uf.size_of(4), 1);
    }

    #[test]
    fn chain_of_unions_single_component() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.num_components(), 1);
        assert_eq!(uf.size_of(0), n);
        assert!(uf.connected(0, n - 1));
    }

    #[test]
    fn empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_components(), 0);
    }
}
