//! Mixing-time diagnostics.
//!
//! Every defense of §3.1 assumes the honest region is *fast mixing*: short
//! random walks reach the stationary distribution quickly, while walks
//! into a Sybil region are throttled by the small attack cut. This module
//! measures that property directly:
//!
//! * [`second_eigenvalue`] — |λ₂| of the lazy random-walk matrix via power
//!   iteration (spectral gap `1 − |λ₂|` bounds the mixing time);
//! * [`escape_probability`] — the empirical chance a short walk started in
//!   a node set leaves it (near 1 for integrated Sybils, near 0 for an
//!   injected cluster behind a small cut).

use crate::graph::{NodeId, TemporalGraph};
use rand::prelude::*;

/// Estimate |λ₂| of the lazy random-walk transition matrix
/// `W = (I + D⁻¹A)/2` by power iteration with deflation against the
/// stationary distribution. Returns `None` for graphs with no edges.
///
/// The walk matrix's top eigenvalue is 1 with right-eigenvector **1**
/// under the π-inner product; deflating against π and iterating
/// `x ← Wx` converges to the second eigenvector. 40–80 iterations give
/// 2-digit accuracy on 10³–10⁵-node graphs, plenty for comparing mixing
/// regimes.
pub fn second_eigenvalue(g: &TemporalGraph, iterations: usize, seed: u64) -> Option<f64> {
    let n = g.num_nodes();
    let m2 = g.volume() as f64;
    if n < 2 || m2 == 0.0 {
        return None;
    }
    let pi: Vec<f64> = (0..n)
        .map(|i| g.degree(NodeId(i as u32)) as f64 / m2)
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    let mut next = vec![0.0f64; n];
    let mut lambda = 0.0f64;
    for _ in 0..iterations.max(2) {
        // Deflate: remove the component along 1 (w.r.t. the π inner
        // product): x ← x − (Σ πᵢ xᵢ) · 1.
        let proj: f64 = pi.iter().zip(&x).map(|(&p, &v)| p * v).sum();
        for v in x.iter_mut() {
            *v -= proj;
        }
        // next = W x (lazy walk).
        for (i, nx) in next.iter_mut().enumerate() {
            let d = g.degree(NodeId(i as u32));
            if d == 0 {
                *nx = 0.5 * x[i];
                continue;
            }
            let mut acc = 0.0;
            for nb in g.neighbors(NodeId(i as u32)) {
                acc += x[nb.node.index()];
            }
            *nx = 0.5 * x[i] + 0.5 * acc / d as f64;
        }
        // Rayleigh-style estimate and normalization (π-weighted norm).
        let norm_x: f64 = pi.iter().zip(&x).map(|(&p, &v)| p * v * v).sum::<f64>().sqrt();
        let norm_next: f64 = pi
            .iter()
            .zip(&next)
            .map(|(&p, &v)| p * v * v)
            .sum::<f64>()
            .sqrt();
        if norm_x < 1e-300 || norm_next < 1e-300 {
            return Some(0.0);
        }
        lambda = norm_next / norm_x;
        let inv = 1.0 / norm_next;
        for (xv, nv) in x.iter_mut().zip(&next) {
            *xv = nv * inv;
        }
    }
    Some(lambda.min(1.0))
}

/// Spectral gap `1 − |λ₂|` of the lazy walk; larger = faster mixing.
pub fn spectral_gap(g: &TemporalGraph, iterations: usize, seed: u64) -> Option<f64> {
    second_eigenvalue(g, iterations, seed).map(|l| 1.0 - l)
}

/// Empirical probability that a `len`-step walk started uniformly inside
/// `set` ends *outside* it. `trials` walks; `None` if `set` has no
/// non-isolated members.
pub fn escape_probability<R: Rng + ?Sized>(
    g: &TemporalGraph,
    set: &[NodeId],
    len: usize,
    trials: usize,
    rng: &mut R,
) -> Option<f64> {
    let starts: Vec<NodeId> = set.iter().copied().filter(|&n| g.degree(n) > 0).collect();
    if starts.is_empty() {
        return None;
    }
    let members: std::collections::HashSet<NodeId> = set.iter().copied().collect();
    let mut escaped = 0usize;
    for _ in 0..trials.max(1) {
        let start = starts[rng.random_range(0..starts.len())];
        let end = crate::walks::walk_endpoint(g, start, len, rng);
        if !members.contains(&end) {
            escaped += 1;
        }
    }
    Some(escaped as f64 / trials.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Timestamp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn expander_has_large_gap() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::erdos_renyi(300, 0.05, Timestamp::ZERO, &mut rng);
        let gap = spectral_gap(&g, 80, 2).unwrap();
        assert!(gap > 0.1, "ER expander gap {gap}");
    }

    #[test]
    fn barbell_has_tiny_gap() {
        // Two 30-cliques joined by one edge: mixing is bottlenecked.
        let mut g = TemporalGraph::with_nodes(60);
        for side in 0..2u32 {
            let base = side * 30;
            for i in 0..30u32 {
                for j in (i + 1)..30u32 {
                    g.add_edge(NodeId(base + i), NodeId(base + j), Timestamp::ZERO)
                        .unwrap();
                }
            }
        }
        g.add_edge(NodeId(0), NodeId(30), Timestamp::ZERO).unwrap();
        let gap_bar = spectral_gap(&g, 120, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let er = generators::erdos_renyi(60, 0.3, Timestamp::ZERO, &mut rng);
        let gap_er = spectral_gap(&er, 120, 3).unwrap();
        assert!(
            gap_bar < gap_er / 3.0,
            "barbell {gap_bar} should mix far slower than ER {gap_er}"
        );
    }

    #[test]
    fn eigenvalue_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::barabasi_albert(200, 3, Timestamp::ZERO, &mut rng);
        let l2 = second_eigenvalue(&g, 60, 1).unwrap();
        assert!((0.0..=1.0).contains(&l2), "lambda2 {l2}");
    }

    #[test]
    fn edgeless_graph_none() {
        let g = TemporalGraph::with_nodes(5);
        assert_eq!(second_eigenvalue(&g, 10, 1), None);
    }

    #[test]
    fn escape_probability_contrasts_cut_sizes() {
        let mut rng = StdRng::seed_from_u64(5);
        // Tight region: 40-clique with 2 external edges.
        let mut g = generators::barabasi_albert(400, 4, Timestamp::ZERO, &mut rng);
        let first = g.add_nodes(40);
        for i in 0..40u32 {
            for j in (i + 1)..40u32 {
                g.add_edge(NodeId(first.0 + i), NodeId(first.0 + j), Timestamp::ZERO)
                    .unwrap();
            }
        }
        g.add_edge(NodeId(0), NodeId(first.0), Timestamp::ZERO).unwrap();
        g.add_edge(NodeId(1), NodeId(first.0 + 1), Timestamp::ZERO).unwrap();
        let tight: Vec<NodeId> = (0..40).map(|i| NodeId(first.0 + i)).collect();
        let p_tight = escape_probability(&g, &tight, 8, 2000, &mut rng).unwrap();
        // Integrated set: 40 random honest nodes.
        let spread: Vec<NodeId> = (0..40).map(NodeId).collect();
        let p_spread = escape_probability(&g, &spread, 8, 2000, &mut rng).unwrap();
        assert!(
            p_tight + 0.3 < p_spread,
            "tight {p_tight} vs spread {p_spread}"
        );
    }

    #[test]
    fn escape_probability_none_for_isolated() {
        let g = TemporalGraph::with_nodes(3);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            escape_probability(&g, &[NodeId(0)], 4, 10, &mut rng),
            None
        );
    }
}
