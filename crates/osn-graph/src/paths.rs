//! Sampled path-length statistics.
//!
//! Renren-scale graphs make exact all-pairs distances impractical; the
//! standard estimator samples BFS sources. Used by the graph census to
//! show that simulated networks have the small-world distances real OSNs
//! do (Wilson et al. report ~5–6 hops for Renren-era social graphs).

use crate::bfs;
use crate::graph::{NodeId, TemporalGraph};
use rand::prelude::*;

/// Path-length estimates from sampled BFS sources.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathStats {
    /// Mean hop distance over all sampled reachable pairs.
    pub mean_distance: f64,
    /// Largest distance observed (a lower bound on the diameter).
    pub diameter_lower_bound: u32,
    /// Mean fraction of nodes reachable from a sampled source.
    pub reachable_fraction: f64,
    /// BFS sources sampled.
    pub sources: usize,
}

/// Estimate path statistics from `sources` random BFS sources.
/// Returns `None` on an empty graph.
pub fn sample_path_stats<R: Rng + ?Sized>(
    g: &TemporalGraph,
    sources: usize,
    rng: &mut R,
) -> Option<PathStats> {
    let n = g.num_nodes();
    if n == 0 || sources == 0 {
        return None;
    }
    let mut dist_sum = 0u64;
    let mut dist_count = 0u64;
    let mut max_dist = 0u32;
    let mut reach_sum = 0.0;
    for _ in 0..sources {
        let s = NodeId(rng.random_range(0..n as u32));
        let dist = bfs::distances(g, s);
        let mut reachable = 0usize;
        for d in dist.into_iter().flatten() {
            reachable += 1;
            dist_sum += d as u64;
            dist_count += 1;
            max_dist = max_dist.max(d);
        }
        reach_sum += reachable as f64 / n as f64;
    }
    Some(PathStats {
        mean_distance: if dist_count == 0 {
            0.0
        } else {
            dist_sum as f64 / dist_count as f64
        },
        diameter_lower_bound: max_dist,
        reachable_fraction: reach_sum / sources as f64,
        sources,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Timestamp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_graph_statistics() {
        // 0-1-2-3-4 path: from each source all nodes reachable.
        let mut g = TemporalGraph::with_nodes(5);
        for i in 1..5u32 {
            g.add_edge(NodeId(i - 1), NodeId(i), Timestamp::ZERO).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_path_stats(&g, 50, &mut rng).unwrap();
        assert_eq!(s.reachable_fraction, 1.0);
        assert_eq!(s.diameter_lower_bound, 4);
        assert!(s.mean_distance > 1.0 && s.mean_distance < 3.0);
    }

    #[test]
    fn ba_graph_is_small_world() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::barabasi_albert(2000, 4, Timestamp::ZERO, &mut rng);
        let s = sample_path_stats(&g, 20, &mut rng).unwrap();
        assert!(s.reachable_fraction > 0.999);
        assert!(
            s.mean_distance < 6.0,
            "BA graphs are small-world: mean {}",
            s.mean_distance
        );
    }

    #[test]
    fn disconnected_reachability_below_one() {
        let mut g = TemporalGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), Timestamp::ZERO).unwrap();
        g.add_edge(NodeId(2), NodeId(3), Timestamp::ZERO).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let s = sample_path_stats(&g, 40, &mut rng).unwrap();
        assert!((s.reachable_fraction - 0.5).abs() < 0.01);
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(sample_path_stats(&TemporalGraph::new(), 5, &mut rng).is_none());
        let g = TemporalGraph::with_nodes(3);
        assert!(sample_path_stats(&g, 0, &mut rng).is_none());
        // Isolated nodes: distances only to self.
        let s = sample_path_stats(&g, 5, &mut rng).unwrap();
        assert_eq!(s.mean_distance, 0.0);
        assert!((s.reachable_fraction - 1.0 / 3.0).abs() < 1e-9);
    }
}
