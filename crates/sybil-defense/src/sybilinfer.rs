//! SybilInfer (Danezis & Mittal, NDSS 2009) — simplified.
//!
//! SybilInfer's generative model says short random walks started from an
//! honest node mix quickly *within* the honest region but escape into a
//! Sybil region only through the few attack edges. It samples honest-set
//! cuts with Metropolis-Hastings over walk traces and outputs per-node
//! honesty probabilities.
//!
//! We implement the computational core of that idea without the full MH
//! machinery (documented simplification): estimate each node's stationary-
//! normalized visit probability from many verifier-anchored walks; nodes
//! whose normalized visit frequency falls far below the typical honest
//! level are labeled Sybil. This is the same mixing-time signal the
//! original exploits, and it exhibits the same failure mode the paper
//! predicts: Sybils woven into the honest region mix just as fast and
//! become indistinguishable.

use crate::common::{SybilDefense, Verdict};
use osn_graph::walks;
use osn_graph::{NodeId, TemporalGraph};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// SybilInfer-style verifier.
pub struct SybilInfer {
    /// Number of walks per verification.
    pub num_walks: usize,
    /// Walk length (≈ mixing time of the honest region).
    pub walk_len: usize,
    /// A suspect is accepted if its normalized visit rate is at least this
    /// fraction of the honest median.
    pub accept_fraction: f64,
    seed: u64,
    // Cache of per-verifier visit profiles (verifier -> normalized visits).
    cache: Mutex<Option<(NodeId, Vec<f64>)>>,
}

impl SybilInfer {
    /// Defaults scaled to the graph: `walk_len ≈ 1.5·ln n`.
    pub fn new(g: &TemporalGraph, seed: u64) -> Self {
        let n = g.num_nodes().max(2) as f64;
        SybilInfer {
            // Enough endpoint samples that typical honest nodes are
            // visited at least a few times.
            num_walks: ((3.0 * n) as usize).max(4000),
            walk_len: ((1.5 * n.ln()).ceil() as usize).max(3),
            accept_fraction: 0.05,
            seed,
            cache: Mutex::new(None),
        }
    }

    /// Degree-normalized visit frequencies of walks from `verifier`.
    fn visit_profile(&self, g: &TemporalGraph, verifier: NodeId) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (verifier.0 as u64) << 16);
        let mut visits = vec![0u32; g.num_nodes()];
        for _ in 0..self.num_walks {
            let path = walks::random_walk(g, verifier, self.walk_len, &mut rng);
            // Count the endpoint (stationary sample) — endpoints of long
            // walks approximate the stationary distribution restricted to
            // the region the walk mixes in.
            if let Some(&end) = path.last() {
                visits[end.index()] += 1;
            }
        }
        visits
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let d = g.degree(NodeId(i as u32));
                if d == 0 {
                    0.0
                } else {
                    v as f64 / d as f64
                }
            })
            .collect()
    }

    fn profile_for(&self, g: &TemporalGraph, verifier: NodeId) -> Vec<f64> {
        let mut cache = self.cache.lock();
        if let Some((v, profile)) = cache.as_ref() {
            if *v == verifier {
                return profile.clone();
            }
        }
        let profile = self.visit_profile(g, verifier);
        *cache = Some((verifier, profile.clone()));
        profile
    }
}

impl SybilDefense for SybilInfer {
    fn name(&self) -> &'static str {
        "SybilInfer"
    }

    fn verify(&self, g: &TemporalGraph, verifier: NodeId, suspect: NodeId) -> Verdict {
        if g.degree(verifier) == 0 || g.degree(suspect) == 0 {
            return Verdict::Reject;
        }
        let profile = self.profile_for(g, verifier);
        // Honest baseline: mean normalized visit rate over visited nodes.
        let visited: Vec<f64> = profile.iter().copied().filter(|&x| x > 0.0).collect();
        if visited.is_empty() {
            return Verdict::Reject;
        }
        let mean = visited.iter().sum::<f64>() / visited.len() as f64;
        if profile[suspect.index()] >= self.accept_fraction * mean {
            Verdict::Accept
        } else {
            Verdict::Reject
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{evaluate_defense, injected_cluster_graph};
    use osn_graph::generators;
    use osn_graph::Timestamp;

    #[test]
    fn honest_region_is_accepted() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::barabasi_albert(400, 4, Timestamp::ZERO, &mut rng);
        let si = SybilInfer::new(&g, 3);
        let honest: Vec<NodeId> = (50..90).map(NodeId).collect();
        let eval = evaluate_defense(&si, &g, NodeId(0), &[], &honest);
        assert!(
            eval.honest_rejection_rate() < 0.3,
            "honest rejection {}",
            eval.honest_rejection_rate()
        );
    }

    #[test]
    fn injected_cluster_is_starved_of_visits() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, first_sybil) = injected_cluster_graph(600, 100, 2, &mut rng);
        let si = SybilInfer::new(&g, 5);
        let sybils: Vec<NodeId> = (0..30).map(|i| NodeId(first_sybil.0 + i)).collect();
        let honest: Vec<NodeId> = (20..50).map(NodeId).collect();
        let eval = evaluate_defense(&si, &g, NodeId(0), &sybils, &honest);
        assert!(
            eval.sybil_acceptance_rate() < 0.5,
            "sybil acceptance {} too high for an injected cluster",
            eval.sybil_acceptance_rate()
        );
        assert!(
            eval.sybil_acceptance_rate() < 1.0 - eval.honest_rejection_rate(),
            "must separate regions"
        );
    }

    #[test]
    fn cache_reuses_profile_per_verifier() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::barabasi_albert(200, 3, Timestamp::ZERO, &mut rng);
        let si = SybilInfer::new(&g, 7);
        // Two verifications from the same verifier must agree (cached
        // profile; also deterministic seeding).
        let a = si.verify(&g, NodeId(0), NodeId(10));
        let b = si.verify(&g, NodeId(0), NodeId(10));
        assert_eq!(a, b);
    }

    #[test]
    fn isolated_rejected() {
        let g = TemporalGraph::with_nodes(2);
        let si = SybilInfer::new(&g, 1);
        assert_eq!(si.verify(&g, NodeId(0), NodeId(1)), Verdict::Reject);
    }
}
