//! Conductance-ranking community detector (Viswanath et al., SIGCOMM
//! 2010).
//!
//! Viswanath et al. showed that SybilGuard/SybilLimit/SybilInfer/SumUp all
//! reduce to the same primitive: *rank nodes by how well they sit inside
//! the verifier's local community, and cut where conductance is best*. We
//! implement that primitive directly: approximate Personalized PageRank
//! (Andersen–Chung–Lang push) from the verifier, order nodes by
//! degree-normalized PPR, sweep for the minimum-conductance prefix, and
//! accept exactly the nodes inside it.

use crate::common::{SybilDefense, Verdict};
use osn_graph::{NodeId, TemporalGraph};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};

/// Conductance-sweep community detector.
pub struct ConductanceRanking {
    /// PPR teleport probability α.
    pub alpha: f64,
    /// Push tolerance ε (smaller = larger explored neighborhood).
    pub epsilon: f64,
    /// Cap on the sweep prefix (community size ceiling).
    pub max_community: usize,
    /// Floor on the sweep prefix: tiny min-conductance pockets (a clique
    /// of close friends) are not meaningful honest regions.
    pub min_community: usize,
    cache: Mutex<Option<(NodeId, HashSet<NodeId>)>>,
}

impl ConductanceRanking {
    /// Detector with defaults suited to 10³–10⁵ node graphs.
    pub fn new() -> Self {
        ConductanceRanking {
            alpha: 0.15,
            epsilon: 1e-5,
            max_community: 50_000,
            min_community: 16,
            cache: Mutex::new(None),
        }
    }

    /// Approximate PPR vector from `seed` (ACL push algorithm).
    fn ppr(&self, g: &TemporalGraph, seed: NodeId) -> HashMap<NodeId, f64> {
        let mut p: HashMap<NodeId, f64> = HashMap::new();
        let mut r: HashMap<NodeId, f64> = HashMap::new();
        r.insert(seed, 1.0);
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        queue.push_back(seed);
        let mut queued: HashSet<NodeId> = HashSet::new();
        queued.insert(seed);
        while let Some(u) = queue.pop_front() {
            queued.remove(&u);
            let d = g.degree(u).max(1) as f64;
            let ru = *r.get(&u).unwrap_or(&0.0);
            if ru < self.epsilon * d {
                continue;
            }
            // Push.
            *p.entry(u).or_insert(0.0) += self.alpha * ru;
            let spread = (1.0 - self.alpha) * ru / (2.0 * d);
            let ru_residual = (1.0 - self.alpha) * ru / 2.0;
            r.insert(u, ru_residual);
            if ru_residual >= self.epsilon * d && queued.insert(u) {
                queue.push_back(u);
            }
            for nb in g.neighbors(u) {
                let e = r.entry(nb.node).or_insert(0.0);
                *e += spread;
                let dn = g.degree(nb.node).max(1) as f64;
                if *e >= self.epsilon * dn && queued.insert(nb.node) {
                    queue.push_back(nb.node);
                }
            }
        }
        p
    }

    /// The minimum-conductance sweep community around `seed`.
    pub fn community(&self, g: &TemporalGraph, seed: NodeId) -> HashSet<NodeId> {
        let p = self.ppr(g, seed);
        let mut order: Vec<(NodeId, f64)> = p
            .into_iter()
            .map(|(n, v)| (n, v / g.degree(n).max(1) as f64))
            .collect();
        order.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        order.truncate(self.max_community);
        // Sweep: conductance of each prefix; track counts incrementally.
        let mut members: HashSet<NodeId> = HashSet::new();
        let mut vol = 0usize;
        let mut cut = 0usize;
        let total_vol = g.volume();
        let mut best = (f64::INFINITY, 0usize);
        for (i, (n, _)) in order.iter().enumerate() {
            let d = g.degree(*n);
            let inside = g
                .neighbors(*n)
                .iter()
                .filter(|nb| members.contains(&nb.node))
                .count();
            members.insert(*n);
            vol += d;
            cut = cut + d - 2 * inside;
            let denom = vol.min(total_vol.saturating_sub(vol));
            if denom > 0 && i + 1 >= self.min_community {
                let phi = cut as f64 / denom as f64;
                if phi < best.0 {
                    best = (phi, i + 1);
                }
            }
        }
        order.truncate(best.1.max(1));
        order.into_iter().map(|(n, _)| n).collect()
    }

    fn community_for(&self, g: &TemporalGraph, verifier: NodeId) -> HashSet<NodeId> {
        let mut cache = self.cache.lock();
        if let Some((v, c)) = cache.as_ref() {
            if *v == verifier {
                return c.clone();
            }
        }
        let c = self.community(g, verifier);
        *cache = Some((verifier, c.clone()));
        c
    }
}

impl Default for ConductanceRanking {
    fn default() -> Self {
        Self::new()
    }
}

impl SybilDefense for ConductanceRanking {
    fn name(&self) -> &'static str {
        "ConductanceRanking"
    }

    fn verify(&self, g: &TemporalGraph, verifier: NodeId, suspect: NodeId) -> Verdict {
        if g.degree(verifier) == 0 || g.degree(suspect) == 0 {
            return Verdict::Reject;
        }
        if self.community_for(g, verifier).contains(&suspect) {
            Verdict::Accept
        } else {
            Verdict::Reject
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{evaluate_defense, injected_cluster_graph};
    use osn_graph::Timestamp;
    use rand::prelude::*;

    #[test]
    fn community_of_barbell_is_one_side() {
        // Two dense 20-cliques joined by one bridge.
        let mut g = TemporalGraph::with_nodes(40);
        for side in 0..2u32 {
            let base = side * 20;
            for i in 0..20u32 {
                for j in (i + 1)..20u32 {
                    g.add_edge(NodeId(base + i), NodeId(base + j), Timestamp::ZERO)
                        .unwrap();
                }
            }
        }
        g.add_edge(NodeId(0), NodeId(20), Timestamp::ZERO).unwrap();
        let cr = ConductanceRanking::new();
        let community = cr.community(&g, NodeId(5));
        let in_left = community.iter().filter(|n| n.0 < 20).count();
        let in_right = community.len() - in_left;
        assert!(
            in_left >= 18 && in_right <= 2,
            "community should be the left clique: {in_left} left / {in_right} right"
        );
    }

    #[test]
    fn separates_injected_cluster() {
        let mut rng = StdRng::seed_from_u64(4);
        let (g, first_sybil) = injected_cluster_graph(500, 80, 3, &mut rng);
        let cr = ConductanceRanking::new();
        let sybils: Vec<NodeId> = (0..30).map(|i| NodeId(first_sybil.0 + i)).collect();
        let honest: Vec<NodeId> = (10..40).map(NodeId).collect();
        let eval = evaluate_defense(&cr, &g, NodeId(0), &sybils, &honest);
        assert!(
            eval.sybil_acceptance_rate() < 0.3,
            "sybil acceptance {}",
            eval.sybil_acceptance_rate()
        );
    }

    #[test]
    fn ppr_mass_concentrates_near_seed() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = osn_graph::generators::barabasi_albert(300, 3, Timestamp::ZERO, &mut rng);
        let cr = ConductanceRanking::new();
        let p = cr.ppr(&g, NodeId(7));
        let seed_mass = p.get(&NodeId(7)).copied().unwrap_or(0.0);
        assert!(seed_mass > 0.0);
        // Seed should be among the highest-mass nodes.
        let higher = p.values().filter(|&&v| v > seed_mass).count();
        assert!(higher < 5, "{higher} nodes outrank the seed");
    }

    #[test]
    fn isolated_rejected() {
        let g = TemporalGraph::with_nodes(2);
        let cr = ConductanceRanking::new();
        assert_eq!(cr.verify(&g, NodeId(0), NodeId(1)), Verdict::Reject);
    }
}
