//! Shared defense interface and evaluation harness.
//!
//! All four baselines answer the same decentralized question: *from the
//! perspective of a known-honest verifier node, is this suspect node
//! honest or Sybil?* The evaluation harness measures the two error rates
//! the paper's argument turns on: how many real Sybils a defense accepts
//! (misses) and how many honest users it rejects.

use osn_graph::{NodeId, TemporalGraph};
use serde::{Deserialize, Serialize};

/// A defense's judgment of a suspect.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The suspect is judged honest.
    Accept,
    /// The suspect is judged Sybil.
    Reject,
}

/// A decentralized graph-based Sybil defense.
///
/// `Sync` is a supertrait: `verify` takes `&self` and the evaluation
/// harness fans suspects out across threads, so implementations must keep
/// any internal caching behind a lock (see `SybilInfer`'s posterior
/// cache) and deterministic — a cache hit and a recompute must yield the
/// same verdict.
pub trait SybilDefense: Sync {
    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// Judge `suspect` from the perspective of honest `verifier`.
    fn verify(&self, g: &TemporalGraph, verifier: NodeId, suspect: NodeId) -> Verdict;
}

/// Error rates of one defense on one graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DefenseEvaluation {
    /// Sybil suspects accepted (defense failures).
    pub sybils_accepted: usize,
    /// Sybil suspects evaluated.
    pub sybils_total: usize,
    /// Honest suspects rejected (collateral damage).
    pub honest_rejected: usize,
    /// Honest suspects evaluated.
    pub honest_total: usize,
}

impl DefenseEvaluation {
    /// Fraction of Sybils that escaped detection.
    pub fn sybil_acceptance_rate(&self) -> f64 {
        if self.sybils_total == 0 {
            0.0
        } else {
            self.sybils_accepted as f64 / self.sybils_total as f64
        }
    }

    /// Fraction of honest users wrongly rejected.
    pub fn honest_rejection_rate(&self) -> f64 {
        if self.honest_total == 0 {
            0.0
        } else {
            self.honest_rejected as f64 / self.honest_total as f64
        }
    }
}

/// Run `defense` from `verifier` against the given suspect samples.
///
/// Each suspect's verdict is independent, so both sample sets are judged
/// in parallel (`osn_graph::par`, honoring `RENREN_THREADS`); the verdicts
/// are tallied in suspect order, so the counts match the serial loop
/// exactly.
pub fn evaluate_defense<D: SybilDefense + ?Sized>(
    defense: &D,
    g: &TemporalGraph,
    verifier: NodeId,
    sybil_suspects: &[NodeId],
    honest_suspects: &[NodeId],
) -> DefenseEvaluation {
    let sybil_verdicts = osn_graph::par::map_slice(sybil_suspects, |&s| {
        defense.verify(g, verifier, s)
    });
    let honest_verdicts = osn_graph::par::map_slice(honest_suspects, |&h| {
        defense.verify(g, verifier, h)
    });
    DefenseEvaluation {
        sybils_accepted: sybil_verdicts
            .iter()
            .filter(|&&v| v == Verdict::Accept)
            .count(),
        sybils_total: sybil_suspects.len(),
        honest_rejected: honest_verdicts
            .iter()
            .filter(|&&v| v == Verdict::Reject)
            .count(),
        honest_total: honest_suspects.len(),
    }
}

/// Build the synthetic graph the defenses were originally validated on
/// (§3.1: "real social graphs with Sybil communities artificially
/// injected"): an honest Barabási–Albert region of `n_honest` nodes, a
/// dense injected Sybil region of `n_sybil` nodes, and exactly
/// `attack_edges` random links between the regions. Returns the graph and
/// the first Sybil node id (Sybils are `n_honest..n_honest+n_sybil`).
pub fn injected_cluster_graph<R: rand::Rng + rand::RngExt + ?Sized>(
    n_honest: usize,
    n_sybil: usize,
    attack_edges: usize,
    rng: &mut R,
) -> (TemporalGraph, NodeId) {
    use osn_graph::Timestamp;
    let mut g = osn_graph::generators::barabasi_albert(n_honest, 4, Timestamp::ZERO, rng);
    let first_sybil = g.add_nodes(n_sybil);
    // Dense Sybil region: each Sybil links to ~8 random other Sybils.
    for i in 0..n_sybil {
        let a = NodeId(first_sybil.0 + i as u32);
        for _ in 0..8 {
            let b = NodeId(first_sybil.0 + rng.random_range(0..n_sybil) as u32);
            if a != b {
                let _ = g.add_edge(a, b, Timestamp::ZERO);
            }
        }
    }
    // Sparse attack edges.
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < attack_edges && guard < attack_edges * 100 {
        guard += 1;
        let h = NodeId(rng.random_range(0..n_honest) as u32);
        let s = NodeId(first_sybil.0 + rng.random_range(0..n_sybil) as u32);
        if g.add_edge(h, s, Timestamp::ZERO).is_ok() {
            added += 1;
        }
    }
    (g, first_sybil)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysAccept;
    impl SybilDefense for AlwaysAccept {
        fn name(&self) -> &'static str {
            "accept-all"
        }
        fn verify(&self, _: &TemporalGraph, _: NodeId, _: NodeId) -> Verdict {
            Verdict::Accept
        }
    }

    #[test]
    fn evaluation_counts_rates() {
        let g = TemporalGraph::with_nodes(4);
        let eval = evaluate_defense(
            &AlwaysAccept,
            &g,
            NodeId(0),
            &[NodeId(1), NodeId(2)],
            &[NodeId(3)],
        );
        assert_eq!(eval.sybil_acceptance_rate(), 1.0);
        assert_eq!(eval.honest_rejection_rate(), 0.0);
        assert_eq!(eval.sybils_total, 2);
        assert_eq!(eval.honest_total, 1);
    }

    #[test]
    fn empty_evaluation_rates_are_zero() {
        let e = DefenseEvaluation::default();
        assert_eq!(e.sybil_acceptance_rate(), 0.0);
        assert_eq!(e.honest_rejection_rate(), 0.0);
    }

    #[test]
    fn injected_graph_has_tight_sybil_region() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let (g, first_sybil) = injected_cluster_graph(500, 50, 10, &mut rng);
        assert_eq!(g.num_nodes(), 550);
        let sybils: Vec<NodeId> = (0..50).map(|i| NodeId(first_sybil.0 + i)).collect();
        let stats = osn_graph::metrics::cut_stats(&g, &sybils);
        assert_eq!(stats.crossing_edges, 10);
        assert!(
            stats.internal_edges > stats.crossing_edges * 5,
            "injected region must be tight-knit: {} internal vs {} crossing",
            stats.internal_edges,
            stats.crossing_edges
        );
    }
}
