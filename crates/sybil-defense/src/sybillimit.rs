//! SybilLimit (Yu et al., IEEE S&P 2008).
//!
//! SybilLimit replaces SybilGuard's one long route with `r = Θ(√m)` short
//! route *instances* of length `w = Θ(log n)` each, and accepts a suspect
//! when enough instances' route **tails** (final directed edges) intersect
//! the verifier's tails. With `g` attack edges, at most `O(g · w)` Sybil
//! tails can land on honest edges, bounding accepted Sybils per attack
//! edge — *if* Sybils actually sit behind a small cut.
//!
//! Instead of materializing `r` full routing-table sets (quadratic
//! memory), each instance derives its per-node permutation on demand from
//! a seed (deterministic, stateless) — the same trick a decentralized node
//! would use with a keyed PRF. The balance condition is simplified to a
//! per-tail load cap.

use crate::common::{SybilDefense, Verdict};
use osn_graph::{NodeId, TemporalGraph};
use rand::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// SybilLimit verifier.
pub struct SybilLimit {
    /// Number of route instances `r`.
    pub instances: usize,
    /// Route length `w`.
    pub route_len: usize,
    /// Minimum tail intersections for acceptance (the protocol requires at
    /// least one; the expected count for honest pairs is `r²/2m` ≈ 8 with
    /// the default `r = 4√m`).
    pub min_intersections: usize,
    seed: u64,
}

impl SybilLimit {
    /// Configure for graph `g`: `r ≈ r0·√m` (capped) and `w ≈ 2·ln n`.
    pub fn new(g: &TemporalGraph, seed: u64) -> Self {
        let m = g.num_edges().max(1) as f64;
        let n = g.num_nodes().max(2) as f64;
        let instances = ((4.0 * m.sqrt()) as usize).clamp(32, 4000);
        // Honest pairs expect ~r²/2m tail collisions; requiring a quarter
        // of that keeps honest acceptance high while filtering suspects
        // whose tails rarely reach honest edges.
        let expected = (instances * instances) as f64 / (2.0 * m);
        SybilLimit {
            instances,
            route_len: ((2.0 * n.ln()).ceil() as usize).max(4),
            min_intersections: ((expected / 4.0).round() as usize).max(1),
            seed,
        }
    }

    /// Stateless per-instance permutation: the out-position for a route
    /// entering `node` at `in_pos` under instance `inst`.
    fn out_pos(&self, node: NodeId, degree: usize, in_pos: usize, inst: usize) -> usize {
        debug_assert!(in_pos < degree);
        // Derive the node's permutation for this instance from a seed.
        let node_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((node.0 as u64) << 20)
            .wrapping_add(inst as u64);
        let mut rng = StdRng::seed_from_u64(node_seed);
        let mut perm: Vec<u32> = (0..degree as u32).collect();
        perm.shuffle(&mut rng);
        perm[in_pos] as usize
    }

    /// The tail (final directed edge) of the instance-`inst` route leaving
    /// `who` through its `first_edge`-th adjacency slot.
    fn route_tail(
        &self,
        g: &TemporalGraph,
        who: NodeId,
        first_edge: usize,
        inst: usize,
    ) -> Option<(NodeId, NodeId)> {
        let nb = g.neighbors(who);
        if nb.is_empty() {
            return None;
        }
        let mut prev = who;
        let mut edge = nb[first_edge].edge;
        let mut cur = nb[first_edge].node;
        for _ in 1..self.route_len {
            let d = g.degree(cur);
            // Position of the incoming edge within cur's adjacency. The
            // edge was taken from the adjacency list one hop back, so a
            // miss means the graph is inconsistent — abandon the route.
            let in_pos = g.neighbors(cur).iter().position(|x| x.edge == edge)?;
            let out = self.out_pos(cur, d, in_pos, inst);
            let next = g.neighbors(cur)[out];
            prev = cur;
            edge = next.edge;
            cur = next.node;
        }
        Some((prev, cur))
    }

    /// One route tail per instance for `who`, in instance order (the
    /// protocol runs one instance per edge slot in rotation). Routes are
    /// stateless and independent, so they run across threads; the output
    /// vector is ordered by instance regardless of thread count.
    fn instance_tails(&self, g: &TemporalGraph, who: NodeId) -> Vec<Option<(NodeId, NodeId)>> {
        let d = g.degree(who);
        if d == 0 {
            return Vec::new();
        }
        osn_graph::par::map_indexed(self.instances, |inst| {
            self.route_tail(g, who, inst % d, inst)
        })
    }

    /// Tail multiset of one node across all instances.
    fn tails(&self, g: &TemporalGraph, who: NodeId) -> HashMap<(NodeId, NodeId), usize> {
        let mut map = HashMap::new();
        for tail in self.instance_tails(g, who).into_iter().flatten() {
            *map.entry(tail).or_insert(0) += 1;
        }
        map
    }
}

impl SybilDefense for SybilLimit {
    fn name(&self) -> &'static str {
        "SybilLimit"
    }

    fn verify(&self, g: &TemporalGraph, verifier: NodeId, suspect: NodeId) -> Verdict {
        if g.degree(verifier) == 0 || g.degree(suspect) == 0 {
            return Verdict::Reject;
        }
        let v_tails = self.tails(g, verifier);
        // Balance condition (simplified): each verifier tail admits a
        // bounded number of suspect intersections.
        let mut remaining: HashMap<(NodeId, NodeId), usize> = v_tails
            .iter()
            .map(|(&tail, &cnt)| (tail, cnt * 2))
            .collect();
        // Route computation is the expensive, parallel part; the balance
        // caps below are consumed serially in instance order so the match
        // count is independent of thread count.
        let mut matched = 0usize;
        for tail in self.instance_tails(g, suspect).into_iter().flatten() {
            // Tails are undirected-intersected: either direction works.
            let rev = (tail.1, tail.0);
            for key in [tail, rev] {
                if let Some(cap) = remaining.get_mut(&key) {
                    if *cap > 0 {
                        *cap -= 1;
                        matched += 1;
                        break;
                    }
                }
            }
        }
        if matched >= self.min_intersections {
            Verdict::Accept
        } else {
            Verdict::Reject
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{evaluate_defense, injected_cluster_graph};
    use osn_graph::generators;
    use osn_graph::Timestamp;

    #[test]
    fn honest_nodes_mostly_accepted() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::barabasi_albert(500, 4, Timestamp::ZERO, &mut rng);
        let sl = SybilLimit::new(&g, 11);
        let honest: Vec<NodeId> = (100..130).map(NodeId).collect();
        let eval = evaluate_defense(&sl, &g, NodeId(0), &[], &honest);
        assert!(
            eval.honest_rejection_rate() < 0.35,
            "honest rejection {}",
            eval.honest_rejection_rate()
        );
    }

    #[test]
    fn rejects_injected_cluster_more_than_honest() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, first_sybil) = injected_cluster_graph(600, 80, 3, &mut rng);
        let sl = SybilLimit::new(&g, 5);
        let sybils: Vec<NodeId> = (0..20).map(|i| NodeId(first_sybil.0 + i)).collect();
        let honest: Vec<NodeId> = (10..30).map(NodeId).collect();
        let eval = evaluate_defense(&sl, &g, NodeId(0), &sybils, &honest);
        assert!(
            eval.sybil_acceptance_rate() + 0.2 < 1.0 - eval.honest_rejection_rate(),
            "defense must separate: sybil acc {} vs honest acc {}",
            eval.sybil_acceptance_rate(),
            1.0 - eval.honest_rejection_rate()
        );
    }

    #[test]
    fn stateless_permutation_is_consistent() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::barabasi_albert(50, 3, Timestamp::ZERO, &mut rng);
        let sl = SybilLimit::new(&g, 9);
        let a = sl.route_tail(&g, NodeId(1), 0, 4);
        let b = sl.route_tail(&g, NodeId(1), 0, 4);
        assert_eq!(a, b, "same instance must reproduce the same route");
        // Permutation property: out positions for distinct in positions
        // are distinct.
        let d = g.degree(NodeId(1));
        if d >= 2 {
            let outs: std::collections::HashSet<usize> =
                (0..d).map(|p| sl.out_pos(NodeId(1), d, p, 0)).collect();
            assert_eq!(outs.len(), d);
        }
    }

    #[test]
    fn isolated_nodes_rejected() {
        let g = TemporalGraph::with_nodes(3);
        let sl = SybilLimit::new(&g, 1);
        assert_eq!(sl.verify(&g, NodeId(0), NodeId(1)), Verdict::Reject);
    }
}
