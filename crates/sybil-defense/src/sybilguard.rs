//! SybilGuard (Yu et al., SIGCOMM 2006).
//!
//! Every node fixes a random routing permutation per incident edge;
//! *random routes* of length `w ≈ Θ(√n log n)` walked through these
//! tables have the convergence property: routes crossing the same
//! directed edge coincide afterwards. An honest verifier accepts a suspect
//! when enough of the suspect's routes **intersect** the verifier's
//! routes (in nodes). With few attack edges, Sybil routes rarely escape
//! the Sybil region, so they rarely intersect honest routes.
//!
//! Simplifications vs. the full protocol (documented per DESIGN.md): a
//! single global table set stands in for the per-node exchanged
//! witnesses, and the majority rule is a configurable fraction.

use crate::common::{SybilDefense, Verdict};
use osn_graph::walks::{RouteStart, RouteTables};
use osn_graph::{NodeId, TemporalGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// SybilGuard verifier.
pub struct SybilGuard {
    tables: RouteTables,
    route_len: usize,
    /// Fraction of suspect routes that must intersect the verifier's.
    pub accept_fraction: f64,
}

impl SybilGuard {
    /// Set up routing tables for `g`. `route_len = None` uses the
    /// `√(m)·ln(n)`-flavored default the protocol suggests, capped for
    /// tractability.
    pub fn new(g: &TemporalGraph, route_len: Option<usize>, seed: u64) -> Self {
        let n = g.num_nodes().max(2) as f64;
        let default_len = (n.sqrt() * n.ln() * 0.5).ceil() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        SybilGuard {
            tables: RouteTables::new(g, &mut rng),
            route_len: route_len.unwrap_or(default_len).clamp(4, 5_000),
            accept_fraction: 0.5,
        }
    }

    /// The route length in use.
    pub fn route_len(&self) -> usize {
        self.route_len
    }

    /// The undirected edges traversed by one route of `who`.
    fn route_edges(&self, g: &TemporalGraph, who: NodeId, first_edge: usize) -> Vec<(u32, u32)> {
        self.tables
            .route(
                g,
                RouteStart {
                    node: who,
                    first_edge,
                },
                self.route_len,
            )
            .windows(2)
            .map(|w| (w[0].0.min(w[1].0), w[0].0.max(w[1].0)))
            .collect()
    }

    /// Union of edges over all of `who`'s routes (one per incident edge).
    fn all_route_edges(&self, g: &TemporalGraph, who: NodeId) -> HashSet<(u32, u32)> {
        let mut set = HashSet::new();
        for e in 0..g.degree(who) {
            set.extend(self.route_edges(g, who, e));
        }
        set
    }
}

impl SybilDefense for SybilGuard {
    fn name(&self) -> &'static str {
        "SybilGuard"
    }

    /// SybilGuard's acceptance rule, edge-intersection variant: the
    /// verifier accepts when at least `accept_fraction` of **its own**
    /// routes share an edge with the suspect's routes. Judging from the
    /// verifier's side keeps a handful of escaped routes (through attack
    /// edges) from blanketing a small Sybil region.
    fn verify(&self, g: &TemporalGraph, verifier: NodeId, suspect: NodeId) -> Verdict {
        let vd = g.degree(verifier);
        let sd = g.degree(suspect);
        if vd == 0 || sd == 0 {
            return Verdict::Reject; // disconnected nodes are unverifiable
        }
        let suspect_edges = self.all_route_edges(g, suspect);
        let mut intersecting = 0usize;
        for e in 0..vd {
            if self
                .route_edges(g, verifier, e)
                .iter()
                .any(|edge| suspect_edges.contains(edge))
            {
                intersecting += 1;
            }
        }
        if intersecting as f64 >= self.accept_fraction * vd as f64 {
            Verdict::Accept
        } else {
            Verdict::Reject
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{evaluate_defense, injected_cluster_graph};
    use osn_graph::generators;
    use osn_graph::Timestamp;

    #[test]
    fn honest_nodes_verify_each_other() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::barabasi_albert(400, 4, Timestamp::ZERO, &mut rng);
        let sg = SybilGuard::new(&g, Some(60), 7);
        let mut accepted = 0;
        let total = 30;
        for i in 0..total {
            if sg.verify(&g, NodeId(0), NodeId(50 + i)) == Verdict::Accept {
                accepted += 1;
            }
        }
        assert!(
            accepted * 10 >= total * 8,
            "honest acceptance too low: {accepted}/{total}"
        );
    }

    #[test]
    fn rejects_injected_sybil_cluster() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, first_sybil) = injected_cluster_graph(600, 80, 4, &mut rng);
        let sg = SybilGuard::new(&g, Some(40), 3);
        let sybils: Vec<NodeId> = (0..20).map(|i| NodeId(first_sybil.0 + i)).collect();
        let honest: Vec<NodeId> = (10..30).map(NodeId).collect();
        let eval = evaluate_defense(&sg, &g, NodeId(0), &sybils, &honest);
        assert!(
            eval.sybil_acceptance_rate() < 0.5,
            "sybil acceptance {} should be low on injected clusters",
            eval.sybil_acceptance_rate()
        );
        assert!(
            eval.honest_rejection_rate() < 0.45,
            "honest rejection {} too high",
            eval.honest_rejection_rate()
        );
    }

    #[test]
    fn disconnected_suspect_rejected() {
        let mut g = TemporalGraph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1), Timestamp::ZERO).unwrap();
        let sg = SybilGuard::new(&g, Some(8), 1);
        assert_eq!(sg.verify(&g, NodeId(0), NodeId(4)), Verdict::Reject);
        assert_eq!(sg.verify(&g, NodeId(4), NodeId(0)), Verdict::Reject);
    }

    #[test]
    fn default_route_length_scales() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::barabasi_albert(100, 3, Timestamp::ZERO, &mut rng);
        let sg = SybilGuard::new(&g, None, 1);
        assert!(sg.route_len() >= 4);
        assert!(sg.route_len() <= 5000);
    }
}
