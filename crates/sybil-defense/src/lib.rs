//! # sybil-defense — graph-based Sybil defense baselines
//!
//! §3.1 of the paper describes the four decentralized Sybil detectors whose
//! assumptions the measurement study tests: SybilGuard, SybilLimit,
//! SybilInfer, and SumUp. All four presume Sybils form a tight-knit region
//! connected to the honest region by a small cut of attack edges; the
//! paper shows Renren's real Sybils violate that premise, so the defenses
//! should fail on realistic topologies while succeeding on synthetic
//! injected-cluster graphs.
//!
//! This crate implements all four — plus the conductance-ranking community
//! detector Viswanath et al. showed they all reduce to — against the
//! `osn-graph` substrate, with a shared evaluation harness.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod common;
pub mod ranking;
pub mod sumup;
pub mod sybilguard;
pub mod sybilinfer;
pub mod sybillimit;

pub use common::{evaluate_defense, DefenseEvaluation, SybilDefense, Verdict};
pub use ranking::ConductanceRanking;
pub use sumup::SumUp;
pub use sybilguard::SybilGuard;
pub use sybilinfer::SybilInfer;
pub use sybillimit::SybilLimit;
