//! SumUp (Tran et al., NSDI 2009) — Sybil-resilient vote collection.
//!
//! SumUp collects at most `C_max` votes through the social graph toward a
//! trusted *vote collector*: link capacities form a decreasing *ticket
//! envelope* around the collector (level 0 links carry many tickets,
//! links outside the envelope carry capacity 1), and a vote is accepted
//! only if a unit of flow can be pushed from the voter to the collector.
//! Sybil voters behind a small attack cut can deliver at most one vote per
//! attack edge, no matter how many identities they forge — *if* the cut is
//! small.

use crate::common::{SybilDefense, Verdict};
use osn_graph::bfs;
use osn_graph::maxflow::FlowNetwork;
use osn_graph::{NodeId, TemporalGraph};

/// SumUp vote collector.
pub struct SumUp {
    /// Maximum votes to collect (`C_max`).
    pub c_max: usize,
}

impl SumUp {
    /// Collector expecting up to `c_max` votes.
    pub fn new(c_max: usize) -> Self {
        SumUp { c_max: c_max.max(1) }
    }

    /// Build the capacity network around `collector` with SumUp's ticket
    /// envelope: `C_max` tickets start at the collector and are consumed
    /// by the edges of each successive BFS level; an edge at level `l`
    /// (between distance-`l` and distance-`l+1` nodes) carries capacity
    /// `1 + tickets_l / edges_l`; once tickets run out (the envelope
    /// boundary), every edge carries capacity 1. Sybil voters outside the
    /// envelope can thus deliver at most one vote per attack edge.
    fn build_network(&self, g: &TemporalGraph, collector: NodeId) -> FlowNetwork {
        let dist = bfs::distances(g, collector);
        // Count level-crossing edges per level.
        let mut level_edges: Vec<usize> = Vec::new();
        for e in g.edges() {
            if let (Some(x), Some(y)) = (dist[e.a.index()], dist[e.b.index()]) {
                if x != y {
                    let lvl = x.min(y) as usize;
                    if level_edges.len() <= lvl {
                        level_edges.resize(lvl + 1, 0);
                    }
                    level_edges[lvl] += 1;
                }
            }
        }
        // Tickets per level: consume edges_l tickets per level.
        let mut per_edge_bonus: Vec<i64> = Vec::with_capacity(level_edges.len());
        let mut tickets = self.c_max as i64;
        for &edges in &level_edges {
            if tickets <= 0 || edges == 0 {
                per_edge_bonus.push(0);
                continue;
            }
            per_edge_bonus.push((tickets / edges as i64).max(0));
            tickets -= edges as i64;
        }
        let mut net = FlowNetwork::new(g.num_nodes());
        for e in g.edges() {
            let cap = match (dist[e.a.index()], dist[e.b.index()]) {
                (Some(x), Some(y)) if x != y => {
                    let lvl = x.min(y) as usize;
                    1 + per_edge_bonus.get(lvl).copied().unwrap_or(0)
                }
                _ => 1, // same-level or unreachable edges sit outside the tree
            };
            net.add_undirected(e.a.index(), e.b.index(), cap);
        }
        net
    }

    /// Collect votes from `voters` in order; returns, per voter, whether
    /// the vote was accepted. Flow consumed by earlier voters persists
    /// (capacities are shared), capping total accepted votes.
    pub fn collect_votes(
        &self,
        g: &TemporalGraph,
        collector: NodeId,
        voters: &[NodeId],
    ) -> Vec<bool> {
        let mut net = self.build_network(g, collector);
        let mut accepted_total = 0usize;
        voters
            .iter()
            .map(|&v| {
                if v == collector || accepted_total >= self.c_max {
                    return false;
                }
                // Push one unit along the residual network; cap per-voter
                // flow at 1 by bounding with a temporary source arc.
                let flow = push_one(&mut net, v.index(), collector.index());
                if flow {
                    accepted_total += 1;
                }
                flow
            })
            .collect()
    }
}

/// Push a single unit of flow `s → t` on the residual network, consuming
/// capacity if successful.
fn push_one(net: &mut FlowNetwork, s: usize, t: usize) -> bool {
    // A unit augmenting path: run max-flow but stop after one unit — we
    // emulate by temporarily bounding with a 1-capacity super source.
    // FlowNetwork has no node splitting, so use an added source node trick:
    // instead, run one BFS augment via Dinic with early exit: simplest is
    // to add a fresh 1-capacity arc from a virtual node each call, but
    // FlowNetwork is fixed-size. We instead run full max_flow on a clone
    // bounded by the unit arc — cheap enough at our scales.
    // To keep capacity consumption, do it manually: find an augmenting
    // path of positive residual capacity with BFS and push 1 along it.
    let n = net.num_nodes();
    let mut parent_arc: Vec<Option<u32>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut q = std::collections::VecDeque::new();
    visited[s] = true;
    q.push_back(s);
    while let Some(u) = q.pop_front() {
        if u == t {
            break;
        }
        for &a in net.arcs_from(u) {
            let v = net.arc_to(a);
            if !visited[v] && net.arc_cap(a) > 0 {
                visited[v] = true;
                parent_arc[v] = Some(a);
                q.push_back(v);
            }
        }
    }
    if !visited[t] {
        return false;
    }
    // Walk back collecting the path first, so a broken parent chain
    // (impossible once `visited[t]` holds, but recoverable regardless)
    // rejects the vote instead of aborting mid-push.
    let mut path = Vec::new();
    let mut v = t;
    while v != s {
        let Some(a) = parent_arc[v] else {
            return false;
        };
        path.push(a as usize);
        v = net.arc_from_endpoint(a as usize);
    }
    for a in path {
        net.push_unit(a);
    }
    true
}

impl SybilDefense for SumUp {
    fn name(&self) -> &'static str {
        "SumUp"
    }

    /// Single-suspect verdict: can the suspect deliver a vote to the
    /// verifier-as-collector on a fresh network?
    fn verify(&self, g: &TemporalGraph, verifier: NodeId, suspect: NodeId) -> Verdict {
        if g.degree(verifier) == 0 || g.degree(suspect) == 0 || verifier == suspect {
            return Verdict::Reject;
        }
        let accepted = self.collect_votes(g, verifier, &[suspect]);
        if accepted[0] {
            Verdict::Accept
        } else {
            Verdict::Reject
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::injected_cluster_graph;
    use osn_graph::generators;
    use osn_graph::Timestamp;
    use rand::prelude::*;

    #[test]
    fn honest_votes_flow() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::barabasi_albert(300, 4, Timestamp::ZERO, &mut rng);
        let sumup = SumUp::new(50);
        let voters: Vec<NodeId> = (100..140).map(NodeId).collect();
        let accepted = sumup.collect_votes(&g, NodeId(0), &voters);
        let ok = accepted.iter().filter(|&&a| a).count();
        assert!(ok >= 35, "honest votes accepted: {ok}/40");
    }

    #[test]
    fn sybil_votes_capped_by_attack_cut() {
        let mut rng = StdRng::seed_from_u64(2);
        let attack_edges = 3;
        let (g, first_sybil) = injected_cluster_graph(400, 100, attack_edges, &mut rng);
        let sumup = SumUp::new(60);
        let sybil_voters: Vec<NodeId> = (0..50).map(|i| NodeId(first_sybil.0 + i)).collect();
        let accepted = sumup.collect_votes(&g, NodeId(0), &sybil_voters);
        let ok = accepted.iter().filter(|&&a| a).count();
        // Flow from the Sybil region is bounded by the attack cut capacity:
        // each attack edge sits outside the envelope (capacity 1).
        assert!(
            ok <= attack_edges,
            "sybil votes {ok} must be capped by {attack_edges} attack edges"
        );
    }

    #[test]
    fn vote_budget_enforced() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::barabasi_albert(200, 4, Timestamp::ZERO, &mut rng);
        let sumup = SumUp::new(5);
        let voters: Vec<NodeId> = (50..150).map(NodeId).collect();
        let accepted = sumup.collect_votes(&g, NodeId(0), &voters);
        assert!(accepted.iter().filter(|&&a| a).count() <= 5);
    }

    #[test]
    fn self_and_isolated_votes_rejected() {
        let mut g = TemporalGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), Timestamp::ZERO).unwrap();
        let sumup = SumUp::new(5);
        assert_eq!(sumup.verify(&g, NodeId(0), NodeId(0)), Verdict::Reject);
        assert_eq!(sumup.verify(&g, NodeId(0), NodeId(2)), Verdict::Reject);
        assert_eq!(sumup.verify(&g, NodeId(0), NodeId(1)), Verdict::Accept);
    }
}
