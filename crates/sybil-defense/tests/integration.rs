//! Cross-defense integration tests: all five baselines on shared graphs,
//! plus semantics the unit tests don't cover.

use osn_graph::{generators, NodeId, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sybil_defense::common::injected_cluster_graph;
use sybil_defense::{
    evaluate_defense, ConductanceRanking, SumUp, SybilDefense, SybilGuard, SybilInfer,
    SybilLimit, Verdict,
};

#[test]
fn every_defense_separates_the_injected_cluster() {
    let mut rng = StdRng::seed_from_u64(42);
    let (g, first_sybil) = injected_cluster_graph(1500, 150, 6, &mut rng);
    let sybils: Vec<NodeId> = (0..25).map(|i| NodeId(first_sybil.0 + i)).collect();
    let honest: Vec<NodeId> = (200..225).map(NodeId).collect();
    let verifier = NodeId(0);

    let defenses: Vec<Box<dyn SybilDefense>> = vec![
        Box::new(SybilGuard::new(&g, Some(50), 1)),
        Box::new(SybilLimit::new(&g, 2)),
        Box::new(SybilInfer::new(&g, 3)),
        Box::new(ConductanceRanking::new()),
    ];
    for d in &defenses {
        let e = evaluate_defense(d.as_ref(), &g, verifier, &sybils, &honest);
        // Separation: honest acceptance must beat sybil acceptance clearly.
        let honest_acc = 1.0 - e.honest_rejection_rate();
        assert!(
            honest_acc > e.sybil_acceptance_rate() + 0.25,
            "{}: honest acc {:.2} vs sybil acc {:.2}",
            d.name(),
            honest_acc,
            e.sybil_acceptance_rate()
        );
    }
}

#[test]
fn sumup_vote_order_does_not_change_totals_much() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::barabasi_albert(400, 4, Timestamp::ZERO, &mut rng);
    let sumup = SumUp::new(30);
    let voters: Vec<NodeId> = (100..160).map(NodeId).collect();
    let mut reversed = voters.clone();
    reversed.reverse();
    let a = sumup
        .collect_votes(&g, NodeId(0), &voters)
        .iter()
        .filter(|&&x| x)
        .count();
    let b = sumup
        .collect_votes(&g, NodeId(0), &reversed)
        .iter()
        .filter(|&&x| x)
        .count();
    // Max-flow totals are order-independent up to the shared-capacity race;
    // allow small slack.
    assert!(a.abs_diff(b) <= 3, "vote totals diverge: {a} vs {b}");
    assert!(a <= 30 && b <= 30, "budget must cap votes");
}

#[test]
fn sumup_repeated_voter_consumes_capacity_once_per_vote() {
    let mut rng = StdRng::seed_from_u64(8);
    let g = generators::barabasi_albert(200, 3, Timestamp::ZERO, &mut rng);
    let sumup = SumUp::new(5);
    // The same voter asked 10 times: each vote consumes residual capacity;
    // the budget still caps the total.
    let voters = vec![NodeId(50); 10];
    let accepted = sumup.collect_votes(&g, NodeId(0), &voters);
    let total = accepted.iter().filter(|&&x| x).count();
    assert!(total <= 5);
    assert!(total >= 1, "at least the first vote flows");
}

#[test]
fn conductance_ranking_community_size_bounds_respected() {
    let mut rng = StdRng::seed_from_u64(9);
    let g = generators::barabasi_albert(600, 4, Timestamp::ZERO, &mut rng);
    let mut cr = ConductanceRanking::new();
    cr.min_community = 40;
    cr.max_community = 80;
    let community = cr.community(&g, NodeId(3));
    assert!(
        community.len() >= 2 && community.len() <= 80,
        "community size {} out of bounds",
        community.len()
    );
}

#[test]
fn verdicts_are_stable_across_repeated_calls() {
    let mut rng = StdRng::seed_from_u64(10);
    let (g, first_sybil) = injected_cluster_graph(500, 60, 4, &mut rng);
    let defenses: Vec<Box<dyn SybilDefense>> = vec![
        Box::new(SybilGuard::new(&g, Some(40), 5)),
        Box::new(SybilLimit::new(&g, 5)),
        Box::new(SybilInfer::new(&g, 5)),
        Box::new(ConductanceRanking::new()),
        Box::new(SumUp::new(10)),
    ];
    for d in &defenses {
        for suspect in [NodeId(10), first_sybil] {
            let v1 = d.verify(&g, NodeId(0), suspect);
            let v2 = d.verify(&g, NodeId(0), suspect);
            assert_eq!(v1, v2, "{} verdict unstable", d.name());
        }
    }
}

#[test]
fn self_verification_behaviour_is_sane() {
    let mut rng = StdRng::seed_from_u64(11);
    let g = generators::barabasi_albert(200, 3, Timestamp::ZERO, &mut rng);
    // A verifier judging itself: route/walk defenses trivially accept
    // (routes intersect themselves); SumUp rejects (no flow to self).
    let sg = SybilGuard::new(&g, Some(30), 1);
    assert_eq!(sg.verify(&g, NodeId(5), NodeId(5)), Verdict::Accept);
    let su = SumUp::new(5);
    assert_eq!(su.verify(&g, NodeId(5), NodeId(5)), Verdict::Reject);
}
