//! Aligned plain-text tables (for Tables 1–3 of the paper).

/// A simple right-aligned text table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the width differs from the header.
    ///
    /// Named `add_row` (not `row`) deliberately: `row` collides with the
    /// CSR snapshot's per-node accessor, and the lint call graph's
    /// name-based method dispatch would wire this report-time builder
    /// into the serving hot path.
    pub fn add_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment: first column left, rest right.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = width[i] - c.chars().count();
                if i == 0 {
                    line.push_str(c);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(c);
                }
            }
            line.push('\n');
            line
        };
        let mut out = fmt_row(&self.header);
        out.push_str(&format!(
            "{}\n",
            "-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1))
        ));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "count"]);
        t.add_row(["alpha", "1"]).add_row(["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        // Right alignment of numbers: both rows end at same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.add_row(["only-one"]);
    }

    #[test]
    fn empty_table() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.render().starts_with("x"));
    }
}
