//! Histograms, including logarithmic binning for heavy-tailed data.

use serde::{Deserialize, Serialize};

/// A histogram over fixed-width linear bins.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower edge of the first bin.
    pub lo: f64,
    /// Width of each bin.
    pub width: f64,
    /// Bin counts.
    pub counts: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above the last bin edge.
    pub overflow: u64,
}

impl Histogram {
    /// Build with `bins` bins covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "hi must exceed lo");
        Histogram {
            lo,
            width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Add one sample.
    pub(crate) fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Add many samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, it: I) {
        for x in it {
            self.add(x);
        }
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(bin_center, count)` pairs.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * self.width, c))
            .collect()
    }
}

/// Counts per power-of-`base` bin: bin `k` covers `[base^k, base^(k+1))`.
/// Samples < 1 fall into bin 0. Suited to degree distributions.
pub fn log_binned(samples: &[f64], base: f64) -> Vec<(f64, u64)> {
    assert!(base > 1.0, "log base must exceed 1");
    let mut bins: std::collections::BTreeMap<i32, u64> = std::collections::BTreeMap::new();
    for &x in samples {
        let k = if x < 1.0 { 0 } else { x.log(base).floor() as i32 };
        *bins.entry(k).or_insert(0) += 1;
    }
    bins.into_iter()
        .map(|(k, c)| (base.powi(k), c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([-1.0, 0.0, 1.9, 2.0, 9.9, 10.0, 50.0]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.counts, vec![2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn centers_are_midpoints() {
        let h = Histogram::new(0.0, 4.0, 2);
        let c = h.centers();
        assert_eq!(c[0].0, 1.0);
        assert_eq!(c[1].0, 3.0);
    }

    #[test]
    #[should_panic(expected = "need at least one bin")]
    fn zero_bins_rejected() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "hi must exceed lo")]
    fn inverted_range_rejected() {
        Histogram::new(1.0, 0.0, 3);
    }

    #[test]
    fn log_bins_powers_of_ten() {
        let samples = vec![0.5, 1.0, 5.0, 10.0, 99.0, 100.0];
        let bins = log_binned(&samples, 10.0);
        // bin 0 ([<1] + [1,10)): 0.5, 1.0, 5.0 -> 3; bin 10: 10.0, 99.0 -> 2;
        // bin 100: 100.0 -> 1.
        assert_eq!(bins, vec![(1.0, 3), (10.0, 2), (100.0, 1)]);
    }

    #[test]
    fn log_bins_empty() {
        assert!(log_binned(&[], 2.0).is_empty());
    }
}
