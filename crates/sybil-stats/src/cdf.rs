//! Empirical cumulative distribution functions.

use serde::{Deserialize, Serialize};

/// An empirical CDF over `f64` samples.
///
/// Stores the sorted samples; evaluation and quantiles are `O(log n)`.
///
/// ```
/// use sybil_stats::Cdf;
///
/// let cdf: Cdf = (1..=100).map(f64::from).collect();
/// assert_eq!(cdf.eval(50.0), 0.5);
/// assert_eq!(cdf.quantile(0.9), Some(90.0));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (NaN values are dropped).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(f64::total_cmp);
        Cdf { sorted: samples }
    }

    /// Build from any iterator of samples (also available through the
    /// standard [`FromIterator`] impl / `collect()`).
    #[allow(clippy::should_implement_trait)] // the trait IS implemented below
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were given.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`; 0.0 on an empty CDF.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Quantile `q ∈ [0, 1]` (nearest-rank). `None` on an empty CDF.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() as f64 - 1.0) * q).round() as usize;
        Some(self.sorted[idx])
    }

    /// Median, if any samples exist.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Mean of the samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Evenly-spaced `(x, P(X ≤ x))` points for plotting: `points` steps
    /// from min to max (linear). Empty CDF yields an empty vec.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        let (Some(lo), Some(hi)) = (self.min(), self.max()) else {
            return Vec::new();
        };
        let points = points.max(2);
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Log-spaced `(x, P(X ≤ x))` points, for the paper's log-x CDFs
    /// (Figs. 4, 5, 9). Uses `lo.max(floor)` as the left edge so zero
    /// samples don't break the log scale.
    pub fn curve_log(&self, points: usize, floor: f64) -> Vec<(f64, f64)> {
        let (Some(lo), Some(hi)) = (self.min(), self.max()) else {
            return Vec::new();
        };
        let lo = lo.max(floor);
        let hi = hi.max(lo * 1.0001);
        let points = points.max(2);
        (0..points)
            .map(|i| {
                let f = i as f64 / (points - 1) as f64;
                let x = lo * (hi / lo).powf(f);
                (x, self.eval(x))
            })
            .collect()
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Cdf::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_step_function() {
        let c = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.eval(0.5), 0.0);
        assert_eq!(c.eval(1.0), 0.25);
        assert_eq!(c.eval(2.5), 0.5);
        assert_eq!(c.eval(4.0), 1.0);
        assert_eq!(c.eval(100.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let c = Cdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(c.quantile(0.0), Some(10.0));
        assert_eq!(c.quantile(0.5), Some(30.0));
        assert_eq!(c.quantile(1.0), Some(50.0));
        assert_eq!(c.median(), Some(30.0));
    }

    #[test]
    fn empty_cdf() {
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.eval(1.0), 0.0);
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.mean(), 0.0);
        assert!(c.curve(10).is_empty());
        assert!(c.curve_log(10, 1e-6).is_empty());
    }

    #[test]
    fn collect_builds_cdf() {
        let c: Cdf = (1..=5).map(|i| i as f64).collect();
        assert_eq!(c.len(), 5);
        assert_eq!(c.median(), Some(3.0));
    }

    #[test]
    fn nan_dropped() {
        let c = Cdf::new(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn unsorted_input() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(c.samples(), &[1.0, 2.0, 3.0]);
        assert_eq!(c.mean(), 2.0);
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(3.0));
    }

    #[test]
    fn curve_monotone() {
        let c = Cdf::from_iter((1..=100).map(|i| i as f64));
        let pts = c.curve(20);
        assert_eq!(pts.len(), 20);
        for w in pts.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF must be monotone");
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn curve_log_handles_zeros() {
        let c = Cdf::new(vec![0.0, 0.001, 0.1, 1.0]);
        let pts = c.curve_log(10, 1e-6);
        assert_eq!(pts.len(), 10);
        assert!(pts[0].0 >= 1e-6);
        for w in pts.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }
}
