//! # sybil-stats — statistics and reporting
//!
//! Every figure in the paper is a CDF, a scatter, or a dot matrix; every
//! table is rows of counts. This crate provides those presentation
//! primitives: empirical CDFs ([`cdf`]), log-binned histograms
//! ([`histogram`]), summary statistics ([`summary`]), terminal rendering
//! ([`ascii`]), aligned tables ([`table`]), and CSV/JSON export
//! ([`export`]). No simulation or graph logic lives here.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ascii;
pub mod cdf;
pub mod export;
pub mod histogram;
pub mod summary;
pub mod table;

pub use cdf::Cdf;
pub use summary::Summary;
