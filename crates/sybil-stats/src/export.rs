//! CSV and JSON export of experiment series.
//!
//! The `repro` harness writes every figure/table's underlying data into
//! `results/` so external tooling can re-plot it. CSV writing is by hand
//! (values are numeric or simple identifiers — no quoting edge cases);
//! structured metadata goes through `serde_json`.

use serde::Serialize;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Write `(x, y)` series as CSV with the given column names.
pub fn write_xy_csv<W: Write>(
    mut w: W,
    x_name: &str,
    y_name: &str,
    points: &[(f64, f64)],
) -> io::Result<()> {
    writeln!(w, "{x_name},{y_name}")?;
    for (x, y) in points {
        writeln!(w, "{x},{y}")?;
    }
    Ok(())
}

/// Write several named series sharing an x axis:
/// `x, name1, name2, …` — series must be equal length.
pub fn write_multi_csv<W: Write>(
    mut w: W,
    x_name: &str,
    series: &[(&str, Vec<(f64, f64)>)],
) -> io::Result<()> {
    let names: Vec<&str> = series.iter().map(|(n, _)| *n).collect();
    writeln!(w, "{x_name},{}", names.join(","))?;
    let len = series.first().map_or(0, |(_, v)| v.len());
    for (_, v) in series {
        assert_eq!(v.len(), len, "series must share length");
    }
    for i in 0..len {
        let x = series[0].1[i].0;
        let ys: Vec<String> = series.iter().map(|(_, v)| v[i].1.to_string()).collect();
        writeln!(w, "{x},{}", ys.join(","))?;
    }
    Ok(())
}

/// Serialize `value` as pretty JSON into `path`, creating parent dirs.
pub fn write_json<T: Serialize, P: AsRef<Path>>(path: P, value: &T) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, json)
}

/// Write a string to `path`, creating parent dirs.
pub fn write_text<P: AsRef<Path>>(path: P, text: &str) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_csv_format() {
        let mut buf = Vec::new();
        write_xy_csv(&mut buf, "deg", "cdf", &[(1.0, 0.5), (2.0, 1.0)]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s, "deg,cdf\n1,0.5\n2,1\n");
    }

    #[test]
    fn multi_csv_format() {
        let mut buf = Vec::new();
        write_multi_csv(
            &mut buf,
            "x",
            &[
                ("a", vec![(1.0, 0.1), (2.0, 0.2)]),
                ("b", vec![(1.0, 0.9), (2.0, 1.0)]),
            ],
        )
        .unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s, "x,a,b\n1,0.1,0.9\n2,0.2,1\n");
    }

    #[test]
    #[should_panic(expected = "series must share length")]
    fn multi_csv_rejects_ragged() {
        let mut buf = Vec::new();
        let _ = write_multi_csv(
            &mut buf,
            "x",
            &[("a", vec![(1.0, 0.1)]), ("b", vec![])],
        );
    }

    #[test]
    fn json_and_text_roundtrip() {
        let dir = std::env::temp_dir().join("sybil_stats_test_export");
        let _ = std::fs::remove_dir_all(&dir);
        let p = dir.join("nested/value.json");
        write_json(&p, &serde_json::json!({"k": 1})).unwrap();
        let back: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&p).unwrap()).unwrap();
        assert_eq!(back["k"], 1);
        let t = dir.join("nested/plot.txt");
        write_text(&t, "hello").unwrap();
        assert_eq!(std::fs::read_to_string(&t).unwrap(), "hello");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
