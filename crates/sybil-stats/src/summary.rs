//! One-pass summary statistics.

use serde::{Deserialize, Serialize};

/// Count / mean / variance / extrema accumulator (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Running mean.
    pub mean: f64,
    m2: f64,
    /// Smallest sample seen.
    pub min: f64,
    /// Largest sample seen.
    pub max: f64,
}

impl Summary {
    /// Empty accumulator.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub(crate) fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Build from an iterator.
    pub fn of<I: IntoIterator<Item = f64>>(it: I) -> Self {
        let mut s = Summary::new();
        for x in it {
            s.add(x);
        }
        s
    }

    /// Sample variance (n−1 denominator); 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean,
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_moments() {
        let s = Summary::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // population variance 4 -> sample variance 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn degenerate_cases() {
        let empty = Summary::new();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.variance(), 0.0);
        let one = Summary::of([3.0]);
        assert_eq!(one.mean, 3.0);
        assert_eq!(one.variance(), 0.0);
        assert_eq!(one.std_dev(), 0.0);
    }

    #[test]
    fn display_formats() {
        let s = Summary::of([1.0, 2.0]);
        let txt = format!("{s}");
        assert!(txt.contains("n=2"));
        assert!(txt.contains("mean=1.5"));
    }
}
