//! Terminal plots: CDF curves, scatter plots, and the Fig. 8 dot matrix.
//!
#![allow(clippy::needless_range_loop)] // grid painting reads clearer indexed

//! The `repro` harness prints every figure as ASCII so results are
//! inspectable without a plotting stack; the underlying series are also
//! exported as CSV for external tooling.

use crate::cdf::Cdf;

const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Render one or more CDFs as an ASCII chart (y: 0–100%, x: sample space).
/// `log_x` uses log-spaced evaluation points (Figs. 4, 5, 9 style).
pub fn plot_cdfs(series: &[(&str, &Cdf)], width: usize, height: usize, log_x: bool) -> String {
    let width = width.clamp(20, 200);
    let height = height.clamp(5, 60);
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, c) in series {
        if let (Some(a), Some(b)) = (c.min(), c.max()) {
            lo = lo.min(a);
            hi = hi.max(b);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return String::from("(no data)\n");
    }
    if log_x {
        lo = lo.max(1e-6);
    }
    if hi <= lo {
        hi = lo + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, c)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for col in 0..width {
            let f = col as f64 / (width - 1) as f64;
            let x = if log_x {
                lo * (hi / lo).powf(f)
            } else {
                lo + (hi - lo) * f
            };
            let y = c.eval(x);
            let row = ((1.0 - y) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col] = glyph;
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let pct = 100.0 * (1.0 - r as f64 / (height - 1) as f64);
        out.push_str(&format!("{pct:5.0}% |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("       {}\n", "-".repeat(width)));
    let axis = if log_x {
        format!("       x: {lo:.3} .. {hi:.3} (log scale)")
    } else {
        format!("       x: {lo:.3} .. {hi:.3}")
    };
    out.push_str(&axis);
    out.push('\n');
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("       {} {}\n", GLYPHS[si % GLYPHS.len()], name));
    }
    out
}

/// Scatter plot on log–log axes with the `y = x` diagonal marked `/`
/// (Fig. 7 style). Points at or below the diagonal render normally; the
/// diagonal makes "all components above y = x" visible at a glance.
pub fn scatter_loglog(points: &[(f64, f64)], width: usize, height: usize) -> String {
    let width = width.clamp(20, 200);
    let height = height.clamp(5, 60);
    let finite: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|(x, y)| x.is_finite() && y.is_finite() && *x > 0.0 && *y > 0.0)
        .collect();
    if finite.is_empty() {
        return String::from("(no data)\n");
    }
    let lo = finite
        .iter()
        .flat_map(|&(x, y)| [x, y])
        .fold(f64::INFINITY, f64::min)
        .max(1e-9);
    let hi = finite
        .iter()
        .flat_map(|&(x, y)| [x, y])
        .fold(f64::NEG_INFINITY, f64::max)
        .max(lo * 10.0);
    let to_col = |x: f64| ((x / lo).ln() / (hi / lo).ln() * (width - 1) as f64).round() as usize;
    let to_row =
        |y: f64| ((1.0 - (y / lo).ln() / (hi / lo).ln()) * (height - 1) as f64).round() as usize;
    let mut grid = vec![vec![' '; width]; height];
    // y = x diagonal.
    for col in 0..width {
        let f = col as f64 / (width - 1) as f64;
        let v = lo * (hi / lo).powf(f);
        let row = to_row(v).min(height - 1);
        grid[row][col] = '/';
    }
    for &(x, y) in &finite {
        let c = to_col(x).min(width - 1);
        let r = to_row(y).min(height - 1);
        grid[r][c] = '*';
    }
    let mut out = String::new();
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "axes: log, {lo:.2} .. {hi:.2}; '/' marks y = x; '*' data\n"
    ));
    out
}

/// Fig. 8 dot matrix: each input column is `(total_edges, sybil_positions)`;
/// the plot shows edge order (bottom = first) per account (x axis), with a
/// dot where an edge is a Sybil edge.
pub fn dot_matrix(columns: &[(usize, Vec<usize>)], width: usize, height: usize) -> String {
    let width = width.clamp(10, 400);
    let height = height.clamp(5, 80);
    if columns.is_empty() {
        return String::from("(no data)\n");
    }
    let mut grid = vec![vec![' '; width]; height];
    let n = columns.len();
    for col_px in 0..width.min(n) {
        // Sample columns evenly when there are more accounts than pixels.
        let idx = col_px * n / width.min(n);
        let (total, positions) = &columns[idx];
        if *total == 0 {
            continue;
        }
        for &p in positions {
            let frac = p as f64 / (*total).max(1) as f64;
            let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col_px] = '.';
        }
    }
    let mut out = String::new();
    out.push_str("edge-creation order (top = last, bottom = first); '.' = Sybil edge\n");
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("accounts: {} (one column each, subsampled)\n", n.min(width)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_plot_contains_series() {
        let a = Cdf::new((1..=50).map(|i| i as f64).collect());
        let b = Cdf::new((40..=90).map(|i| i as f64).collect());
        let plot = plot_cdfs(&[("alpha", &a), ("beta", &b)], 60, 12, false);
        assert!(plot.contains("alpha"));
        assert!(plot.contains("beta"));
        assert!(plot.contains('*'));
        assert!(plot.contains('o'));
        assert!(plot.lines().count() >= 14);
    }

    #[test]
    fn cdf_plot_log_scale_label() {
        let a = Cdf::new(vec![0.001, 0.01, 0.1, 1.0]);
        let plot = plot_cdfs(&[("x", &a)], 40, 8, true);
        assert!(plot.contains("log scale"));
    }

    #[test]
    fn cdf_plot_empty() {
        let a = Cdf::new(vec![]);
        assert_eq!(plot_cdfs(&[("e", &a)], 40, 8, false), "(no data)\n");
    }

    #[test]
    fn scatter_renders_diagonal_and_points() {
        let pts = vec![(1.0, 10.0), (10.0, 100.0), (100.0, 1000.0)];
        let plot = scatter_loglog(&pts, 40, 12);
        assert!(plot.contains('/'));
        assert!(plot.contains('*'));
    }

    #[test]
    fn scatter_filters_nonpositive() {
        let plot = scatter_loglog(&[(0.0, 1.0), (-1.0, 2.0)], 40, 12);
        assert_eq!(plot, "(no data)\n");
    }

    #[test]
    fn dot_matrix_marks_positions() {
        let cols = vec![(10, vec![0, 9]), (5, vec![2])];
        let m = dot_matrix(&cols, 10, 10);
        assert!(m.contains('.'));
        assert!(m.contains("accounts: 2"));
        assert_eq!(dot_matrix(&[], 10, 10), "(no data)\n");
    }
}
