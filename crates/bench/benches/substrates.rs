//! Substrate performance benches: the building blocks every experiment
//! leans on — graph algorithms, the simulator itself, feature extraction,
//! classifier training, and the streaming detector.

use criterion::{criterion_group, criterion_main, Criterion};
use osn_graph::{cascade, clustering, components, generators, kcore, sampling, spectral, Timestamp};
use osn_sim::{simulate, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use sybil_bench::{small_fixture, tiny_fixture};
use sybil_core::realtime::{replay, RealtimeConfig};
use sybil_core::svm::kernel::KernelSvmParams;
use sybil_core::svm::linear::LinearSvmParams;
use sybil_core::{KernelSvm, LinearSvm, ThresholdClassifier};
use sybil_features::dataset::GroundTruth;
use sybil_features::FeatureExtractor;

fn bench_graph(c: &mut Criterion) {
    let out = small_fixture();
    let g = &out.graph;
    println!(
        "[substrate] graph: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    c.bench_function("graph_connected_components", |b| {
        b.iter(|| black_box(components::connected_components(g).len()))
    });

    c.bench_function("graph_sybil_subset_components", |b| {
        b.iter(|| black_box(components::components_of_subset(g, |n| out.is_sybil(n)).len()))
    });

    let nodes: Vec<_> = g.nodes().take(2000).collect();
    c.bench_function("graph_first50_clustering_x2000", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &n in &nodes {
                acc += clustering::first_k_clustering(g, n, 50);
            }
            black_box(acc)
        })
    });

    c.bench_function("graph_snowball_sample_250", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        let seeds: Vec<_> = g.nodes().take(24).collect();
        let cfg = sampling::SnowballConfig {
            targets: 250,
            fanout: 15,
            degree_bias: 1.0,
            min_degree: 20,
            saturation_degree: Some(60),
        };
        b.iter(|| black_box(sampling::snowball_sample(g, &seeds, &cfg, &mut rng).len()))
    });

    c.bench_function("graph_generate_ba_10k", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| black_box(generators::barabasi_albert(10_000, 4, Timestamp::ZERO, &mut rng).num_edges()))
    });

    c.bench_function("graph_kcore_decomposition", |b| {
        b.iter(|| black_box(kcore::core_numbers(g).len()))
    });

    c.bench_function("graph_spectral_gap", |b| {
        b.iter(|| black_box(spectral::spectral_gap(g, 30, 7)))
    });

    c.bench_function("graph_cascade_p05", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        let seeds: Vec<_> = g.nodes().take(50).collect();
        b.iter(|| black_box(cascade::independent_cascade(g, &seeds, 0.05, &mut rng).reach()))
    });
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("simulate_tiny_full_run", |b| {
        b.iter(|| black_box(simulate(SimConfig::tiny(1)).graph.num_edges()))
    });
}

fn bench_detectors(c: &mut Criterion) {
    let out = tiny_fixture();
    let fx = FeatureExtractor::new(out);
    let mut rng = StdRng::seed_from_u64(3);
    let ds = GroundTruth::sample(&fx, 50, &mut rng);

    c.bench_function("feature_extraction_full_population", |b| {
        b.iter(|| {
            let fx = FeatureExtractor::new(out);
            let ids = out.sybil_ids();
            black_box(fx.features_for_all(&ids).len())
        })
    });

    c.bench_function("threshold_calibration", |b| {
        b.iter(|| black_box(ThresholdClassifier::calibrate(&ds)))
    });

    c.bench_function("svm_linear_training", |b| {
        let params = LinearSvmParams {
            steps: 50_000,
            ..LinearSvmParams::default()
        };
        b.iter(|| black_box(LinearSvm::train_features(&ds.features, &ds.labels, &params)))
    });

    c.bench_function("svm_rbf_training", |b| {
        b.iter(|| {
            black_box(KernelSvm::train_features(
                &ds.features,
                &ds.labels,
                &KernelSvmParams::default(),
            ))
        })
    });

    c.bench_function("realtime_detector_replay_tiny", |b| {
        let cfg = RealtimeConfig {
            rule: ThresholdClassifier {
                max_out_ratio: 0.5,
                min_freq: 15.0,
                max_cc: f64::INFINITY,
            },
            ..RealtimeConfig::default()
        };
        b.iter(|| black_box(replay(out, &cfg).true_positives))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_graph, bench_simulator, bench_detectors
}
criterion_main!(benches);
