//! One Criterion bench per paper *figure*: times regenerating the figure's
//! data series from the shared small-scale simulation, and prints the
//! headline numbers once so `cargo bench` doubles as a results check.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sybil_bench::small_ctx;
use sybil_repro::{fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9};

fn bench_figures(c: &mut Criterion) {
    let ctx = small_ctx();
    let per_class = 200;

    let f1 = fig1::run(ctx, per_class);
    println!(
        "[fig1] 40/h cut catches {:.0}% of Sybils at {:.2}% FP (paper ≈70% at 0%)",
        100.0 * f1.sybils_above_40_per_h,
        100.0 * f1.normals_above_40_per_h
    );
    c.bench_function("fig1_invitation_frequency", |b| {
        b.iter(|| black_box(fig1::run(ctx, per_class)))
    });

    let f2 = fig2::run(ctx, per_class);
    println!(
        "[fig2] outgoing accept: sybil {:.2} (paper 0.26), normal {:.2} (paper 0.79)",
        f2.sybil_mean, f2.normal_mean
    );
    c.bench_function("fig2_outgoing_accept", |b| {
        b.iter(|| black_box(fig2::run(ctx, per_class)))
    });

    let f3 = fig3::run(ctx, per_class);
    println!(
        "[fig3] sybils accepting all incoming: {:.0}% (paper ≈80%)",
        100.0 * f3.sybils_accepting_all
    );
    c.bench_function("fig3_incoming_accept", |b| {
        b.iter(|| black_box(fig3::run(ctx, per_class)))
    });

    let f4 = fig4::run(ctx, per_class);
    println!(
        "[fig4] clustering means: sybil {:.4}, normal {:.4} (ordering as in paper)",
        f4.sybil_mean, f4.normal_mean
    );
    c.bench_function("fig4_clustering", |b| {
        b.iter(|| black_box(fig4::run(ctx, per_class)))
    });

    let f5 = fig5::run(ctx);
    println!(
        "[fig5] sybils with ≥1 sybil edge: {:.1}% (paper ≈20%)",
        100.0 * f5.connected_fraction
    );
    c.bench_function("fig5_sybil_degree", |b| b.iter(|| black_box(fig5::run(ctx))));

    let f6 = fig6::run(ctx);
    println!(
        "[fig6] components {} | <10 members {:.0}% (paper 98%) | giant share {:.0}% (paper 69%)",
        f6.sizes.len(),
        100.0 * f6.below_10,
        100.0 * f6.giant_share
    );
    c.bench_function("fig6_components", |b| b.iter(|| black_box(fig6::run(ctx))));

    let f7 = fig7::run(ctx);
    println!(
        "[fig7] components above y=x: {:.0}% (paper 100%)",
        100.0 * f7.above_diagonal
    );
    c.bench_function("fig7_edge_scatter", |b| b.iter(|| black_box(fig7::run(ctx))));

    let f8 = fig8::run(ctx, 1000);
    println!(
        "[fig8] mean sybil-edge position {:.2} (0.5 = accidental), intentional {}",
        f8.mean_position, f8.intentional
    );
    c.bench_function("fig8_edge_order", |b| {
        b.iter(|| black_box(fig8::run(ctx, 1000)))
    });

    let f9 = fig9::run(ctx);
    println!(
        "[fig9] giant component degree: =1 {:.1}% (paper 34.5%), ≤10 {:.1}% (paper 93.7%)",
        100.0 * f9.degree_one,
        100.0 * f9.degree_at_most_10
    );
    c.bench_function("fig9_component_degree", |b| {
        b.iter(|| black_box(fig9::run(ctx)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figures
}
criterion_main!(benches);
