//! One Criterion bench per paper *table*.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sybil_bench::small_ctx;
use sybil_repro::{table1, table2, table3};

fn bench_tables(c: &mut Criterion) {
    let ctx = small_ctx();

    let t1 = table1::run(ctx, 200, 5);
    println!(
        "[table1] SVM accuracy {:.2}% | threshold accuracy {:.2}% (paper: both ≈99%)",
        100.0 * t1.svm.accuracy(),
        100.0 * t1.threshold.accuracy()
    );
    c.bench_function("table1_classifiers", |b| {
        b.iter(|| black_box(table1::run(ctx, 200, 5)))
    });

    let t2 = table2::run(ctx);
    if let Some(r) = t2.rows.first() {
        println!(
            "[table2] giant component: {} sybils, {} sybil edges, {} attack edges, audience {}",
            r.sybils, r.sybil_edges, r.attack_edges, r.audience
        );
    }
    c.bench_function("table2_largest_components", |b| {
        b.iter(|| black_box(table2::run(ctx)))
    });

    let t3 = table3::run(ctx);
    println!(
        "[table3] tools: {} rows (catalog + measured behavior)",
        t3.rows.len()
    );
    c.bench_function("table3_tools", |b| b.iter(|| black_box(table3::run(ctx))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tables
}
criterion_main!(benches);
