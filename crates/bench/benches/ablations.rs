//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each ablation prints its comparison once (the scientific payload) and
//! then times the varied pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use osn_sim::{simulate, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use sybil_bench::tiny_ctx;
use sybil_core::adaptive::AdaptiveThresholds;
use sybil_core::eval::evaluate;
use sybil_core::ThresholdClassifier;
use sybil_features::dataset::GroundTruth;
use sybil_features::FeatureExtractor;
use sybil_repro::fig1::ground_truth_sample;

/// Which feature carries the threshold classifier's accuracy?
fn ablation_features(c: &mut Criterion) {
    let ctx = tiny_ctx();
    let ds = ground_truth_sample(ctx, 60);
    let full = ThresholdClassifier::calibrate(&ds);
    let variants: [(&str, ThresholdClassifier); 4] = [
        ("full rule", full),
        (
            "no frequency",
            ThresholdClassifier {
                min_freq: f64::NEG_INFINITY,
                ..full
            },
        ),
        (
            "no accept-ratio",
            ThresholdClassifier {
                max_out_ratio: f64::INFINITY,
                ..full
            },
        ),
        (
            "no clustering",
            ThresholdClassifier {
                max_cc: f64::INFINITY,
                ..full
            },
        ),
    ];
    for (name, rule) in &variants {
        let m = evaluate(rule, &ds.features, &ds.labels);
        println!(
            "[ablation_features] {name:15} accuracy {:.1}% (recall {:.1}%, FP {:.1}%)",
            100.0 * m.accuracy(),
            100.0 * m.sybil_recall(),
            100.0 * m.false_positive_rate()
        );
    }
    c.bench_function("ablation_features", |b| {
        b.iter(|| {
            let rule = ThresholdClassifier::calibrate(&ds);
            black_box(evaluate(&rule, &ds.features, &ds.labels).accuracy())
        })
    });
}

/// Does the tools' popularity bias actually create the Sybil topology?
fn ablation_snowball(c: &mut Criterion) {
    let biased = simulate(SimConfig::tiny(77));
    let mut cfg = SimConfig::tiny(77);
    cfg.attacker.degree_bias_override = Some(0.0);
    let unbiased = simulate(cfg);
    let target_deg = |out: &osn_sim::SimOutput| {
        let mut sum = 0usize;
        let mut n = 0usize;
        for r in out.log.records() {
            if out.is_sybil(r.from) {
                sum += out.graph.degree(r.to);
                n += 1;
            }
        }
        sum as f64 / n.max(1) as f64
    };
    println!(
        "[ablation_snowball] biased: target-degree {:.0}, sybil-edge incidence {:.1}% | \
         unbiased: target-degree {:.0}, incidence {:.1}%",
        target_deg(&biased),
        100.0 * biased.sybil_connectivity_fraction(),
        target_deg(&unbiased),
        100.0 * unbiased.sybil_connectivity_fraction(),
    );
    c.bench_function("ablation_snowball", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::tiny(78);
            cfg.attacker.degree_bias_override = Some(0.0);
            black_box(simulate(cfg).sybil_connectivity_fraction())
        })
    });
}

/// How much intentional interlinking does it take before Sybil components
/// look like the communities graph defenses expect?
fn ablation_intentional(c: &mut Criterion) {
    for frac in [0.0, 0.15, 0.5] {
        let mut cfg = SimConfig::tiny(5);
        cfg.attacker.intentional_frac = frac;
        let out = simulate(cfg);
        let stats = out.stats();
        // Isolate *deliberate* edges: accepted sybil-sybil requests within
        // one attacker's farm (accidental cross-attacker edges are the
        // §3.4 baseline).
        let deliberate = out
            .log
            .records()
            .iter()
            .filter(|r| {
                r.outcome.is_accepted()
                    && out.is_sybil(r.from)
                    && out.is_sybil(r.to)
                    && out.accounts[r.from.index()].attacker()
                        == out.accounts[r.to.index()].attacker()
            })
            .count();
        println!(
            "[ablation_intentional] intentional_frac {frac:.2}: {} deliberate + {} \
             accidental sybil edges vs {} attack edges",
            deliberate,
            stats.sybil_edges - deliberate,
            stats.attack_edges
        );
    }
    c.bench_function("ablation_intentional", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::tiny(6);
            cfg.attacker.intentional_frac = 0.3;
            black_box(simulate(cfg).stats().sybil_edges)
        })
    });
}

/// Static thresholds vs the adaptive feedback scheme under attacker drift.
fn ablation_adaptive(c: &mut Criterion) {
    let ctx = tiny_ctx();
    let fx = FeatureExtractor::new(&ctx.out);
    let mut rng = StdRng::seed_from_u64(13);
    let mut ds = GroundTruth::sample(&fx, 60, &mut rng);
    // The verification team audits accounts with enough behavior to judge;
    // drop degenerate entries (a handful of sent requests tells nothing).
    let keep: Vec<bool> = ds.features.iter().map(|f| f.inv_freq_400h >= 5.0).collect();
    let filter = |v: &mut Vec<_>| {
        let mut i = 0;
        v.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    };
    filter(&mut ds.features);
    let mut i = 0;
    ds.labels.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
    let mut i = 0;
    ds.nodes.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
    let static_rule = ThresholdClassifier::calibrate(&ds);

    // Drifted attacker: halve the invitation frequency (ducking the cut).
    let drifted: Vec<_> = ds
        .features
        .iter()
        .map(|f| sybil_features::FeatureVector {
            inv_freq_1h: f.inv_freq_1h * 0.35,
            inv_freq_400h: f.inv_freq_400h * 0.35,
            ..*f
        })
        .collect();

    let mut adaptive = AdaptiveThresholds::from_rule(&static_rule, 0.05);
    for _ in 0..40 {
        for (f, &l) in drifted.iter().zip(&ds.labels) {
            adaptive.feedback(f, l);
        }
    }
    let static_m = evaluate(&static_rule, &drifted, &ds.labels);
    let adaptive_rule = adaptive.current_rule();
    let adaptive_m = evaluate(&adaptive_rule, &drifted, &ds.labels);
    println!(
        "[ablation_adaptive] after drift: sybil recall static {:.0}% vs adaptive {:.0}% \
         (accuracy {:.1}% vs {:.1}%; freq cut {:.1} -> {:.1})",
        100.0 * static_m.sybil_recall(),
        100.0 * adaptive_m.sybil_recall(),
        100.0 * static_m.accuracy(),
        100.0 * adaptive_m.accuracy(),
        static_rule.min_freq,
        adaptive_rule.min_freq
    );
    c.bench_function("ablation_adaptive", |b| {
        b.iter(|| {
            let mut ad = AdaptiveThresholds::from_rule(&static_rule, 0.05);
            for (f, &l) in drifted.iter().zip(&ds.labels) {
                ad.feedback(f, l);
            }
            black_box(ad.current_rule())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_features, ablation_snowball, ablation_intentional, ablation_adaptive
}
criterion_main!(benches);
