//! Defense-algorithm benches: one verification per baseline on both the
//! wild simulated graph and a synthetic injected-cluster graph.

use criterion::{criterion_group, criterion_main, Criterion};
use osn_graph::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use sybil_bench::small_fixture;
use sybil_defense::common::injected_cluster_graph;
use sybil_defense::{
    ConductanceRanking, SumUp, SybilDefense, SybilGuard, SybilInfer, SybilLimit, Verdict,
};

fn bench_defenses(c: &mut Criterion) {
    let out = small_fixture();
    let g = &out.graph;
    let verifier = out
        .normal_ids()
        .into_iter()
        .find(|&n| g.degree(n) >= 30)
        .expect("a connected verifier exists");
    let suspect = out
        .sybil_ids()
        .into_iter()
        .find(|&s| g.degree(s) >= 10)
        .expect("a connected sybil exists");

    let sg = SybilGuard::new(g, Some(120), 1);
    c.bench_function("sybilguard_verify_wild", |b| {
        b.iter(|| black_box(sg.verify(g, verifier, suspect) == Verdict::Accept))
    });

    let sl = SybilLimit::new(g, 2);
    println!(
        "[defense] SybilLimit wild: r={} w={} min_intersections={}",
        sl.instances, sl.route_len, sl.min_intersections
    );
    c.bench_function("sybillimit_verify_wild", |b| {
        b.iter(|| black_box(sl.verify(g, verifier, suspect) == Verdict::Accept))
    });

    let si = SybilInfer::new(g, 3);
    si.verify(g, verifier, suspect); // warm the per-verifier profile cache
    c.bench_function("sybilinfer_verify_wild_cached", |b| {
        b.iter(|| black_box(si.verify(g, verifier, suspect) == Verdict::Accept))
    });

    let su = SumUp::new(50);
    c.bench_function("sumup_verify_wild", |b| {
        b.iter(|| black_box(su.verify(g, verifier, suspect) == Verdict::Accept))
    });

    let cr = ConductanceRanking::new();
    cr.verify(g, verifier, suspect); // warm the community cache
    c.bench_function("conductance_verify_wild_cached", |b| {
        b.iter(|| black_box(cr.verify(g, verifier, suspect) == Verdict::Accept))
    });

    // Injected-cluster setup cost (graph build + one verification round).
    c.bench_function("injected_cluster_build_and_verify", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            let (inj, first_sybil) = injected_cluster_graph(1000, 100, 5, &mut rng);
            let sg = SybilGuard::new(&inj, Some(40), 1);
            black_box(sg.verify(&inj, NodeId(0), first_sybil) == Verdict::Accept)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_defenses
}
criterion_main!(benches);
