//! Benches for the extension experiments (classifier zoo, mixing
//! analysis, deployment replay).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sybil_bench::tiny_ctx;
use sybil_repro::{deployment, mixing, zoo, RunSpec, Scale};

fn bench_extensions(c: &mut Criterion) {
    let ctx = tiny_ctx();
    let spec = RunSpec::builder().scale(Scale::Tiny).build();

    let z = zoo::run(ctx, 50, 5);
    for r in &z.rows {
        println!(
            "[zoo] {:22} accuracy {:.1}% auc {:.3}",
            r.name,
            100.0 * r.matrix.accuracy(),
            r.auc
        );
    }
    c.bench_function("zoo_classifiers", |b| {
        b.iter(|| black_box(zoo::run(ctx, 50, 5)))
    });

    let m = mixing::run(ctx);
    println!(
        "[mixing] escape: wild {:.2} vs injected {:.2} (honest baseline {:.2})",
        m.wild_escape, m.injected_escape, m.honest_escape
    );
    c.bench_function("mixing_analysis", |b| b.iter(|| black_box(mixing::run(ctx))));

    let d = deployment::run(ctx, &spec);
    println!(
        "[deployment] static catch {:.0}% | adaptive catch {:.0}%",
        100.0 * d.static_report.catch_rate(),
        100.0 * d.adaptive_report.catch_rate()
    );
    c.bench_function("deployment_replay", |b| {
        b.iter(|| black_box(deployment::run(ctx, &spec)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_extensions
}
criterion_main!(benches);
