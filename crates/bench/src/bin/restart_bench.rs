//! Persistence acceptance bench: checkpoint-write overhead on the
//! serving critical path, plus restart-to-first-verdict latency.
//!
//! Three legs per rep, order-rotated across `REPS` reps: the plain
//! clocked `ServeSession` (production path, no plane), a journal-only
//! [`StorePlane`] (`checkpoint_every = 0`: every epoch write-ahead
//! journaled to a real file, no checkpoints), and the full default
//! plane (`StorePlane::open`: same journaling plus `SYBS` checkpoints
//! at the default cadence — the `repro serve --store` configuration).
//! The journal-only and default legs do identical journal work, so
//! their paired delta isolates exactly the checkpoint writes; file
//! journaling itself is reported (the in-memory journal is gated
//! separately by `chaos_bench`). Every persisted rep starts from a
//! cleared directory so full cost is measured, never a warm resume,
//! and the minimum paired overhead across reps is what the gate sees.
//! The acceptance gates:
//!
//! * the persisted runs' reports are byte-identical to the plain run's;
//! * checkpoint writes cost under 5% of the fault-free critical path —
//!   they land on the barrier (off the per-event path) at a sparse
//!   default cadence, so anything above that signals snapshot work
//!   leaking into the event loop or a cadence regression;
//! * a kill two epochs before the end warm-restarts from disk to a
//!   report byte-identical to the uninterrupted run's, and the restart
//!   (checkpoint load + journal tail + the short live tail) beats the
//!   cold full replay it replaces.
//!
//! Writes `BENCH_restart.json` at the working directory root. Run with
//! `cargo run --release -p sybil-bench --bin restart_bench`.

use osn_sim::stream::EventStream;
use osn_sim::{simulate, SimConfig};
use std::path::PathBuf;
use std::time::Instant;
use sybil_core::realtime::RealtimeConfig;
use sybil_core::ThresholdClassifier;
use sybil_serve::fault::FaultKind;
use sybil_serve::{ServeConfig, ServeError, ServeSession};
use sybil_store::{StorePlane, DEFAULT_CHECKPOINT_EVERY, DEFAULT_DIGEST_EVERY};

const REPS: usize = 9;

fn main() {
    let out = simulate(SimConfig::small(42));
    let events = EventStream::new(&out.log).total_events();
    eprintln!(
        "restart_bench: {} accounts, {} merged events",
        out.accounts.len(),
        events
    );

    // Adaptive config: detections, feedback, and audits all live, so
    // checkpoints carry every section and the journal every record kind.
    let detect = RealtimeConfig {
        rule: ThresholdClassifier {
            max_out_ratio: 0.5,
            min_freq: 15.0,
            max_cc: f64::INFINITY,
        },
        adaptive: true,
        ..RealtimeConfig::default()
    };
    let cfg = ServeConfig {
        shards: 4,
        epoch_hours: 48,
        detect,
        rotate_floor: 0,
    };

    let base = std::env::temp_dir().join(format!("sybil-restart-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let epoch = Instant::now();
    let clock = move || epoch.elapsed().as_secs_f64();

    // Plain leg: the production path, no plane. Returns the critical
    // path and the oracle report.
    let run_plain = || {
        let o = ServeSession::new(cfg)
            .clock(&clock)
            .run(&out)
            .expect("serve failed");
        (o.stats.critical_path_s, o.report)
    };
    // Persisted leg at an explicit checkpoint cadence (0 = journal
    // only). A cleared directory per run: the leg must pay for every
    // journal append and checkpoint, never warm-restart past the work.
    let run_plane = |dir: &PathBuf, every: u64| {
        let _ = std::fs::remove_dir_all(dir);
        let mut plane =
            StorePlane::with_cadence(dir, every, DEFAULT_DIGEST_EVERY).expect("store opens");
        let o = ServeSession::new(cfg)
            .clock(&clock)
            .store(&mut plane)
            .run(&out)
            .expect("serve failed");
        (
            o.stats.critical_path_s,
            o.report,
            plane.journal().len_bytes(),
        )
    };

    // Order-rotated reps: adjacent legs see the same box conditions, so
    // common-mode noise cancels in the paired ratios; the rotation keeps
    // the post-idle slot from always favoring one leg; the gate takes
    // the minimum paired overhead across reps. The checkpoint gate pairs
    // the default plane against the journal-only plane — both do
    // identical journal work, so the delta is the checkpoint writes.
    let mut reps: Vec<(f64, f64, f64)> = Vec::new(); // (off, jrn, on) seconds
    let mut last = None;
    for rep in 0..REPS {
        let dir_j = base.join(format!("rep{rep}-jrn"));
        let dir_c = base.join(format!("rep{rep}-ckpt"));
        let (mut off, mut jrn, mut on) = ((0.0, None), (0.0, None), (0.0, None));
        let mut do_off = || {
            let (s, r) = run_plain();
            off = (s, Some(r));
        };
        let mut do_jrn = || {
            let (s, r, b) = run_plane(&dir_j, 0);
            jrn = (s, Some((r, b)));
        };
        let mut do_on = || {
            let (s, r, b) = run_plane(&dir_c, DEFAULT_CHECKPOINT_EVERY);
            on = (s, Some((r, b)));
        };
        match rep % 3 {
            0 => {
                do_off();
                do_jrn();
                do_on();
            }
            1 => {
                do_jrn();
                do_on();
                do_off();
            }
            _ => {
                do_on();
                do_off();
                do_jrn();
            }
        }
        reps.push((off.0, jrn.0, on.0));
        last = Some((
            off.1.expect("off leg ran"),
            jrn.1.expect("jrn leg ran"),
            on.1.expect("on leg ran"),
        ));
    }
    let (r_off, (r_jrn, _), (r_on, journal_bytes)) = last.expect("REPS >= 1");
    let oracle_json = serde_json::to_string(&r_off).expect("report serializes");
    let identical = oracle_json == serde_json::to_string(&r_jrn).expect("report serializes")
        && oracle_json == serde_json::to_string(&r_on).expect("report serializes");
    // The gated number: checkpoint writes alone, as a fraction of the
    // fault-free critical path.
    let overhead_pct = reps
        .iter()
        .map(|(off, jrn, on)| ((on - jrn) / off * 100.0).max(0.0))
        .fold(f64::INFINITY, f64::min);
    // Reported, not gated here: what file journaling itself costs.
    // chaos_bench gates the journaling protocol (<5%) against its
    // in-memory journal; this is the same protocol on a real file.
    let journal_overhead_pct = reps
        .iter()
        .map(|(off, jrn, _)| ((jrn - off) / off * 100.0).max(0.0))
        .fold(f64::INFINITY, f64::min);
    let off_best = reps.iter().map(|r| r.0).fold(f64::INFINITY, f64::min);
    let jrn_best = reps.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    let on_best = reps.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);

    // Checkpoint inventory from the last rep's default-cadence directory.
    let plane =
        StorePlane::open(base.join(format!("rep{}-ckpt", REPS - 1))).expect("store reopens");
    let checkpoints = plane.store().checkpoints().expect("checkpoint list");
    let (total_epochs, _) = plane
        .journal()
        .finished()
        .expect("finished run has an end record");
    let checkpoint_bytes = checkpoints
        .last()
        .and_then(|e| plane.store().load(*e).ok())
        .map(|cp| sybil_store::format::encode_checkpoint(&cp).len())
        .unwrap_or(0);
    drop(plane);
    eprintln!(
        "  plain {:.1} ms | journal-only {:.1} ms | +checkpoints {:.1} ms | \
         ckpt overhead {overhead_pct:.2}% | journal overhead {journal_overhead_pct:.2}% | \
         {} checkpoints x {checkpoint_bytes} bytes | journal {journal_bytes} bytes | \
         identical={identical}",
        off_best * 1e3,
        jrn_best * 1e3,
        on_best * 1e3,
        checkpoints.len()
    );

    // Restart-to-first-verdict: kill two epochs before the end, then
    // time the whole road back — opening the store, loading the newest
    // checkpoint, replaying the committed journal tail, serving the
    // short live remainder to the final report. Compare against the
    // cold full replay a storeless deployment would need. Three reps
    // with alternating leg order, best-of per leg: a single fixed-order
    // timing flips under transient box load, and the killed state is
    // re-created per rep because a *finished* journal replays a
    // different (cheaper) path than a mid-run one.
    let kill_epoch = total_epochs.saturating_sub(2);
    let dir = base.join("kill");
    let mut restart_s = f64::INFINITY;
    let mut cold_s = f64::INFINITY;
    let mut restart_identical = true;
    let mut resumed_from = None;
    let mut tail_replayed = 0;
    for rep in 0..3 {
        let _ = std::fs::remove_dir_all(&dir);
        let mut doomed = StorePlane::open(&dir)
            .expect("store opens")
            .kill_at_epoch(kill_epoch);
        match ServeSession::new(cfg).store(&mut doomed).run(&out) {
            Err(ServeError::Chaos(c)) => assert_eq!(c.fault_kind, FaultKind::Crash),
            other => panic!("expected the armed kill to fire, got {other:?}"),
        }
        drop(doomed);
        let mut run_restart = || {
            let t = Instant::now();
            let mut revived = StorePlane::open(&dir).expect("store reopens");
            let outcome = ServeSession::new(cfg)
                .store(&mut revived)
                .run(&out)
                .expect("warm restart completes");
            restart_s = restart_s.min(t.elapsed().as_secs_f64());
            resumed_from = revived.resumed_from();
            tail_replayed = revived.tail_replayed();
            outcome
        };
        let mut run_cold = || {
            let t = Instant::now();
            let cold = ServeSession::new(cfg).run(&out).expect("cold replay");
            cold_s = cold_s.min(t.elapsed().as_secs_f64());
            cold
        };
        let (restarted, cold) = if rep % 2 == 0 {
            let r = run_restart();
            (r, run_cold())
        } else {
            let c = run_cold();
            (run_restart(), c)
        };
        restart_identical &= serde_json::to_string(&restarted.report).expect("serializes")
            == serde_json::to_string(&cold.report).expect("serializes");
    }
    eprintln!(
        "  restart smoke: killed at epoch {kill_epoch}/{total_epochs} | resumed from \
         {resumed_from:?} (+{tail_replayed} journal epochs) | restart {:.1} ms vs cold \
         {:.1} ms | identical={restart_identical}",
        restart_s * 1e3,
        cold_s * 1e3
    );

    let report = serde_json::json!({
        "bench": "restart",
        "events": events,
        "accounts": out.accounts.len(),
        "reps": REPS,
        "shards": 4,
        "timing": "critical_path (coordinator + slowest shard per epoch); overheads are \
                   minimum per-rep paired ratios over order-rotated reps, each persisted \
                   rep from a cleared directory; checkpoint overhead pairs the default \
                   plane against a journal-only plane (identical journaling, so the \
                   delta is the checkpoint writes) over the plain critical path; \
                   *_ms are per-variant bests",
        "plain_critical_path_ms": off_best * 1e3,
        "journal_only_critical_path_ms": jrn_best * 1e3,
        "persisted_critical_path_ms": on_best * 1e3,
        "checkpoint_overhead_pct": overhead_pct,
        "journal_overhead_pct": journal_overhead_pct,
        "epochs": total_epochs,
        "checkpoints_written": checkpoints.len(),
        "checkpoint_bytes": checkpoint_bytes,
        "journal_bytes": journal_bytes,
        "report_identical": identical,
        "kill_epoch": kill_epoch,
        "restart_resumed_from": resumed_from,
        "restart_tail_replayed": tail_replayed,
        "restart_to_first_verdict_ms": restart_s * 1e3,
        "cold_replay_ms": cold_s * 1e3,
        "restart_identical": restart_identical,
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_restart.json", &json).expect("write BENCH_restart.json");
    println!("{json}");
    let _ = std::fs::remove_dir_all(&base);
    assert!(
        identical,
        "acceptance: persisted and plain runs must produce the same report"
    );
    assert!(
        restart_identical,
        "acceptance: a killed run must warm-restart byte-identical from disk"
    );
    assert!(
        overhead_pct < 5.0,
        "acceptance: checkpoint overhead must stay under 5% ({overhead_pct:.2}%)"
    );
    assert!(
        restart_s < cold_s,
        "acceptance: a near-end restart ({:.1} ms) must beat the cold replay ({:.1} ms)",
        restart_s * 1e3,
        cold_s * 1e3
    );
}
