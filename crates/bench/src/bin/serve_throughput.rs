//! Throughput + bit-identity check for the sharded serving engine.
//!
//! Replays a ≥200k-event request stream through a
//! `sybil_serve::ServeSession` at 1, 2, 4 and 8 shards and through the
//! sequential
//! `sybil_core::realtime::replay`, verifies every report serializes
//! byte-identically, and writes `BENCH_serve.json` at the workspace root.
//!
//! Throughput is reported from the engine's **parallel critical path**
//! (per epoch: sequential coordinator work + the slowest shard's busy
//! time, measured with a clock the bench injects — the engine itself
//! holds no clock). On a machine with at least one core per shard the
//! critical path IS the wall-clock; on this repo's single-core CI box,
//! where shards necessarily run serially, it is what wall-clock would be
//! with enough cores, measured exactly rather than guessed. Raw
//! wall-clock is also recorded per leg.
//!
//! Run with `cargo run --release -p sybil-bench --bin serve_throughput`.

use osn_sim::stream::EventStream;
use osn_sim::{simulate, SimConfig, SimOutput};
use std::time::Instant;
use sybil_core::realtime::{replay, RealtimeConfig};
use sybil_core::ThresholdClassifier;
use sybil_serve::{ServeConfig, ServeSession, ServeStats};

/// Best-of-`reps` wall-clock milliseconds for `f`, returning the last
/// result for identity checks.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (best, out.unwrap())
}

/// A stream big enough for the ≥200k-event acceptance floor; the small
/// fixture's log falls short, so this scales the population up.
fn fixture() -> SimOutput {
    let cfg = SimConfig {
        n_normal: 20_000,
        n_sybil: 600,
        ..SimConfig::small(42)
    };
    simulate(cfg)
}

fn main() {
    let reps = 3;
    let out = fixture();
    let events = EventStream::new(&out.log).total_events();
    eprintln!(
        "serve_throughput: {} accounts, {} merged events",
        out.accounts.len(),
        events
    );
    assert!(
        events >= 200_000,
        "acceptance: need a >=200k-event log, fixture produced {events}"
    );

    // An adaptive config exercises every engine path: checks, feedback
    // redistribution at barriers, audits, and snapshot rotation.
    let detect = RealtimeConfig {
        rule: ThresholdClassifier {
            max_out_ratio: 0.5,
            min_freq: 15.0,
            max_cc: f64::INFINITY,
        },
        adaptive: true,
        ..RealtimeConfig::default()
    };

    let (seq_ms, seq_report) = time_ms(reps, || replay(&out, &detect));
    let seq_json = serde_json::to_string(&seq_report).expect("report serializes");

    let epoch = Instant::now();
    let clock = move || epoch.elapsed().as_secs_f64();
    let mut legs = Vec::new();
    let mut all_identical = true;
    for shards in [1usize, 2, 4, 8] {
        let cfg = ServeConfig {
            shards,
            epoch_hours: 48,
            detect,
            rotate_floor: 0,
        };
        let mut best_path: Option<ServeStats> = None;
        let mut report = None;
        for _ in 0..reps {
            let o = ServeSession::new(cfg)
                .clock(&clock)
                .run(&out)
                .expect("serve failed");
            let (r, stats) = (o.report, o.stats);
            if best_path
                .as_ref()
                .is_none_or(|b| stats.critical_path_s < b.critical_path_s)
            {
                best_path = Some(stats);
            }
            report = Some(r);
        }
        let (report, best_path) = (report.expect("reps >= 1"), best_path.expect("reps >= 1"));
        let json = serde_json::to_string(&report).expect("report serializes");
        let identical = json == seq_json;
        all_identical &= identical;
        let path_ms = best_path.critical_path_s * 1e3;
        let wall_ms = best_path.wall_s * 1e3;
        let eps = events as f64 / best_path.critical_path_s;
        eprintln!(
            "  {shards} shard(s): path {path_ms:>8.1} ms (wall {wall_ms:>8.1} ms)  \
             {eps:>10.0} events/s  identical={identical}"
        );
        legs.push((shards, path_ms, wall_ms, eps, identical));
    }

    let ms_1 = legs[0].1;
    let ms_8 = legs[3].1;
    let speedup_8v1 = ms_1 / ms_8;
    let report = serde_json::json!({
        "bench": "serve_throughput",
        "events": events,
        "accounts": out.accounts.len(),
        "reps": reps,
        "timing": "critical_path (coordinator + slowest shard per epoch; equals \
                   wall-clock at >=1 core per shard, exact on the 1-core CI box)",
        "sequential_replay_ms": seq_ms,
        "shards": legs.iter().map(|&(s, path_ms, wall_ms, eps, identical)| serde_json::json!({
            "shards": s,
            "critical_path_ms": path_ms,
            "wall_ms": wall_ms,
            "events_per_sec": eps,
            "identical_to_replay": identical,
        })).collect::<Vec<_>>(),
        "speedup_8v1": speedup_8v1,
        "bit_identical": all_identical,
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!("8-shard vs 1-shard speedup {speedup_8v1:.2}x");
    assert!(all_identical, "acceptance: all reports must be byte-identical");
    assert!(
        speedup_8v1 >= 2.0,
        "acceptance: >=2x events/sec at 8 shards vs 1 required ({speedup_8v1:.2}x)"
    );
}
