//! Overhead guard for the sybil-obs instrumentation on the serving
//! engine's critical path.
//!
//! Replays the same adaptive stream through a clocked `ServeSession`
//! without metrics and with them (full metric registry + per-shard
//! counters + epoch spans), interleaved best-of-`REPS`, and compares the
//! engine's
//! parallel critical path. The acceptance gate: observability must cost
//! under 5% — counters are plain integer adds on already-owned state, so
//! anything above that signals an accidental allocation or lock on the
//! hot path. Writes `BENCH_obs.json` at the workspace root.
//!
//! Run with `cargo run --release -p sybil-bench --bin obs_overhead`.

use osn_sim::stream::EventStream;
use osn_sim::{simulate, SimConfig};
use std::time::Instant;
use sybil_core::realtime::RealtimeConfig;
use sybil_core::ThresholdClassifier;
use sybil_serve::{ServeConfig, ServeSession};

const REPS: usize = 5;

fn main() {
    let out = simulate(SimConfig::small(42));
    let events = EventStream::new(&out.log).total_events();
    eprintln!(
        "obs_overhead: {} accounts, {} merged events",
        out.accounts.len(),
        events
    );

    // Adaptive config: every instrumented path (checks, detections,
    // feature computation, feedback, audits) is live.
    let detect = RealtimeConfig {
        rule: ThresholdClassifier {
            max_out_ratio: 0.5,
            min_freq: 15.0,
            max_cc: f64::INFINITY,
        },
        adaptive: true,
        ..RealtimeConfig::default()
    };
    let cfg = ServeConfig {
        shards: 4,
        epoch_hours: 48,
        detect,
        rotate_floor: 0,
    };

    let epoch = Instant::now();
    let clock = move || epoch.elapsed().as_secs_f64();

    // Interleave the two variants so drift (thermal, cache, scheduler)
    // hits both equally; keep the best critical path per variant.
    let mut off_best = f64::INFINITY;
    let mut on_best = f64::INFINITY;
    let mut reports = Vec::new();
    for _ in 0..REPS {
        let off = ServeSession::new(cfg)
            .clock(&clock)
            .run(&out)
            .expect("serve failed");
        off_best = off_best.min(off.stats.critical_path_s);
        let mut reg = sybil_obs::Registry::new();
        let on = ServeSession::new(cfg)
            .clock(&clock)
            .metrics(&mut reg)
            .run(&out)
            .expect("serve failed");
        on_best = on_best.min(on.stats.critical_path_s);
        reports.push((off.report, on.report, reg.snapshot()));
    }
    let (r_off, r_on, snapshot) = reports.pop().expect("REPS >= 1");
    let identical = serde_json::to_string(&r_off).expect("report serializes")
        == serde_json::to_string(&r_on).expect("report serializes");

    let overhead_pct = ((on_best - off_best) / off_best * 100.0).max(0.0);
    eprintln!(
        "  off {:.1} ms | on {:.1} ms | overhead {overhead_pct:.2}% | identical={identical}",
        off_best * 1e3,
        on_best * 1e3
    );

    let report = serde_json::json!({
        "bench": "obs_overhead",
        "events": events,
        "accounts": out.accounts.len(),
        "reps": REPS,
        "shards": 4,
        "timing": "critical_path (coordinator + slowest shard per epoch), best of reps, \
                   off/on interleaved",
        "off_critical_path_ms": off_best * 1e3,
        "on_critical_path_ms": on_best * 1e3,
        "overhead_pct": overhead_pct,
        "report_identical": identical,
        "logical_metrics": snapshot.logical.len(),
        "sharded_metrics": snapshot.sharded.len(),
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("{json}");
    assert!(
        identical,
        "acceptance: observed and unobserved runs must produce the same report"
    );
    assert!(
        overhead_pct < 5.0,
        "acceptance: observability overhead must stay under 5% ({overhead_pct:.2}%)"
    );
}
