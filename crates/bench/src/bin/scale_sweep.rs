//! Million-account scale sweep for the serving substrate.
//!
//! Generates synthetic workloads (`osn_sim::scale`) at 20k, 200k, 1M and
//! 5M accounts, replays each sequentially as the oracle, serves it at 1
//! and 8 shards (plus 2 at the small sizes), and records per size:
//! events/sec on the engine's parallel critical path, peak RSS (`VmHWM`
//! from `/proc/self/status`), and byte-identity of every serve report to
//! the sequential replay. Writes `BENCH_scale.json`.
//!
//! Peak RSS is checked against the documented memory budget (see
//! DESIGN.md "Memory layout at scale"):
//! `256 MiB + 260 B × accounts + 120 B × events`. VmHWM is a process
//! high-water mark, so the sweep runs sizes ascending and each row's
//! check uses the budget of the largest size reached so far.
//!
//! `--smoke` runs the 20k and 200k rows only (the CI-sized gate wired
//! into `scripts/verify.sh`); the full sweep is the committed
//! `BENCH_scale.json`.
//!
//! Run with `cargo run --release -p sybil-bench --bin scale_sweep`.

use osn_sim::scale::{generate, ScaleConfig};
use osn_sim::stream::PullStream;
use std::time::Instant;
use sybil_core::realtime::{replay, RealtimeConfig};
use sybil_core::ThresholdClassifier;
use sybil_serve::{ServeConfig, ServeSession, ServeStats};

/// Peak resident set size of this process so far, in bytes (Linux VmHWM).
fn peak_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// The documented peak-RSS budget for a workload of this shape.
fn rss_budget_bytes(accounts: u64, events: u64) -> u64 {
    256 * 1024 * 1024 + 260 * accounts + 120 * events
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke {
        &[20_000, 200_000]
    } else {
        &[20_000, 200_000, 1_000_000, 5_000_000]
    };

    // Adaptive config exercises every engine path (checks, audits,
    // feedback barriers, snapshot rotations); thresholds sized so the
    // synthetic Sybils are actually detectable.
    let detect = RealtimeConfig {
        rule: ThresholdClassifier {
            max_out_ratio: 0.4,
            min_freq: 5.0,
            max_cc: f64::INFINITY,
        },
        adaptive: true,
        ..RealtimeConfig::default()
    };

    let mut rows = Vec::new();
    let mut all_identical = true;
    let mut max_budget = 0u64;
    for &accounts in sizes {
        // Min-of-2 per leg: the first run of a fresh process pays
        // first-touch page faults on every large allocation, which at the
        // million-account sizes doubles the measured path. The second run
        // reuses the allocator's pages and measures the engine.
        let reps = 2;
        let t0 = Instant::now();
        let out = generate(&ScaleConfig::at(accounts, 42));
        let gen_s = t0.elapsed().as_secs_f64();
        let events = PullStream::new(&out.log).total_events();
        eprintln!(
            "scale_sweep: {accounts} accounts, {events} events (generated in {gen_s:.1}s)"
        );

        let t0 = Instant::now();
        let seq_report = replay(&out, &detect);
        let replay_s = t0.elapsed().as_secs_f64();
        let seq_json = serde_json::to_string(&seq_report).expect("report serializes");
        eprintln!(
            "  replay: {replay_s:.1}s, {} detections",
            seq_report.detections.len()
        );

        let epoch = Instant::now();
        let clock = move || epoch.elapsed().as_secs_f64();
        let shard_counts: &[usize] = if accounts > 200_000 { &[1, 8] } else { &[1, 2, 8] };
        let mut legs = Vec::new();
        let mut row_identical = true;
        for &shards in shard_counts {
            let cfg = ServeConfig {
                shards,
                epoch_hours: 48,
                detect,
                rotate_floor: 0,
            };
            let mut best: Option<ServeStats> = None;
            let mut report = None;
            for _ in 0..reps {
                let o = ServeSession::new(cfg)
                    .clock(&clock)
                    .run(&out)
                    .expect("serve failed");
                let (r, stats) = (o.report, o.stats);
                if best
                    .as_ref()
                    .is_none_or(|b| stats.critical_path_s < b.critical_path_s)
                {
                    best = Some(stats);
                }
                report = Some(r);
            }
            let (report, best) = (report.expect("reps >= 1"), best.expect("reps >= 1"));
            let identical = serde_json::to_string(&report).expect("serializes") == seq_json;
            row_identical &= identical;
            let eps = events as f64 / best.critical_path_s;
            // Aggregate scan rate: every shard scans every event (that is
            // what keeps them bit-identical to the sequential replay), so
            // the fleet sustains `shards × events` event-scans over the
            // critical path.
            let scan_eps = eps * shards as f64;
            eprintln!(
                "  {shards} shard(s): path {:>8.2} s (wall {:>8.2} s)  {eps:>12.0} events/s  \
                 ({scan_eps:>12.0} scans/s)  identical={identical}",
                best.critical_path_s, best.wall_s
            );
            legs.push((shards, best.critical_path_s, best.wall_s, eps, scan_eps, identical));
        }
        all_identical &= row_identical;

        let peak = peak_rss_bytes();
        max_budget = max_budget.max(rss_budget_bytes(accounts as u64, events as u64));
        let under = peak <= max_budget;
        eprintln!(
            "  peak RSS {:.2} GiB (budget {:.2} GiB) under_budget={under}",
            peak as f64 / (1 << 30) as f64,
            max_budget as f64 / (1 << 30) as f64
        );
        let &(_, _, _, eps8, scan8, _) = legs.last().expect("has legs");
        rows.push(serde_json::json!({
            "accounts": accounts,
            "events": events,
            "generate_s": gen_s,
            "sequential_replay_s": replay_s,
            "detections": seq_report.detections.len(),
            "shards": legs.iter().map(
                |&(s, path_s, wall_s, eps, scan_eps, identical)| serde_json::json!({
                    "shards": s,
                    "critical_path_s": path_s,
                    "wall_s": wall_s,
                    "events_per_sec": eps,
                    "scan_events_per_sec": scan_eps,
                    "identical_to_replay": identical,
                })).collect::<Vec<_>>(),
            "events_per_sec_8shards": eps8,
            "scan_events_per_sec_8shards": scan8,
            "peak_rss_bytes": peak,
            "rss_budget_bytes": max_budget,
            "under_budget": under,
            "bit_identical": row_identical,
        }));
        assert!(row_identical, "acceptance: serve must match replay at {accounts} accounts");
        assert!(
            under,
            "acceptance: peak RSS {peak} over budget {max_budget} at {accounts} accounts"
        );
        if accounts >= 5_000_000 {
            assert!(
                scan8 >= 10_000_000.0,
                "acceptance: 8-shard aggregate scan rate {scan8:.0}/s below 10M events/sec"
            );
        }
    }

    let report = serde_json::json!({
        "bench": "scale_sweep",
        "smoke": smoke,
        "timing": "critical_path (coordinator + slowest shard per epoch; equals \
                   wall-clock at >=1 core per shard, exact on the 1-core CI box)",
        "scan_rate": "scan_events_per_sec = shards * events / critical_path_s — every \
                      shard scans every event (the full-scan/shared-read design that \
                      keeps reports bit-identical to replay)",
        "rss_budget": "256 MiB + 260 B/account + 120 B/event (see DESIGN.md)",
        "rows": rows,
        "bit_identical": all_identical,
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("{json}");
    assert!(all_identical, "acceptance: all serve reports must match replay");
}
