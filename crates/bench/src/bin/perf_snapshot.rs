//! Machine-readable performance check for the CSR snapshot + parallel
//! analytics substrate.
//!
//! Times the full-population clustering sweep, feature extraction, and
//! defense route computation on the seed `TemporalGraph` path (serial,
//! hash-probe kernels) against the `CsrSnapshot` path at 1 and N worker
//! threads, verifies the outputs are bit-identical, and writes
//! `BENCH_parallel.json` at the workspace root.
//!
//! Run with `cargo run --release -p sybil-bench --bin perf_snapshot`.

use osn_graph::{clustering, par, CsrSnapshot, NodeId};
use std::time::Instant;
use sybil_defense::{evaluate_defense, SybilLimit};
use sybil_features::{clustering as fclustering, invitation, ratios, FeatureExtractor,
    FeatureVector};

/// Best-of-`reps` wall-clock milliseconds for `f`, with the result of the
/// last run returned for identity checks.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (best, out.unwrap())
}

fn set_threads(n: usize) {
    std::env::set_var(par::THREADS_ENV, n.to_string());
}

/// The seed implementation of feature extraction: a serial per-node loop
/// whose clustering term walks the `TemporalGraph` with O(k²) hash-probe
/// pairs — the path `features_for_all` replaced.
fn features_baseline(fx: &FeatureExtractor<'_>, nodes: &[NodeId]) -> Vec<FeatureVector> {
    let out = fx.output();
    nodes
        .iter()
        .map(|&n| {
            let sent: Vec<osn_graph::Timestamp> = fx
                .sent_by(n)
                .iter()
                .map(|&i| out.log.get(i as usize).sent_at)
                .collect();
            FeatureVector {
                inv_freq_1h: invitation::mean_per_active_window(&sent, 1),
                inv_freq_400h: invitation::mean_per_active_window(&sent, 400),
                outgoing_accept_ratio: ratios::outgoing_accept_ratio(out, fx.sent_by(n)),
                incoming_accept_ratio: ratios::incoming_accept_ratio(out, fx.received_by(n)),
                clustering_coefficient: fclustering::first50_cc(&out.graph, n),
            }
        })
        .collect()
}

fn main() {
    // Honor a RENREN_THREADS override for the N-thread legs, but never
    // benchmark below the 4 workers the acceptance criterion is stated at.
    let threads = par::num_threads().max(4);
    let reps = 3;
    let out = sybil_bench::small_fixture();
    let g = &out.graph;
    let nodes: Vec<NodeId> = g.nodes().collect();
    eprintln!(
        "perf_snapshot: {} nodes, {} edges, {} worker threads",
        g.num_nodes(),
        g.num_edges(),
        threads
    );

    let (snap_build_ms, snap) = time_ms(reps, || CsrSnapshot::freeze(g));

    // --- Full-population first-50 clustering sweep (the Fig. 4 metric). ---
    let (cc_serial_ms, cc_serial) = time_ms(reps, || {
        nodes
            .iter()
            .map(|&n| clustering::first_k_clustering(g, n, fclustering::FIRST_K))
            .collect::<Vec<f64>>()
    });
    set_threads(1);
    let (cc_snap1_ms, cc_snap1) =
        time_ms(reps, || clustering::first_k_clustering_all(g, fclustering::FIRST_K));
    set_threads(threads);
    let (cc_snapn_ms, cc_snapn) =
        time_ms(reps, || clustering::first_k_clustering_all(g, fclustering::FIRST_K));
    assert_eq!(cc_serial, cc_snap1, "snapshot sweep must be bit-identical");
    assert_eq!(cc_serial, cc_snapn, "parallel sweep must be bit-identical");

    // --- Full-population feature extraction. ---
    let fx = FeatureExtractor::new(out);
    let (feat_serial_ms, feat_serial) = time_ms(reps, || features_baseline(&fx, &nodes));
    set_threads(1);
    let (feat_snap1_ms, feat_snap1) = time_ms(reps, || fx.features_for_all(&nodes));
    set_threads(threads);
    let (feat_snapn_ms, feat_snapn) = time_ms(reps, || fx.features_for_all(&nodes));
    assert_eq!(feat_serial, feat_snap1, "feature vectors must be bit-identical");
    assert_eq!(feat_serial, feat_snapn, "parallel features must be bit-identical");

    // --- Defense random routes (SybilLimit tails over sampled suspects). ---
    let sl = SybilLimit::new(g, 7);
    let suspects: Vec<NodeId> = nodes.iter().copied().take(12).collect();
    let verifier = *nodes.last().unwrap();
    set_threads(1);
    let (def_1t_ms, def_1t) =
        time_ms(reps, || evaluate_defense(&sl, g, verifier, &suspects, &suspects));
    set_threads(threads);
    let (def_nt_ms, def_nt) =
        time_ms(reps, || evaluate_defense(&sl, g, verifier, &suspects, &suspects));
    assert_eq!(def_1t, def_nt, "defense verdicts must be thread-count invariant");

    let cc_speedup = cc_serial_ms / cc_snapn_ms;
    let feat_speedup = feat_serial_ms / feat_snapn_ms;
    let n_nodes = g.num_nodes();
    let n_edges = g.num_edges();
    let snap_edges = snap.num_edges();
    let fixture = serde_json::json!({"nodes": n_nodes, "edges": n_edges});
    let sweep = serde_json::json!({
        "serial_graph_ms": cc_serial_ms,
        "snapshot_1_thread_ms": cc_snap1_ms,
        "snapshot_n_threads_ms": cc_snapn_ms,
        "speedup_vs_serial": cc_speedup,
    });
    let features = serde_json::json!({
        "serial_graph_ms": feat_serial_ms,
        "snapshot_1_thread_ms": feat_snap1_ms,
        "snapshot_n_threads_ms": feat_snapn_ms,
        "speedup_vs_serial": feat_speedup,
    });
    let defense = serde_json::json!({
        "one_thread_ms": def_1t_ms,
        "n_threads_ms": def_nt_ms,
    });
    let report = serde_json::json!({
        "bench": "perf_snapshot",
        "fixture": fixture,
        "threads": threads,
        "reps": reps,
        "snapshot_build_ms": snap_build_ms,
        "snapshot_num_edges": snap_edges,
        "clustering_sweep": sweep,
        "feature_extraction": features,
        "defense_walks": defense,
        "bit_identical": true,
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("{json}");
    eprintln!(
        "clustering sweep speedup {cc_speedup:.2}x, feature extraction speedup {feat_speedup:.2}x"
    );
    assert!(
        cc_speedup >= 2.0 && feat_speedup >= 2.0,
        "acceptance: >=2x speedup required (clustering {cc_speedup:.2}x, features {feat_speedup:.2}x)"
    );
}
