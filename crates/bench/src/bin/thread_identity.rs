//! Thread-count bit-identity smoke test — the sanitizer stand-in.
//!
//! Miri cannot execute the scoped-thread `par::` layer, so the sanitizer
//! story (DESIGN.md §Sanitizers) leans on end-to-end evidence instead:
//! run the full-population analytics sweeps with `RENREN_THREADS=1` and
//! `RENREN_THREADS=8` and require byte-identical outputs. Any data race
//! or order-dependent merge in the parallel substrate that affects
//! results shows up here as a diff; a crash shows up as a nonzero exit.
//!
//! Run with `cargo run --release -p sybil-bench --bin thread_identity`.

use osn_graph::{clustering, par, NodeId};
use sybil_features::{clustering as fclustering, FeatureExtractor, FeatureVector};

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var(par::THREADS_ENV, n.to_string());
    f()
}

fn main() {
    let out = sybil_bench::small_fixture();
    let g = &out.graph;
    let nodes: Vec<NodeId> = g.nodes().collect();
    let fx = FeatureExtractor::new(out);
    eprintln!(
        "thread_identity: {} nodes, {} edges, comparing RENREN_THREADS=1 vs 8",
        g.num_nodes(),
        g.num_edges()
    );

    let feat_1: Vec<FeatureVector> = with_threads(1, || fx.features_for_all(&nodes));
    let feat_8: Vec<FeatureVector> = with_threads(8, || fx.features_for_all(&nodes));
    assert_eq!(feat_1, feat_8, "feature extraction must be thread-count invariant");

    let cc_1 = with_threads(1, || clustering::first_k_clustering_all(g, fclustering::FIRST_K));
    let cc_8 = with_threads(8, || clustering::first_k_clustering_all(g, fclustering::FIRST_K));
    assert_eq!(
        cc_1.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
        cc_8.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
        "clustering sweep must be bit-identical across thread counts"
    );

    println!(
        "thread_identity: OK ({} feature vectors, {} clustering coefficients bit-identical)",
        feat_1.len(),
        cc_1.len()
    );
}
