//! Chaos-engine acceptance bench: write-ahead journal overhead on the
//! serving critical path, plus the crash-recovery smoke.
//!
//! Replays the same adaptive stream through a clocked `ServeSession`
//! (production path, `NoFaults` plane) and the same session with a
//! journal-only [`ChaosPlane`] at the default digest cadence (every
//! epoch write-ahead journaled, per-shard digests every
//! [`DEFAULT_DIGEST_CADENCE`](sybil_chaos::DEFAULT_DIGEST_CADENCE)th
//! epoch — the `repro chaos` drill configuration), paired per rep and
//! order-rotated across `REPS` reps (minimum paired overhead is what
//! the gate sees). A third strict-cadence run (digests *every* epoch)
//! is measured and reported but not gated. The acceptance gates:
//!
//! * the journaled run's report is byte-identical to the plain run's;
//! * journaling costs under 5% of the fault-free critical path — the
//!   journal appends to an in-memory store at barrier time, off the
//!   per-event path, so anything above that signals journal work
//!   leaking into the event loop;
//! * a seeded mid-stream shard crash recovers from the journal to a
//!   report byte-identical to the fault-free run's.
//!
//! Writes `BENCH_chaos.json` at the working directory root. Run with
//! `cargo run --release -p sybil-bench --bin chaos_bench`.

use osn_sim::stream::EventStream;
use osn_sim::{simulate, SimConfig};
use std::io::Cursor;
use std::time::Instant;
use sybil_chaos::{
    run_chaos_in_memory, ChaosOutcome, ChaosPlane, FaultSchedule, FaultSpec, FaultSpecKind,
    Journal,
};
use sybil_core::realtime::RealtimeConfig;
use sybil_core::ThresholdClassifier;
use sybil_serve::{ServeConfig, ServeSession};

const REPS: usize = 9;
/// Epoch the smoke's shard crash lands in (mid-stream for the small
/// sim's ~15 epochs at 48h).
const CRASH_EPOCH: u64 = 2;
const CRASH_SHARD: usize = 1;

fn main() {
    let out = simulate(SimConfig::small(42));
    let events = EventStream::new(&out.log).total_events();
    eprintln!(
        "chaos_bench: {} accounts, {} merged events",
        out.accounts.len(),
        events
    );

    // Adaptive config: detections, feedback, and audits all live, so the
    // journal carries every record kind.
    let detect = RealtimeConfig {
        rule: ThresholdClassifier {
            max_out_ratio: 0.5,
            min_freq: 15.0,
            max_cc: f64::INFINITY,
        },
        adaptive: true,
        ..RealtimeConfig::default()
    };
    let cfg = ServeConfig {
        shards: 4,
        epoch_hours: 48,
        detect,
        rotate_floor: 0,
    };

    let epoch = Instant::now();
    let clock = move || epoch.elapsed().as_secs_f64();

    // Each rep times all three variants back to back and the overhead
    // is the *per-rep paired* ratio — adjacent legs see the same box
    // conditions, so common-mode noise (CPU-quota throttling, a noisy
    // neighbor) cancels instead of landing on whichever variant ran
    // while the box was busy. The rep order rotates so no variant
    // always gets the post-idle burst-credit slot, and the gate takes
    // the minimum paired overhead across reps: a spurious failure
    // would need every one of the `REPS` reps to be asymmetrically
    // slow on the journaled leg only.
    let mut reps: Vec<(f64, f64, f64)> = Vec::new(); // (off, on, strict) seconds
    let mut last = None;
    for rep in 0..REPS {
        let mut off_s = 0.0;
        let run_off = |off_s: &mut f64| {
            let o = ServeSession::new(cfg)
                .clock(&clock)
                .run(&out)
                .expect("serve failed");
            *off_s = o.stats.critical_path_s;
            o.report
        };
        let mut on_s = 0.0;
        let run_on = |on_s: &mut f64| {
            let journal =
                Journal::create(Cursor::new(Vec::new())).expect("in-memory journal");
            let mut plane = ChaosPlane::new(FaultSchedule::journal_only(42), journal);
            let o = ServeSession::new(cfg)
                .clock(&clock)
                .plane(&mut plane)
                .run(&out)
                .expect("serve failed");
            *on_s = o.stats.critical_path_s;
            (o.report, plane.into_journal().len_bytes())
        };
        let mut strict_s = 0.0;
        // Strict cadence: per-shard digests at every barrier — the
        // upper bound on digest cost, reported but not gated.
        let run_strict = |strict_s: &mut f64| {
            let journal =
                Journal::create(Cursor::new(Vec::new())).expect("in-memory journal");
            let mut strict =
                ChaosPlane::with_digest_cadence(FaultSchedule::journal_only(42), journal, 1);
            let o = ServeSession::new(cfg)
                .clock(&clock)
                .plane(&mut strict)
                .run(&out)
                .expect("serve failed");
            *strict_s = o.stats.critical_path_s;
        };
        let pair = match rep % 3 {
            0 => {
                let r_off = run_off(&mut off_s);
                let on = run_on(&mut on_s);
                run_strict(&mut strict_s);
                (r_off, on)
            }
            1 => {
                let on = run_on(&mut on_s);
                run_strict(&mut strict_s);
                let r_off = run_off(&mut off_s);
                (r_off, on)
            }
            _ => {
                run_strict(&mut strict_s);
                let r_off = run_off(&mut off_s);
                let on = run_on(&mut on_s);
                (r_off, on)
            }
        };
        reps.push((off_s, on_s, strict_s));
        last = Some(pair);
    }
    let (r_off, (r_on, journal_bytes)) = last.expect("REPS >= 1");
    let identical = serde_json::to_string(&r_off).expect("report serializes")
        == serde_json::to_string(&r_on).expect("report serializes");
    let paired = |pick: fn(&(f64, f64, f64)) -> f64| {
        reps.iter()
            .map(|r| ((pick(r) - r.0) / r.0 * 100.0).max(0.0))
            .fold(f64::INFINITY, f64::min)
    };
    let overhead_pct = paired(|r| r.1);
    let strict_overhead_pct = paired(|r| r.2);
    let off_best = reps.iter().map(|r| r.0).fold(f64::INFINITY, f64::min);
    let on_best = reps.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    let strict_best = reps.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
    eprintln!(
        "  plain {:.1} ms | journaled {:.1} ms | overhead {overhead_pct:.2}% \
         (strict-digest {strict_overhead_pct:.2}%) | journal {journal_bytes} bytes | \
         identical={identical}",
        off_best * 1e3,
        on_best * 1e3
    );

    // Crash-recovery smoke: kill one shard mid-stream, recover from the
    // write-ahead journal, byte-compare against the fault-free run.
    let schedule = FaultSchedule {
        seed: 42,
        faults: vec![FaultSpec {
            epoch: CRASH_EPOCH,
            shard: CRASH_SHARD,
            kind: FaultSpecKind::Crash,
        }],
    };
    let crash = run_chaos_in_memory(&out, &cfg, schedule, None).expect("chaos run failed");
    let recovered_identical = crash.report.outcome == ChaosOutcome::Identical;
    eprintln!(
        "  crash smoke: epoch {CRASH_EPOCH} shard {CRASH_SHARD} | replayed {} epochs | \
         recovered_identical={recovered_identical}",
        crash.report.epochs_replayed
    );

    let report = serde_json::json!({
        "bench": "chaos",
        "events": events,
        "accounts": out.accounts.len(),
        "reps": REPS,
        "shards": 4,
        "timing": "critical_path (coordinator + slowest shard per epoch); overheads are \
                   the minimum per-rep paired ratio over order-rotated reps; *_ms are \
                   per-variant bests",
        "plain_critical_path_ms": off_best * 1e3,
        "journaled_critical_path_ms": on_best * 1e3,
        "journal_overhead_pct": overhead_pct,
        "strict_digest_critical_path_ms": strict_best * 1e3,
        "strict_digest_overhead_pct": strict_overhead_pct,
        "journal_bytes": journal_bytes,
        "report_identical": identical,
        "crash_epoch": CRASH_EPOCH,
        "crash_shard": CRASH_SHARD,
        "crash_epochs_replayed": crash.report.epochs_replayed,
        "crash_recovered_identical": recovered_identical,
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("{json}");
    assert!(
        identical,
        "acceptance: journaled and plain runs must produce the same report"
    );
    assert!(
        recovered_identical,
        "acceptance: a crashed shard must recover byte-identical from the journal"
    );
    assert!(
        overhead_pct < 5.0,
        "acceptance: journal overhead must stay under 5% ({overhead_pct:.2}%)"
    );
}
