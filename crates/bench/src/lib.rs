//! # sybil-bench — shared benchmark fixtures
//!
//! The Criterion benches (one per paper table/figure, plus substrate and
//! ablation benches) share simulation fixtures through this small library
//! so the expensive simulated datasets are built once per bench binary.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use osn_sim::{simulate, SimConfig, SimOutput};
use std::sync::OnceLock;
use sybil_repro::{Ctx, Scale};

/// The standard small-scale simulation used by the figure/table benches.
/// Built on first use and cached for the process lifetime.
pub fn small_fixture() -> &'static SimOutput {
    static FIXTURE: OnceLock<SimOutput> = OnceLock::new();
    FIXTURE.get_or_init(|| simulate(SimConfig::small(42)))
}

/// A tiny simulation for expensive per-iteration benches.
pub fn tiny_fixture() -> &'static SimOutput {
    static FIXTURE: OnceLock<SimOutput> = OnceLock::new();
    FIXTURE.get_or_init(|| simulate(SimConfig::tiny(42)))
}

/// Experiment context over the small fixture (components precomputed).
pub fn small_ctx() -> &'static Ctx {
    static CTX: OnceLock<Ctx> = OnceLock::new();
    CTX.get_or_init(|| Ctx::from_output(small_fixture().clone(), Scale::Small, 42))
}

/// Experiment context over the tiny fixture.
pub fn tiny_ctx() -> &'static Ctx {
    static CTX: OnceLock<Ctx> = OnceLock::new();
    CTX.get_or_init(|| Ctx::from_output(tiny_fixture().clone(), Scale::Tiny, 42))
}
