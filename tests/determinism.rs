//! Reproducibility: the whole pipeline is a pure function of the seed,
//! across separate process-internal invocations (no hidden global state,
//! no hash-order dependence).

use rand::rngs::StdRng;
use rand::SeedableRng;
use renren_sybils::detect::svm::linear::LinearSvmParams;
use renren_sybils::detect::{Classifier, LinearSvm, ThresholdClassifier};
use renren_sybils::features::dataset::GroundTruth;
use renren_sybils::features::FeatureExtractor;
use renren_sybils::sim::{simulate, SimConfig};

#[test]
fn simulation_is_deterministic() {
    let a = simulate(SimConfig::tiny(99));
    let b = simulate(SimConfig::tiny(99));
    assert_eq!(a.log.len(), b.log.len());
    assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    assert_eq!(a.graph.edges(), b.graph.edges());
    for (x, y) in a.log.records().iter().zip(b.log.records()) {
        assert_eq!(x, y);
    }
    assert_eq!(a.engine_stats, b.engine_stats);
}

#[test]
fn different_seeds_differ() {
    let a = simulate(SimConfig::tiny(1));
    let b = simulate(SimConfig::tiny(2));
    assert_ne!(a.graph.num_edges(), b.graph.num_edges());
}

#[test]
fn feature_extraction_and_training_are_deterministic() {
    let out = simulate(SimConfig::tiny(7));
    let extract = || {
        let fx = FeatureExtractor::new(&out);
        let mut rng = StdRng::seed_from_u64(1);
        GroundTruth::sample(&fx, 40, &mut rng)
    };
    let d1 = extract();
    let d2 = extract();
    assert_eq!(d1.nodes, d2.nodes);
    assert_eq!(d1.features, d2.features);

    let r1 = ThresholdClassifier::calibrate(&d1);
    let r2 = ThresholdClassifier::calibrate(&d2);
    assert_eq!(r1, r2);

    let p = LinearSvmParams::default();
    let s1 = LinearSvm::train_features(&d1.features, &d1.labels, &p);
    let s2 = LinearSvm::train_features(&d2.features, &d2.labels, &p);
    for f in &d1.features {
        assert_eq!(s1.score(f), s2.score(f));
    }
}

#[test]
fn defense_verdicts_are_deterministic() {
    use renren_sybils::defense::{SybilDefense, SybilGuard, SybilLimit};
    use renren_sybils::graph::NodeId;
    let out = simulate(SimConfig::tiny(5));
    let g = &out.graph;
    let verifier = out
        .normal_ids()
        .into_iter()
        .find(|&n| g.degree(n) >= 10)
        .expect("connected verifier");
    let suspect = out
        .sybil_ids()
        .into_iter()
        .find(|&s| g.degree(s) >= 5)
        .expect("connected sybil");
    let check = |a: NodeId, b: NodeId| {
        let sg1 = SybilGuard::new(g, Some(40), 9).verify(g, a, b);
        let sg2 = SybilGuard::new(g, Some(40), 9).verify(g, a, b);
        assert_eq!(sg1, sg2);
        let sl1 = SybilLimit::new(g, 9).verify(g, a, b);
        let sl2 = SybilLimit::new(g, 9).verify(g, a, b);
        assert_eq!(sl1, sl2);
    };
    check(verifier, suspect);
    check(verifier, verifier);
}
