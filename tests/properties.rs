//! Cross-crate property-based tests (proptest) on the substrate
//! invariants the experiments rely on.

use proptest::prelude::*;
use renren_sybils::graph::{
    bfs, clustering, components, generators, maxflow::FlowNetwork, metrics, NodeId,
    TemporalGraph, Timestamp, UnionFind,
};
use renren_sybils::stats::Cdf;

/// Build a graph from an arbitrary edge list over `n` nodes (dups/loops
/// dropped).
fn graph_from(n: usize, edges: &[(usize, usize)]) -> TemporalGraph {
    let mut g = TemporalGraph::with_nodes(n);
    for (i, &(a, b)) in edges.iter().enumerate() {
        let _ = g.add_edge(
            NodeId((a % n) as u32),
            NodeId((b % n) as u32),
            Timestamp(i as u64),
        );
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Components partition the node set, regardless of topology.
    #[test]
    fn components_partition_nodes(
        n in 1usize..60,
        edges in prop::collection::vec((0usize..60, 0usize..60), 0..120)
    ) {
        let g = graph_from(n, &edges);
        let comps = components::connected_components(&g);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, n);
        let mut seen = std::collections::HashSet::new();
        for c in &comps {
            for &node in &c.nodes {
                prop_assert!(seen.insert(node), "node in two components");
            }
        }
    }

    /// Union-find connectivity agrees with BFS reachability.
    #[test]
    fn unionfind_matches_bfs(
        n in 2usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..80)
    ) {
        let g = graph_from(n, &edges);
        let mut uf = UnionFind::new(n);
        for e in g.edges() {
            uf.union(e.a.index(), e.b.index());
        }
        let dist = bfs::distances(&g, NodeId(0));
        for (i, d) in dist.iter().enumerate() {
            prop_assert_eq!(
                d.is_some(),
                uf.connected(0, i),
                "node {} reachability mismatch", i
            );
        }
    }

    /// Local clustering coefficients are valid probabilities, and a node's
    /// first-k clustering equals local clustering when k >= degree.
    #[test]
    fn clustering_bounds(
        n in 3usize..30,
        edges in prop::collection::vec((0usize..30, 0usize..30), 0..90)
    ) {
        let g = graph_from(n, &edges);
        for node in g.nodes() {
            let cc = clustering::local_clustering(&g, node);
            prop_assert!((0.0..=1.0).contains(&cc));
            let k = g.degree(node);
            let cck = clustering::first_k_clustering(&g, node, k.max(1));
            prop_assert!((cc - cck).abs() < 1e-12);
        }
    }

    /// Conductance is within [0, 1] whenever defined, and cut statistics
    /// are internally consistent.
    #[test]
    fn cut_stats_consistent(
        n in 4usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40), 1..100),
        mask in prop::collection::vec(any::<bool>(), 40)
    ) {
        let g = graph_from(n, &edges);
        let set: Vec<NodeId> = (0..n).filter(|&i| mask[i]).map(|i| NodeId(i as u32)).collect();
        let stats = metrics::cut_stats(&g, &set);
        prop_assert!(stats.audience <= stats.crossing_edges);
        prop_assert!(stats.internal_edges + stats.crossing_edges <= g.num_edges() + stats.internal_edges);
        if let Some(phi) = metrics::conductance(&g, &set) {
            prop_assert!((0.0..=1.0).contains(&phi), "conductance {}", phi);
        }
    }

    /// Max-flow is bounded by both endpoint degrees (unit capacities) and
    /// is symmetric on undirected unit networks.
    #[test]
    fn maxflow_bounded_and_symmetric(
        n in 2usize..25,
        edges in prop::collection::vec((0usize..25, 0usize..25), 1..60)
    ) {
        let g = graph_from(n, &edges);
        if g.num_edges() == 0 { return Ok(()); }
        let s = g.edges()[0].a.index();
        let t = g.edges()[g.num_edges() - 1].b.index();
        if s == t { return Ok(()); }
        let build = || {
            let mut net = FlowNetwork::new(n);
            for e in g.edges() {
                net.add_undirected(e.a.index(), e.b.index(), 1);
            }
            net
        };
        let f_st = build().max_flow(s, t);
        let f_ts = build().max_flow(t, s);
        prop_assert_eq!(f_st, f_ts, "undirected flow must be symmetric");
        prop_assert!(f_st <= g.degree(NodeId(s as u32)) as i64);
        prop_assert!(f_st <= g.degree(NodeId(t as u32)) as i64);
    }

    /// BA generator output is connected with the requested node count.
    #[test]
    fn ba_generator_connected(n in 6usize..120, m in 1usize..4) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
        use rand::SeedableRng;
        let g = generators::barabasi_albert(n, m, Timestamp::ZERO, &mut rng);
        prop_assert_eq!(g.num_nodes(), n);
        prop_assert_eq!(components::connected_components(&g).len(), 1);
    }

    /// Empirical CDF is a valid distribution function: monotone, right
    /// limits 0 and 1, quantiles invert eval.
    #[test]
    fn cdf_is_distribution_function(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let c = Cdf::new(samples.clone());
        prop_assert_eq!(c.len(), samples.len());
        let lo = c.min().unwrap();
        let hi = c.max().unwrap();
        prop_assert_eq!(c.eval(lo - 1.0), 0.0);
        prop_assert_eq!(c.eval(hi), 1.0);
        // Monotone on a grid.
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = lo + (hi - lo) * i as f64 / 20.0;
            let y = c.eval(x);
            prop_assert!(y >= prev);
            prev = y;
        }
        // Quantile/eval consistency: eval(quantile(q)) >= q for q in (0,1].
        for &q in &[0.1, 0.5, 0.9, 1.0] {
            let v = c.quantile(q).unwrap();
            prop_assert!(c.eval(v) + 1e-9 >= q - 0.5 / samples.len() as f64);
        }
    }

    /// Degree sum equals twice the edge count (handshake lemma) after any
    /// edge insertion sequence.
    #[test]
    fn handshake_lemma(
        n in 1usize..50,
        edges in prop::collection::vec((0usize..50, 0usize..50), 0..150)
    ) {
        let g = graph_from(n, &edges);
        let sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.num_edges());
        prop_assert_eq!(g.volume(), sum);
    }
}
