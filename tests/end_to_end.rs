//! End-to-end integration: one small-scale simulation driven through every
//! stage of the pipeline, asserting the paper's headline shapes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use renren_sybils::detect::eval::cross_validate;
use renren_sybils::detect::realtime::{replay, RealtimeConfig};
use renren_sybils::detect::ThresholdClassifier;
use renren_sybils::features::dataset::GroundTruth;
use renren_sybils::features::FeatureExtractor;
use renren_sybils::graph::{components, metrics};
use renren_sybils::sim::{simulate, SimConfig, SimOutput};
use std::sync::OnceLock;

fn fixture() -> &'static SimOutput {
    static FIXTURE: OnceLock<SimOutput> = OnceLock::new();
    FIXTURE.get_or_init(|| simulate(SimConfig::small(1)))
}

#[test]
fn sybils_mostly_isolated_from_each_other() {
    // §3.2: the vast majority of Sybils have no Sybil edges.
    let out = fixture();
    let frac = out.sybil_connectivity_fraction();
    assert!(
        (0.02..0.55).contains(&frac),
        "sybil-edge incidence {frac} out of band"
    );
}

#[test]
fn every_sybil_component_has_more_attack_than_sybil_edges() {
    // Fig. 7: all components above the y = x diagonal.
    let out = fixture();
    let comps = components::components_of_subset(&out.graph, |n| out.is_sybil(n));
    let mut checked = 0;
    for c in comps.iter().filter(|c| c.len() > 1) {
        let cut = metrics::cut_stats(&out.graph, &c.nodes);
        assert!(
            cut.crossing_edges > cut.internal_edges,
            "component of {} sybils: {} attack vs {} sybil edges",
            c.len(),
            cut.crossing_edges,
            cut.internal_edges
        );
        checked += 1;
    }
    assert!(checked > 0, "no sybil components formed");
}

#[test]
fn giant_component_dominates_connected_sybils() {
    // Fig. 6: one dominant, loose component.
    let out = fixture();
    let comps = components::components_of_subset(&out.graph, |n| out.is_sybil(n));
    let sizes: Vec<usize> = comps.iter().map(|c| c.len()).filter(|&s| s > 1).collect();
    let connected: usize = sizes.iter().sum();
    // The giant's share of connected Sybils fluctuates with the (few)
    // evader hubs a small-scale seed draws; the paper's value is 69%, and
    // the reproduced shape is "one component dominates the size
    // distribution's tail".
    assert!(
        sizes[0] * 3 >= connected,
        "giant {} of {} connected",
        sizes[0],
        connected
    );
    assert!(sizes[0] >= 10, "giant too small: {}", sizes[0]);
}

#[test]
fn classifiers_reach_table1_accuracy() {
    // Table 1: ≈99% for both the SVM and the threshold rule. At small
    // simulated scale we accept ≥95%.
    let out = fixture();
    let fx = FeatureExtractor::new(out);
    let mut rng = StdRng::seed_from_u64(2);
    let mut ds = GroundTruth::sample(&fx, 200, &mut rng);
    ds.shuffle(&mut rng);
    let thr = cross_validate(&ds, 5, ThresholdClassifier::calibrate);
    assert!(
        thr.accuracy() > 0.95,
        "threshold CV accuracy {:.3}",
        thr.accuracy()
    );
    use renren_sybils::detect::svm::kernel::KernelSvmParams;
    use renren_sybils::detect::KernelSvm;
    let svm = cross_validate(&ds, 5, |train| {
        KernelSvm::train_features(&train.features, &train.labels, &KernelSvmParams::default())
    });
    assert!(svm.accuracy() > 0.95, "svm CV accuracy {:.3}", svm.accuracy());
}

#[test]
fn realtime_detector_deployment_works() {
    // §2.3 deployment: high catch rate, negligible false positives.
    let out = fixture();
    let fx = FeatureExtractor::new(out);
    let mut rng = StdRng::seed_from_u64(3);
    let ds = GroundTruth::sample(&fx, 150, &mut rng);
    let rule = ThresholdClassifier::calibrate(&ds);
    let report = replay(
        out,
        &RealtimeConfig {
            rule,
            ..RealtimeConfig::default()
        },
    );
    assert!(
        report.catch_rate() > 0.6,
        "catch rate {:.2}",
        report.catch_rate()
    );
    let fp_rate = report.false_positives as f64 / out.normal_ids().len() as f64;
    assert!(fp_rate < 0.01, "false positive rate {fp_rate}");
}

#[test]
fn banned_accounts_are_sybils_and_stop_acting() {
    let out = fixture();
    for (i, a) in out.accounts.iter().enumerate() {
        if let Some(b) = a.banned_at {
            assert!(a.is_sybil(), "only sybils get banned in-model");
            assert!(b >= a.created_at);
            // No outgoing requests after the ban.
            for &idx in out.log.sender_index(out.accounts.len()).of(i) {
                assert!(out.log.get(idx as usize).sent_at <= b);
            }
        }
    }
}

#[test]
fn graph_and_log_are_consistent() {
    let out = fixture();
    // Every edge corresponds to an accepted request; every accepted request
    // to an edge (or a crossed duplicate, which still has an edge).
    let mut accepted = std::collections::HashSet::new();
    for r in out.log.records() {
        if r.outcome.is_accepted() {
            let (a, b) = (r.from.0.min(r.to.0), r.from.0.max(r.to.0));
            accepted.insert((a, b));
            assert!(
                out.graph.has_edge(r.from, r.to),
                "accepted request without an edge"
            );
        }
    }
    for e in out.graph.edges() {
        let key = (e.a.0.min(e.b.0), e.a.0.max(e.b.0));
        assert!(accepted.contains(&key), "edge without an accepted request");
    }
}
